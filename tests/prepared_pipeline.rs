//! Lifecycle tests for the staged query pipeline:
//! parse → plan → prepare → execute, plus EXPLAIN and the plan cache.
//!
//! The invariants under test: preparing a statement changes *when* work
//! happens, never *what* is computed — prepared re-execution, `?`
//! rebinding, and plan-cache hits are all bit-identical to fresh one-shot
//! execution — and EXPLAIN describes exactly what the executor then does.

use flashp::core::{
    EngineConfig, EngineError, ExecOutput, FlashPEngine, IngestBatch, Literal, SampleCatalog,
    SamplerChoice,
};
use flashp::data::{generate_dataset, BatchStream, DatasetConfig, StreamConfig};
use std::sync::Arc;

fn dataset_config(seed: u64) -> DatasetConfig {
    DatasetConfig::new(800, 45, seed)
}

fn engine_for(sampler: SamplerChoice, seed: u64) -> FlashPEngine {
    let ds = generate_dataset(&dataset_config(seed)).unwrap();
    let config = EngineConfig {
        sampler,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&ds.table, &config).unwrap();
    FlashPEngine::with_catalog(ds.table, config, catalog)
}

const FORECAST: &str = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
     USING (20200101, 20200210) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";

/// Every statement shape the language supports, including the quickstart
/// statement of the forecast_roundtrip corpus (crates/query/tests).
const CORPUS: &[&str] = &[
    "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
     USING (20200101, 20200229) OPTION (MODEL = 'arima', FORE_PERIOD = 7)",
    "FORECAST AVG(Click) FROM ads WHERE age = 1 USING (20200101, 20200131) \
     OPTION (MODEL = 'ets', FORE_PERIOD = 3, SAMPLE_RATE = 0.05)",
    "FORECAST COUNT(*) FROM ads USING (20200101, 20200131) \
     OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
    "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t = 20200105",
    "SELECT COUNT(Click) FROM ads WHERE age <= 30 GROUP BY t",
    "SELECT SUM(Impression) FROM ads WHERE t BETWEEN 20200101 AND 20200107 \
     GROUP BY t OPTION (SAMPLE_RATE = 0.05)",
    "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t = 20200105 \
     OPTION (FAST_SUM = 1)",
];

#[test]
fn prepared_reexecution_is_bit_identical_across_samplers_and_seeds() {
    for sampler in [SamplerChoice::Uniform, SamplerChoice::OptimalGsw, SamplerChoice::Priority] {
        for seed in [7u64, 4242] {
            let label = format!("{sampler:?}/seed {seed}");
            let engine = engine_for(sampler.clone(), seed);
            let one_shot = engine.forecast(FORECAST).unwrap();
            let prepared = engine.prepare(FORECAST).unwrap();
            for round in 0..3 {
                let r = prepared.forecast_with(&[]).unwrap();
                assert_eq!(
                    r.estimate_values(),
                    one_shot.estimate_values(),
                    "{label}: estimates diverged on round {round}"
                );
                assert_eq!(
                    r.forecast_values(),
                    one_shot.forecast_values(),
                    "{label}: forecasts diverged on round {round}"
                );
                assert_eq!(r.sampler, one_shot.sampler, "{label}");
                assert_eq!(r.rate_used, one_shot.rate_used, "{label}");
            }
        }
    }
}

#[test]
fn parameter_rebinding_matches_fresh_parse() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 99);
    let template = engine
        .prepare(
            "FORECAST SUM(Impression) FROM ads WHERE age <= ? AND gender = ? \
             USING (20200101, 20200210) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
        )
        .unwrap();
    assert_eq!(template.num_params(), 2);
    for (age, gender) in [(20i64, "F"), (35, "M"), (50, "F")] {
        let bound =
            template.forecast_with(&[Literal::Int(age), Literal::Str(gender.to_string())]).unwrap();
        let fresh = engine
            .forecast(&format!(
                "FORECAST SUM(Impression) FROM ads WHERE age <= {age} AND gender = '{gender}' \
                 USING (20200101, 20200210) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)"
            ))
            .unwrap();
        assert_eq!(bound.estimate_values(), fresh.estimate_values(), "age {age} {gender}");
        assert_eq!(bound.forecast_values(), fresh.forecast_values(), "age {age} {gender}");
    }
    // Parameterized SELECT templates rebind too.
    let select =
        engine.prepare("SELECT SUM(Impression) FROM ads WHERE age <= ? AND t = 20200105").unwrap();
    for age in [20i64, 40] {
        let bound = select.select_with(&[Literal::Int(age)]).unwrap();
        let fresh = engine
            .select(&format!("SELECT SUM(Impression) FROM ads WHERE age <= {age} AND t = 20200105"))
            .unwrap();
        assert_eq!(bound, fresh, "age {age}");
    }
}

/// Tentpole acceptance oracle: ONE prepared `USING (?, ?)` handle,
/// re-bound across many distinct ranges, must be bit-identical to a
/// fresh one-shot parse of each literal statement — and keep being so
/// after an ingest + publish swaps the catalog version under it (the
/// handle re-plans and re-selects its layer per binding, never serving a
/// stale clamp or stale est_rows).
#[test]
fn rebound_using_ranges_match_fresh_parses_across_a_publish() {
    let seed = 31;
    let engine = engine_for(SamplerChoice::OptimalGsw, seed);
    let template = engine
        .prepare(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
             USING (?, ?) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
        )
        .unwrap();
    assert_eq!(template.num_params(), 2);

    let check = |lo: i64, hi: i64, label: &str| {
        let bound = template.forecast_with(&[Literal::Int(lo), Literal::Int(hi)]).unwrap();
        let fresh = engine
            .forecast(&format!(
                "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
                 USING ({lo}, {hi}) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)"
            ))
            .unwrap();
        assert_eq!(bound.estimate_values(), fresh.estimate_values(), "{label}: {lo}..{hi}");
        assert_eq!(bound.forecast_values(), fresh.forecast_values(), "{label}: {lo}..{hi}");
        assert_eq!(bound.sampler, fresh.sampler, "{label}: {lo}..{hi}");
        assert_eq!(bound.rate_used, fresh.rate_used, "{label}: {lo}..{hi}");
    };

    // ≥ 3 distinct ranges before the publish.
    let ranges = [(20200101, 20200210), (20200108, 20200131), (20200105, 20200214)];
    for (lo, hi) in ranges {
        check(lo, hi, "v0");
    }

    // Ingest + publish: two more days continuing the dataset timeline.
    let mut stream = BatchStream::continuing(&dataset_config(seed), StreamConfig::new(400, 77));
    let mut batch = IngestBatch::new();
    for _ in 0..2 {
        let b = stream.next().unwrap();
        batch.push_partition(b.t, b.partition);
    }
    engine.ingest(batch).unwrap();
    engine.publish().unwrap();

    // Same handle, same ranges, new version — still bit-identical, and a
    // range covering the freshly published days works too.
    for (lo, hi) in ranges {
        check(lo, hi, "v1");
    }
    check(20200110, 20200216, "v1 extended into published days");

    // EXPLAIN for a binding names the exact plan the literal statement
    // gets: same clamped range, layer, rate and estimated rows.
    let bound = template.explain_with(&[Literal::Int(20200101), Literal::Int(20200210)]).unwrap();
    let literal = engine
        .explain(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
             USING (20200101, 20200210) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
        )
        .unwrap();
    assert_eq!(bound, literal, "bound EXPLAIN must equal the literal statement's EXPLAIN");
}

/// `USING LAST n DAYS` anchors at the table's newest day per binding:
/// bit-identical to the absolute statement for the same trailing window,
/// and the window moves when a publish appends days — no client-side date
/// math, no re-prepare.
#[test]
fn last_days_window_tracks_publishes() {
    let seed = 63;
    let engine = engine_for(SamplerChoice::OptimalGsw, seed);
    const OPTS: &str = "OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";
    let relative = engine
        .prepare(&format!(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 USING LAST 20 DAYS {OPTS}"
        ))
        .unwrap();
    assert_eq!(relative.num_params(), 0, "a literal day count needs no parameters");

    // Dataset timeline: 45 days from 20200101, newest = 20200214.
    let check = |lo: i64, hi: i64, got: &flashp::core::ForecastResult, label: &str| {
        let fresh = engine
            .forecast(&format!(
                "FORECAST SUM(Impression) FROM ads WHERE age <= 30 USING ({lo}, {hi}) {OPTS}"
            ))
            .unwrap();
        assert_eq!(got.estimate_values(), fresh.estimate_values(), "{label}");
        assert_eq!(got.forecast_values(), fresh.forecast_values(), "{label}");
        assert_eq!(got.rate_used, fresh.rate_used, "{label}");
    };
    let before = relative.forecast_with(&[]).unwrap();
    check(20200126, 20200214, &before, "v0: trailing 20 days");

    // EXPLAIN renders the relative form, not a baked-in range.
    let node = engine
        .explain(&format!("FORECAST SUM(Impression) FROM ads USING LAST 20 DAYS {OPTS}"))
        .unwrap();
    assert_eq!(node.find_prop("range"), Some("dynamic"));
    assert_eq!(node.find_prop("window"), Some("last 20 days"));

    // Publish two more days: the same handle's window slides forward.
    let mut stream = BatchStream::continuing(&dataset_config(seed), StreamConfig::new(400, 21));
    let mut batch = IngestBatch::new();
    for _ in 0..2 {
        let b = stream.next().unwrap();
        batch.push_partition(b.t, b.partition);
    }
    engine.ingest(batch).unwrap();
    engine.publish().unwrap();
    let after = relative.forecast_with(&[]).unwrap();
    check(20200128, 20200216, &after, "v1: window slid with the publish");
    assert_ne!(
        before.estimate_values(),
        after.estimate_values(),
        "the trailing window must move when days are published"
    );

    // Parameterized day count: one handle, any dashboard width.
    let param = engine
        .prepare(&format!(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 USING LAST ? DAYS {OPTS}"
        ))
        .unwrap();
    assert_eq!(param.num_params(), 1);
    let twenty = param.forecast_with(&[Literal::Int(20)]).unwrap();
    assert_eq!(twenty.estimate_values(), after.estimate_values(), "LAST ? DAYS bound to 20");
    let narrower = param.forecast_with(&[Literal::Int(18)]).unwrap();
    check(20200130, 20200216, &narrower, "v1: trailing 18 days");
    // A count longer than the table clamps to the whole table.
    let all = param.forecast_with(&[Literal::Int(100_000)]).unwrap();
    check(20200101, 20200216, &all, "v1: oversized count = whole table");
    // Invalid day counts are typed bind-time errors naming the parameter.
    let err = param.forecast_with(&[Literal::Int(0)]).unwrap_err();
    assert!(matches!(&err, EngineError::Parameter(m) if m.contains("?0")), "{err}");
    assert!(matches!(
        param.forecast_with(&[Literal::Str("week".into())]),
        Err(EngineError::Parameter(_))
    ));
}

/// The same prepared dynamic-range handle serves concurrent re-binders
/// while ingest + publish swaps versions under it: every thread's answer
/// for a range must equal a fresh one-shot of the literal statement
/// against whatever version it snapshotted.
#[test]
fn concurrent_rebinding_survives_publish_swaps() {
    let seed = 57;
    let engine = engine_for(SamplerChoice::OptimalGsw, seed);
    let template = Arc::new(
        engine
            .prepare(
                "FORECAST SUM(Impression) FROM ads WHERE age <= ? USING (?, ?) \
                 OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
            )
            .unwrap(),
    );
    assert_eq!(template.num_params(), 3);
    let ranges: &[(i64, i64, i64)] =
        &[(30, 20200101, 20200210), (40, 20200105, 20200131), (25, 20200110, 20200214)];

    let mut stream = BatchStream::continuing(&dataset_config(seed), StreamConfig::new(200, 13));
    std::thread::scope(|scope| {
        for _ in 0..3 {
            let template = template.clone();
            let engine = &engine;
            scope.spawn(move || {
                for round in 0..4 {
                    for &(age, lo, hi) in ranges {
                        let bound = template
                            .forecast_with(&[Literal::Int(age), Literal::Int(lo), Literal::Int(hi)])
                            .unwrap();
                        // One-shot against the engine's *current* version;
                        // both paths snapshot, and versions only move
                        // between executions, so values must come from
                        // one published version — re-run once to absorb a
                        // swap racing between the two calls.
                        let fresh_sql = format!(
                            "FORECAST SUM(Impression) FROM ads WHERE age <= {age} \
                             USING ({lo}, {hi}) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)"
                        );
                        let fresh = engine.forecast(&fresh_sql).unwrap();
                        if bound.estimate_values() != fresh.estimate_values() {
                            let again = template
                                .forecast_with(&[
                                    Literal::Int(age),
                                    Literal::Int(lo),
                                    Literal::Int(hi),
                                ])
                                .unwrap();
                            let fresh_again = engine.forecast(&fresh_sql).unwrap();
                            assert_eq!(
                                again.estimate_values(),
                                fresh_again.estimate_values(),
                                "round {round}: rebound diverged from fresh parse even \
                                 without a racing publish"
                            );
                        }
                    }
                }
            });
        }
        // Publisher: two ingest+publish swaps while the binders run.
        for _ in 0..2 {
            let b = stream.next().unwrap();
            let mut batch = IngestBatch::new();
            batch.push_partition(b.t, b.partition);
            engine.ingest(batch).unwrap();
            engine.publish().unwrap();
        }
    });
}

/// EXPLAIN of a parameterized range shows the deferred form; binding it
/// through a prepared handle shows the concrete per-binding choice.
#[test]
fn explain_renders_dynamic_ranges() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 3);
    let sql = "FORECAST SUM(Impression) FROM ads WHERE age <= ? USING (?, ?) \
               OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";
    let node = engine.explain(sql).unwrap();
    assert_eq!(node.find_prop("range"), Some("dynamic"));
    assert_eq!(node.find_prop("window"), Some("?1..?2"));
    let deferred = node.find("BindTimeSource").expect("dynamic plan defers its source");
    assert_eq!(deferred.prop("selection"), Some("deferred"));

    let template = engine.prepare(sql).unwrap();
    let bound = template
        .explain_with(&[Literal::Int(30), Literal::Int(20200101), Literal::Int(20200210)])
        .unwrap();
    assert_eq!(bound.find_prop("range"), Some("20200101..20200210"));
    let est = bound.find("SampleEstimate").expect("bound plan names its layer");
    assert!(est.prop("rationale").is_some());
    assert!(est.prop("est_rows").unwrap().parse::<usize>().unwrap() > 0);
}

#[test]
fn parameter_arity_is_enforced() {
    let engine = engine_for(SamplerChoice::Uniform, 1);
    let template =
        engine.prepare("SELECT SUM(Impression) FROM ads WHERE age <= ? AND t = 20200105").unwrap();
    assert!(matches!(template.select_with(&[]), Err(EngineError::Parameter(_))));
    assert!(matches!(
        template.select_with(&[Literal::Int(1), Literal::Int(2)]),
        Err(EngineError::Parameter(_))
    ));
    // One-shot APIs refuse parameterized statements outright.
    assert!(engine.select("SELECT SUM(Impression) FROM ads WHERE age <= ?").is_err());
}

#[test]
fn plan_cache_hits_return_identical_results() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 11);
    let first = engine.forecast(FORECAST).unwrap();
    let miss_stats = engine.plan_cache_stats();
    assert!(miss_stats.misses > 0);
    // Re-issue with scrambled whitespace: normalization makes it a hit.
    let respaced = FORECAST.replace(' ', "   ");
    let second = engine.forecast(&respaced).unwrap();
    let hit_stats = engine.plan_cache_stats();
    assert!(hit_stats.hits > miss_stats.hits, "whitespace variant should hit the cache");
    assert_eq!(first.estimate_values(), second.estimate_values());
    assert_eq!(first.forecast_values(), second.forecast_values());
    // A cloned handle shares the cache and gets the same answer.
    let clone = engine.clone();
    let third = clone.forecast(FORECAST).unwrap();
    assert!(clone.plan_cache_stats().hits > hit_stats.hits);
    assert_eq!(first.forecast_values(), third.forecast_values());
}

#[test]
fn explain_round_trips_for_the_corpus() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 3);
    for sql in CORPUS {
        // Textual round-trip: EXPLAIN <stmt> parses, displays, re-parses.
        let explain_sql = format!("EXPLAIN {sql}");
        let parsed = flashp::query::parse(&explain_sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        assert!(matches!(parsed, flashp::query::Statement::Explain(_)));
        let reparsed = flashp::query::parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reparsed, "EXPLAIN display must re-parse: {sql}");

        // Engine round-trip: the rendered plan parses back as a tree with
        // a scan source, and executing the EXPLAIN never runs the query.
        let node = engine.explain(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let source = node
            .find("SampleEstimate")
            .or_else(|| node.find("FullScan"))
            .unwrap_or_else(|| panic!("{sql}: plan has no scan source:\n{node}"));
        assert!(source.prop("est_rows").unwrap().parse::<usize>().is_ok());
        // Every scan source names the dispatched scan-kernel tier.
        let simd = source.prop("simd").unwrap_or_else(|| panic!("{sql}: no simd prop:\n{node}"));
        assert!(
            ["avx512", "avx2", "sse2", "portable"].contains(&simd),
            "{sql}: unknown tier {simd}"
        );
        // Exact scans name their float-sum mode; sampled sources don't.
        match source.name.as_str() {
            "FullScan" => assert!(
                matches!(source.prop("sum"), Some("exact") | Some("fast")),
                "{sql}: FullScan must name its sum mode:\n{node}"
            ),
            _ => assert_eq!(source.prop("sum"), None, "{sql}: sampled sources have no sum mode"),
        }
        match engine.execute(&explain_sql).unwrap() {
            ExecOutput::Plan(executed) => assert_eq!(executed, node, "{sql}"),
            other => panic!("{sql}: EXPLAIN produced {other:?}"),
        }
    }
}

#[test]
fn explain_names_what_the_executor_uses() {
    // Acceptance: EXPLAIN on a sampled FORECAST names the layer, rate and
    // sampler that the executor then actually uses.
    for sampler in [SamplerChoice::Uniform, SamplerChoice::OptimalGsw] {
        let engine = engine_for(sampler, 17);
        let node = engine.explain(FORECAST).unwrap();
        let est = node.find("SampleEstimate").expect("sampled forecast must use a layer");
        let planned_sampler = est.prop("sampler").unwrap().to_string();
        let planned_rate: f64 = est.prop("rate").unwrap().parse().unwrap();
        let planned_layer: usize = est.prop("layer").unwrap().parse().unwrap();

        let result = engine.forecast(FORECAST).unwrap();
        assert_eq!(result.sampler, planned_sampler, "executor used a different sampler");
        assert_eq!(result.rate_used, planned_rate, "executor used a different rate");
        // The planned layer is the one select_layer picks for this rate.
        assert_eq!(planned_layer, 1, "rate 0.05 is served by the second (sparser) layer");
    }
}

#[test]
fn prepared_queries_share_one_engine_across_threads() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 23);
    let prepared = Arc::new(
        engine
            .prepare(
                "FORECAST SUM(Impression) FROM ads WHERE age <= ? \
                 USING (20200101, 20200210) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
            )
            .unwrap(),
    );
    let ages: Vec<i64> = vec![20, 30, 40, 50];
    let reference: Vec<Vec<f64>> = ages
        .iter()
        .map(|&a| prepared.forecast_with(&[Literal::Int(a)]).unwrap().forecast_values())
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let prepared = prepared.clone();
            let ages = &ages;
            let reference = &reference;
            scope.spawn(move || {
                for (i, &a) in ages.iter().enumerate() {
                    let r = prepared.forecast_with(&[Literal::Int(a)]).unwrap();
                    assert_eq!(r.forecast_values(), reference[i]);
                }
            });
        }
    });
}

/// `OPTION (FAST_SUM = 1)` switches the exact scan to reassociated vector
/// sums: EXPLAIN says so, counts stay exact, and sums stay within
/// accumulated-rounding distance of the default ascending-row order.
#[test]
fn fast_sum_option_flows_to_explain_and_execution() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 5);
    let base = "SELECT SUM(Impression) FROM ads WHERE age <= 30 \
                AND t BETWEEN 20200101 AND 20200110 GROUP BY t";
    let fast_sql = format!("{base} OPTION (FAST_SUM = 1)");
    assert_eq!(engine.explain(base).unwrap().find("FullScan").unwrap().prop("sum"), Some("exact"));
    assert_eq!(
        engine.explain(&fast_sql).unwrap().find("FullScan").unwrap().prop("sum"),
        Some("fast")
    );

    let exact = engine.select(base).unwrap();
    let fast = engine.select(&fast_sql).unwrap();
    assert!(!fast.approximate, "FAST_SUM is still an exact full scan");
    assert_eq!(exact.rows.len(), fast.rows.len());
    for ((t_e, v_e, _), (t_f, v_f, _)) in exact.rows.iter().zip(&fast.rows) {
        assert_eq!(t_e, t_f);
        let tolerance = 1e-9 * v_e.abs().max(1.0);
        assert!((v_e - v_f).abs() <= tolerance, "fast sum {v_f} too far from exact {v_e}");
    }
    // COUNT is unaffected by the sum mode — bit-identical.
    let count = base.replace("SUM", "COUNT");
    assert_eq!(
        engine.select(&count).unwrap(),
        engine.select(&format!("{count} OPTION (FAST_SUM = 1)")).unwrap()
    );
}

/// A `Float64` dimension column works end-to-end: schema, ingest, float
/// literals in SQL, NaN-exact predicate semantics, EXPLAIN rendering.
#[test]
fn float64_dimension_columns_flow_end_to_end() {
    use flashp::storage::{DataType, Schema, TimeSeriesTable, Timestamp, Value};
    let schema =
        Schema::from_names(&[("score", DataType::Float64), ("seg", DataType::UInt8)], &["m"])
            .unwrap()
            .into_shared();
    let mut table = TimeSeriesTable::new(schema);
    let start = Timestamp::from_yyyymmdd(20200101).unwrap();
    for day in 0..3i64 {
        for row in 0..64i64 {
            // Row 7 is NaN: matched by <> only, never by ordered compares.
            let score = if row == 7 { f64::NAN } else { row as f64 / 8.0 };
            table
                .append_row(start + day, &[Value::Float(score), Value::Int(row % 4)], &[1.0])
                .unwrap();
        }
    }
    let engine = FlashPEngine::new(table, EngineConfig::default());

    // score < 0.5 ⇔ row/8 < 0.5 ⇔ rows 0..4 (the NaN row never matches).
    let r = engine.select("SELECT COUNT(*) FROM T WHERE score < 0.5 AND t = 20200101").unwrap();
    assert_eq!(r.rows[0].1, 4.0);
    // <> is NaN-inclusive: everything except the single 0.5 row matches.
    let r = engine.select("SELECT COUNT(*) FROM T WHERE score <> 0.5 AND t = 20200101").unwrap();
    assert_eq!(r.rows[0].1, 63.0);
    // Mixed float/int predicate, over all three days.
    let r = engine.select("SELECT COUNT(*) FROM T WHERE score >= 6.0 AND seg = 1").unwrap();
    assert_eq!(r.rows[0].1, 3.0 * 4.0);
    // An integer literal promotes against a Float64 column.
    let r = engine.select("SELECT COUNT(*) FROM T WHERE score >= 6 AND seg = 1").unwrap();
    assert_eq!(r.rows[0].1, 12.0);
    // EXPLAIN renders the folded float comparison with the decimal point.
    let node = engine.explain("SELECT SUM(m) FROM T WHERE score < 0.5 AND t = 20200101").unwrap();
    assert_eq!(node.find("Predicate").unwrap().prop("folded"), Some("score < 0.5"));
    // IN on a float column is a typed error, not a silent wrong answer.
    let err = engine.select("SELECT COUNT(*) FROM T WHERE score IN (0.5) AND t = 20200101");
    assert!(err.is_err());
}

/// Re-runs this test in a subprocess once per supported `FLASHP_KERNEL_TIER`
/// pin: the pinned tier must become the active tier, EXPLAIN must report
/// it, and an exact-scan answer must be bit-identical across every tier.
#[test]
fn pinned_kernel_tiers_report_in_explain_and_agree() {
    const CHILD_VAR: &str = "FLASHP_TIER_TEST_CHILD";
    const QUERY: &str = "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t = 20200105";
    if let Ok(expected) = std::env::var(CHILD_VAR) {
        assert_eq!(flashp::storage::simd::active_tier().name(), expected, "pin was not honored");
        let engine = engine_for(SamplerChoice::OptimalGsw, 3);
        let node = engine.explain(QUERY).unwrap();
        assert_eq!(node.find("FullScan").unwrap().prop("simd"), Some(expected.as_str()));
        let r = engine.select(QUERY).unwrap();
        println!("TIER_RESULT {}", r.rows[0].1.to_bits());
        return;
    }
    // Every tier at or below the auto-detected one is supported here.
    let order = ["portable", "sse2", "avx2", "avx512"];
    let active = flashp::storage::simd::active_tier().name();
    let best = order.iter().position(|t| *t == active).expect("active tier is a known name");
    let exe = std::env::current_exe().unwrap();
    let mut results = Vec::new();
    for tier in &order[..=best] {
        let out = std::process::Command::new(&exe)
            .args(["--exact", "pinned_kernel_tiers_report_in_explain_and_agree", "--nocapture"])
            .env(CHILD_VAR, tier)
            .env("FLASHP_KERNEL_TIER", tier)
            .env_remove("FLASHP_FORCE_SCALAR_KERNELS")
            .output()
            .unwrap();
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            out.status.success(),
            "tier {tier} child failed:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        // The harness may print its own "test … ." prefix on the same
        // line, so search within lines rather than anchoring at the start.
        let bits: u64 = stdout
            .lines()
            .find_map(|l| l.split("TIER_RESULT ").nth(1))
            .unwrap_or_else(|| panic!("tier {tier}: no result line in\n{stdout}"))
            .trim()
            .parse()
            .unwrap();
        results.push((tier, bits));
    }
    let (_, first) = results[0];
    for (tier, bits) in &results {
        assert_eq!(*bits, first, "tier {tier} disagrees with {}", results[0].0);
    }
}

#[test]
fn approximate_select_surfaces_std_err() {
    let engine = engine_for(SamplerChoice::OptimalGsw, 5);
    let exact = engine
        .select("SELECT SUM(Impression) FROM ads WHERE t BETWEEN 20200101 AND 20200105 GROUP BY t")
        .unwrap();
    assert!(!exact.approximate);
    assert!(exact.rows.iter().all(|(_, _, se)| se.is_none()));
    let approx = engine
        .select(
            "SELECT SUM(Impression) FROM ads WHERE t BETWEEN 20200101 AND 20200105 \
             GROUP BY t OPTION (SAMPLE_RATE = 0.05)",
        )
        .unwrap();
    assert!(approx.approximate);
    assert_eq!(approx.rows.len(), exact.rows.len());
    for ((t_e, v_e, _), (t_a, v_a, se)) in exact.rows.iter().zip(&approx.rows) {
        assert_eq!(t_e, t_a);
        let se = se.expect("approximate SUM rows carry a standard error");
        assert!(se > 0.0);
        // The estimate should be within a few standard errors of truth.
        assert!((v_a - v_e).abs() < 6.0 * se, "estimate {v_a} too far from exact {v_e} (se {se})");
    }
}
