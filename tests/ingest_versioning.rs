//! Live ingest with versioned catalog swap (§4.1 + §5).
//!
//! Pins the three contracts of the ingest subsystem:
//!
//! * executions — prepared or one-shot — always answer from **exactly
//!   one** catalog version, even while publishes race them;
//! * an incrementally derived catalog (`apply_delta`) is **bit-for-bit**
//!   the catalog a full rebuild over the post-ingest table would draw;
//! * plan-cache entries are scoped to the version they were planned
//!   against and miss after a publish;
//! * `EXPLAIN` reports the catalog version a plan was made against.

use flashp::core::{EngineConfig, FlashPEngine, IngestBatch, SampleCatalog, SamplerChoice};
use flashp::storage::{DataType, Schema, TimeSeriesTable, Timestamp, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DAYS: i64 = 20;
const ROWS_PER_DAY: i64 = 200;

fn base_table() -> TimeSeriesTable {
    let schema = Schema::from_names(&[("seg", DataType::Int64)], &["m1"]).unwrap().into_shared();
    let mut table = TimeSeriesTable::new(schema);
    let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
    for day in 0..DAYS {
        for row in 0..ROWS_PER_DAY {
            let value = 10.0 + (day as f64) + (row % 13) as f64;
            table.append_row(t0 + day, &[Value::Int(row % 10)], &[value]).unwrap();
        }
    }
    table
}

fn config() -> EngineConfig {
    EngineConfig {
        layer_rates: vec![0.2, 0.05],
        sampler: SamplerChoice::OptimalGsw,
        default_rate: 0.05,
        ..Default::default()
    }
}

fn engine() -> FlashPEngine {
    let table = base_table();
    let cfg = config();
    let catalog = SampleCatalog::build(&table, &cfg).unwrap();
    FlashPEngine::with_catalog(table, cfg, catalog)
}

/// The deterministic ingest step `k`: heavy rows into days 5..=9, so a
/// torn execution mixing two versions would produce a per-day vector
/// matching no single version.
fn step_batch(k: usize) -> IngestBatch {
    let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
    let mut batch = IngestBatch::new();
    for day in 5..10i64 {
        for row in 0..50i64 {
            let value = 1000.0 * (k as f64 + 1.0) + day as f64 + row as f64;
            batch.push_row(t0 + day, &[Value::Int(row % 10)], &[value]);
        }
    }
    batch
}

const EXACT_SQL: &str = "SELECT SUM(m1) FROM T WHERE t BETWEEN 20200106 AND 20200110 GROUP BY t";
const SAMPLED_SQL: &str = "SELECT SUM(m1) FROM T WHERE t BETWEEN 20200106 AND 20200110 \
     GROUP BY t OPTION (SAMPLE_RATE = 0.2)";

/// (a) Prepared queries executing across concurrent swaps return answers
/// consistent with exactly one catalog version: every observed per-day
/// row vector equals the vector some published version produces — never
/// a mixture.
#[test]
fn concurrent_swap_answers_from_exactly_one_version() {
    const STEPS: usize = 6;

    // Oracle: replay the identical ingest sequence step by step and
    // record the per-version expected answers (engine builds are
    // deterministic given the seed, so a second engine answers
    // identically version for version).
    let oracle = engine();
    let oracle_exact = oracle.prepare(EXACT_SQL).unwrap();
    let oracle_sampled = oracle.prepare(SAMPLED_SQL).unwrap();
    let mut expected_exact = vec![oracle_exact.select_with(&[]).unwrap().rows];
    let mut expected_sampled = vec![oracle_sampled.select_with(&[]).unwrap().rows];
    for k in 0..STEPS {
        oracle.ingest(step_batch(k)).unwrap();
        oracle.publish().unwrap();
        expected_exact.push(oracle_exact.select_with(&[]).unwrap().rows);
        expected_sampled.push(oracle_sampled.select_with(&[]).unwrap().rows);
    }
    // The appends make every version's answer distinct.
    for w in expected_exact.windows(2) {
        assert_ne!(w[0], w[1]);
    }

    // Live run: readers hammer the same prepared statements while the
    // main thread replays the ingest sequence.
    let live = engine();
    let exact = Arc::new(live.prepare(EXACT_SQL).unwrap());
    let sampled = Arc::new(live.prepare(SAMPLED_SQL).unwrap());
    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let (exact, sampled, stop) = (exact.clone(), sampled.clone(), stop.clone());
            readers.push(scope.spawn(move || {
                let mut observed = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    observed.push((
                        exact.select_with(&[]).unwrap().rows,
                        sampled.select_with(&[]).unwrap().rows,
                    ));
                }
                observed
            }));
        }
        for k in 0..STEPS {
            live.ingest(step_batch(k)).unwrap();
            live.publish().unwrap();
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        stop.store(true, Ordering::Relaxed);
        let mut total = 0usize;
        for reader in readers {
            for (exact_rows, sampled_rows) in reader.join().unwrap() {
                total += 1;
                assert!(
                    expected_exact.contains(&exact_rows),
                    "exact answer matches no single version: {exact_rows:?}"
                );
                assert!(
                    expected_sampled.contains(&sampled_rows),
                    "sampled answer matches no single version: {sampled_rows:?}"
                );
            }
        }
        assert!(total > 0, "readers must have executed during the swaps");
    });
    // After the last publish the prepared handles serve the final version.
    assert_eq!(exact.select_with(&[]).unwrap().rows, expected_exact[STEPS]);
    assert_eq!(sampled.select_with(&[]).unwrap().rows, expected_sampled[STEPS]);
}

/// (b) The incrementally derived catalog equals a full rebuild of the
/// post-ingest table bit-for-bit on the retained-sample invariant: same
/// retained rows, same inclusion probabilities, cell for cell — and
/// therefore identical sampled answers.
#[test]
fn incremental_catalog_equals_full_rebuild_bit_for_bit() {
    let e = engine();
    for k in 0..3 {
        e.ingest(step_batch(k)).unwrap();
        let stats = e.publish().unwrap();
        assert_eq!(stats.changed_partitions, 5);
        assert_eq!(stats.appended_rows, 250);
        assert_eq!(stats.delta.rebuilt_cells + stats.delta.absorbed_cells, 2 * 5);
    }

    let table = e.table();
    let live_catalog = e.catalog().expect("catalog attached");
    let rebuilt = SampleCatalog::build(&table, e.config()).unwrap();
    let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
    for layer in 0..rebuilt.num_layers() {
        for day in 0..DAYS {
            let a = live_catalog.sample_for(layer, 0, t0 + day).unwrap();
            let b = rebuilt.sample_for(layer, 0, t0 + day).unwrap();
            assert_eq!(a.num_rows(), b.num_rows(), "layer {layer} day {day}");
            assert_eq!(a.population_rows(), b.population_rows());
            assert_eq!(
                a.inclusion_probabilities(),
                b.inclusion_probabilities(),
                "layer {layer} day {day}: π vectors differ"
            );
            assert_eq!(a.rows().measure(0), b.rows().measure(0));
            assert_eq!(a.method(), b.method());
        }
    }
    assert_eq!(live_catalog.stats().total_bytes, rebuilt.stats().total_bytes);

    // And an engine over the rebuilt catalog answers sampled queries
    // bit-identically.
    let fresh = FlashPEngine::with_catalog(table, e.config().clone(), rebuilt);
    assert_eq!(e.select(SAMPLED_SQL).unwrap().rows, fresh.select(SAMPLED_SQL).unwrap().rows);
}

/// (c) Plan-cache entries are scoped to the catalog version they were
/// planned against: they hit before a publish and miss (re-plan) after.
#[test]
fn plan_cache_entries_scoped_to_old_catalog_miss_after_publish() {
    let e = engine();
    e.select(SAMPLED_SQL).unwrap(); // plan + cache at v0
    let s0 = e.plan_cache_stats();
    e.select(SAMPLED_SQL).unwrap();
    let s1 = e.plan_cache_stats();
    assert_eq!(s1.hits, s0.hits + 1, "pre-publish repeat hits the cache");

    e.ingest(step_batch(0)).unwrap();
    e.publish().unwrap();

    e.select(SAMPLED_SQL).unwrap();
    let s2 = e.plan_cache_stats();
    assert_eq!(s2.hits, s1.hits, "post-publish lookup must not serve the stale plan");
    assert!(s2.misses > s1.misses, "post-publish lookup re-plans");
    e.select(SAMPLED_SQL).unwrap();
    let s3 = e.plan_cache_stats();
    assert_eq!(s3.hits, s2.hits + 1, "the re-planned entry hits at the new version");
}

/// EXPLAIN names the catalog version a plan was made against, and the
/// version it names advances with every publish.
#[test]
fn explain_reports_the_catalog_version() {
    let e = engine();
    let version_of = |e: &FlashPEngine| -> u64 {
        let node = e.explain(SAMPLED_SQL).unwrap();
        node.find("SampleEstimate").unwrap().prop("catalog_version").unwrap().parse().unwrap()
    };
    let v0 = version_of(&e);
    assert_eq!(v0, e.catalog().unwrap().version());

    e.ingest(step_batch(0)).unwrap();
    let stats = e.publish().unwrap();
    let v1 = version_of(&e);
    assert!(v1 > v0, "publish must advance the catalog version");
    assert_eq!(Some(v1), stats.catalog_version);
    assert_eq!(v1, e.catalog().unwrap().version());

    // A prepared query's EXPLAIN names the version its next execution
    // answers from — it follows publishes, matching the lazy re-plan.
    let prepared = e.prepare(SAMPLED_SQL).unwrap();
    let prepared_version = |q: &flashp::core::PreparedQuery| -> u64 {
        q.explain()
            .unwrap()
            .find("SampleEstimate")
            .unwrap()
            .prop("catalog_version")
            .unwrap()
            .parse()
            .unwrap()
    };
    assert_eq!(prepared_version(&prepared), v1);
    e.ingest(step_batch(1)).unwrap();
    e.publish().unwrap();
    let v2 = version_of(&e);
    assert!(v2 > v1);
    assert_eq!(
        prepared_version(&prepared),
        v2,
        "a prepared plan re-plans against the published version"
    );
}

/// A publish re-plans prepared statements, so version-dependent plan
/// constants — the clamped time range, dictionary-folded predicate codes
/// — never go stale: a prepared SELECT whose statement covers a day that
/// only exists after a publish includes it, exactly like a fresh
/// one-shot of the same text.
#[test]
fn prepared_plans_refresh_clamped_ranges_after_publish() {
    let e = engine();
    // The statement asks through 20200125; the table ends at 20200120,
    // so the prepare-time plan clamps to day 20.
    let sql = "SELECT SUM(m1) FROM T WHERE t BETWEEN 20200101 AND 20200125";
    let prepared = e.prepare(sql).unwrap();
    let before = prepared.select_with(&[]).unwrap().rows[0].1;

    // Publish a brand-new day 21 inside the statement's range.
    let mut batch = IngestBatch::new();
    let new_day = Timestamp::from_yyyymmdd(20200121).unwrap();
    for row in 0..100i64 {
        batch.push_row(new_day, &[Value::Int(row % 10)], &[500.0]);
    }
    e.ingest(batch).unwrap();
    e.publish().unwrap();

    let after = prepared.select_with(&[]).unwrap().rows[0].1;
    assert!(
        (after - (before + 100.0 * 500.0)).abs() < 1e-6,
        "prepared handle must include the newly published day: {before} -> {after}"
    );
    // And it answers exactly what a fresh one-shot answers.
    assert_eq!(after, e.select(sql).unwrap().rows[0].1);
}

/// Zero-row partitions are dropped at batch construction: they would
/// otherwise create a day no sampler can draw a cell from.
#[test]
fn empty_partitions_are_not_staged() {
    use flashp::storage::PartitionBuilder;
    let e = engine();
    let schema = e.table().schema().clone();
    let mut batch = IngestBatch::new();
    batch.push_partition(
        Timestamp::from_yyyymmdd(20200125).unwrap(),
        PartitionBuilder::with_capacity(&schema, 0).finish(),
    );
    assert!(batch.is_empty());
    assert_eq!(e.ingest(batch).unwrap(), 0);
    let stats = e.publish().unwrap();
    assert_eq!(stats.appended_rows, 0);
    // The day was never created, and the catalog still rebuilds cleanly.
    assert!(e.table().partition(Timestamp::from_yyyymmdd(20200125).unwrap()).is_none());
    assert!(SampleCatalog::build(&e.table(), e.config()).is_ok());
}

/// A batch that fails partway stages nothing: the valid leading items
/// must not be half-applied (a retry would double-ingest them).
#[test]
fn failed_batches_stage_nothing() {
    let e = engine();
    let t0 = Timestamp::from_yyyymmdd(20200103).unwrap();
    let mut batch = IngestBatch::new();
    // Valid row first…
    batch.push_row(t0, &[Value::Int(1)], &[7.0]);
    // …then a row with the wrong arity (2 dims against a 1-dim schema).
    batch.push_row(t0 + 1, &[Value::Int(1), Value::Int(2)], &[7.0]);
    assert!(e.ingest(batch).is_err());
    // Nothing staged: the next publish is a no-op.
    let stats = e.publish().unwrap();
    assert_eq!(stats.appended_rows, 0);
    let expected = (ROWS_PER_DAY * DAYS) as f64;
    assert_eq!(e.select("SELECT COUNT(*) FROM T").unwrap().rows[0].1, expected);
}

/// Ingest is staged: nothing is visible until publish, batches
/// accumulate, and the appended rows land exactly once.
#[test]
fn staged_ingest_is_atomic_and_accumulates() {
    let e = engine();
    let count_sql = "SELECT COUNT(*) FROM T";
    let before = e.select(count_sql).unwrap().rows[0].1;

    assert_eq!(e.ingest(step_batch(0)).unwrap(), 250);
    assert_eq!(e.ingest(step_batch(1)).unwrap(), 250);
    assert_eq!(e.select(count_sql).unwrap().rows[0].1, before, "staged rows invisible");

    let stats = e.publish().unwrap();
    assert_eq!(stats.appended_rows, 500);
    assert_eq!(e.select(count_sql).unwrap().rows[0].1, before + 500.0);

    // An empty publish changes nothing.
    let idle = e.publish().unwrap();
    assert_eq!(idle.appended_rows, 0);
    assert_eq!(idle.version, stats.version);
    assert_eq!(e.select(count_sql).unwrap().rows[0].1, before + 500.0);
}
