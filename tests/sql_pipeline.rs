//! SQL surface tests against the engine: options plumbing, error paths,
//! and semantic agreement between SELECT and direct computation.

use flashp::core::{EngineConfig, ExecOutput, FlashPEngine, SamplerChoice};
use flashp::data::{generate_dataset, DatasetConfig};
use std::sync::Arc;

fn engine() -> FlashPEngine {
    let ds = generate_dataset(&DatasetConfig::new(1_000, 40, 77)).unwrap();
    let mut e = FlashPEngine::new(
        Arc::new(ds.table),
        EngineConfig {
            sampler: SamplerChoice::OptimalGsw,
            layer_rates: vec![0.1],
            default_rate: 0.1,
            table_name: Some("ads".to_string()),
            ..Default::default()
        },
    );
    e.build_samples().unwrap();
    e
}

#[test]
fn options_control_the_pipeline() {
    let e = engine();
    let base = "FORECAST SUM(Impression) FROM ads WHERE gender = 'F' USING (20200101, 20200209)";
    // FORE_PERIOD.
    let r = e.forecast(&format!("{base} OPTION (MODEL = 'naive', FORE_PERIOD = 3)")).unwrap();
    assert_eq!(r.forecasts.len(), 3);
    // Default horizon is 7.
    let r = e.forecast(&format!("{base} OPTION (MODEL = 'naive')")).unwrap();
    assert_eq!(r.forecasts.len(), 7);
    // CONFIDENCE: wider at 0.99 than 0.5.
    let lo = e.forecast(&format!("{base} OPTION (MODEL = 'naive', CONFIDENCE = 0.5)")).unwrap();
    let hi = e.forecast(&format!("{base} OPTION (MODEL = 'naive', CONFIDENCE = 0.99)")).unwrap();
    assert!(hi.mean_interval_width() > lo.mean_interval_width());
    assert_eq!(hi.confidence, 0.99);
    // MODEL flows into the result name.
    let r = e.forecast(&format!("{base} OPTION (MODEL = 'seasonal_naive(7)')")).unwrap();
    assert_eq!(r.model, "seasonal_naive(7)");
}

#[test]
fn option_validation_errors() {
    let e = engine();
    let base = "FORECAST SUM(Impression) FROM ads USING (20200101, 20200131)";
    for bad in [
        "OPTION (SAMPLE_RATE = 'high')",
        "OPTION (SAMPLE_RATE = 0)",
        "OPTION (MODEL = 7)",
        "OPTION (FORE_PERIOD = 'week')",
        "OPTION (CONFIDENCE = 'high')",
        "OPTION (MODEL = 'unknown_model')",
    ] {
        assert!(e.forecast(&format!("{base} {bad}")).is_err(), "{bad} should fail");
    }
}

#[test]
fn unknown_names_error_cleanly() {
    let e = engine();
    assert!(e.forecast("FORECAST SUM(Impression) FROM typo USING (20200101, 20200131)").is_err());
    assert!(e.forecast("FORECAST SUM(Revenue) FROM ads USING (20200101, 20200131)").is_err());
    assert!(e
        .forecast("FORECAST SUM(Impression) FROM ads WHERE nocolumn = 1 USING (20200101, 20200131)")
        .is_err());
    // Range predicate on a categorical column.
    assert!(e
        .forecast("FORECAST SUM(Impression) FROM ads WHERE gender < 'F' USING (20200101, 20200131)")
        .is_err());
}

#[test]
fn execute_round_trips_statement_kinds() {
    let e = engine();
    let out = e.execute("SELECT COUNT(*) FROM ads WHERE t = 20200102").unwrap();
    match out {
        ExecOutput::Select(s) => {
            assert_eq!(s.rows.len(), 1);
            assert!(s.rows[0].1 > 0.0);
        }
        _ => panic!("expected select"),
    }
    let out = e
        .execute("FORECAST AVG(Click) FROM ads USING (20200101, 20200131) OPTION (MODEL = 'naive')")
        .unwrap();
    match out {
        ExecOutput::Forecast(f) => assert_eq!(f.forecasts.len(), 7),
        _ => panic!("expected forecast"),
    }
}

#[test]
fn select_semantics_match_manual_aggregation() {
    let e = engine();
    // Manual: sum over three specific days of female impressions.
    let pred = e.table().compile_predicate(&flashp::storage::Predicate::eq("gender", "F")).unwrap();
    let mut manual = 0.0;
    for d in 0..3 {
        let t = flashp::storage::Timestamp::from_yyyymmdd(20200105).unwrap() + d;
        manual += e.table().aggregate_at(t, 0, &pred, flashp::storage::AggFunc::Sum).unwrap();
    }
    let sql = e
        .select(
            "SELECT SUM(Impression) FROM ads \
             WHERE gender = 'F' AND t BETWEEN 20200105 AND 20200107",
        )
        .unwrap();
    assert!((sql.rows[0].1 - manual).abs() < 1e-9);

    // AVG across a range = total sum / total count.
    let avg = e
        .select(
            "SELECT AVG(Impression) FROM ads \
             WHERE gender = 'F' AND t BETWEEN 20200105 AND 20200107",
        )
        .unwrap();
    let count = e
        .select(
            "SELECT COUNT(*) FROM ads \
             WHERE gender = 'F' AND t BETWEEN 20200105 AND 20200107",
        )
        .unwrap();
    assert!((avg.rows[0].1 - manual / count.rows[0].1).abs() < 1e-9);
}

#[test]
fn figure2_style_rewrite_equivalence() {
    // The FORECAST training series must equal the per-day SELECT answers —
    // the rewrite of Fig. 2 / Eq. (4).
    let e = engine();
    let r = e
        .forecast(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
             USING (20200110, 20200119) OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
        )
        .unwrap();
    for point in &r.estimates {
        let day = point.t.to_yyyymmdd();
        let s = e
            .select(&format!(
                "SELECT SUM(Impression) FROM ads \
                 WHERE age <= 30 AND gender = 'F' AND t = {day}"
            ))
            .unwrap();
        assert!(
            (s.rows[0].1 - point.value).abs() < 1e-9,
            "day {day}: select {} vs forecast estimate {}",
            s.rows[0].1,
            point.value
        );
    }
}
