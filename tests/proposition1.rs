//! Empirical verification of Proposition 1 (§3 / Appendix A.1):
//! for an ARMA(1,1) process observed through unbiased, independent
//! estimation noise ε with variance σ_ε²,
//!
//! ```text
//! Var[M̂_t] = a · σ_u² + σ_ε²,   a = (1 + 2α₁β₁ + β₁²)/(1 − α₁²)
//! ```
//!
//! and the consequences the paper draws from it: noisier estimates widen
//! forecast intervals, and once σ_ε² ≪ σ_u² the impact on forecasts is
//! negligible (Exp-IV's observation).

use flashp::forecast::model::ForecastModel;
use flashp::forecast::noise::{arma11_noisy_variance, arma11_variance_constant};
use flashp::forecast::simulate::{add_estimation_noise, simulate_arma, ArmaSpec};
use flashp::forecast::stats::sample_variance;
use flashp::forecast::ArmaModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

const ALPHA: f64 = 0.6;
const BETA: f64 = 0.25;
const SIGMA_U: f64 = 1.0;

#[test]
fn stationary_variance_matches_formula() {
    let mut rng = StdRng::seed_from_u64(101);
    let spec = ArmaSpec { ar: vec![ALPHA], ma: vec![BETA], mean: 0.0, sigma: SIGMA_U };
    for sigma_eps in [0.0, 1.0, 2.5] {
        let clean = simulate_arma(&spec, 200_000, &mut rng);
        let noisy = add_estimation_noise(&clean, sigma_eps, &mut rng);
        let predicted =
            arma11_noisy_variance(ALPHA, BETA, SIGMA_U * SIGMA_U, sigma_eps * sigma_eps).unwrap();
        let observed = sample_variance(&noisy);
        let rel = (observed - predicted).abs() / predicted;
        assert!(rel < 0.05, "sigma_eps {sigma_eps}: observed {observed} vs predicted {predicted}");
    }
}

#[test]
fn variance_constant_is_the_proposition_constant() {
    // a = (1 + 2·0.6·0.25 + 0.0625)/(1 − 0.36)
    let a = arma11_variance_constant(ALPHA, BETA).unwrap();
    let expected = (1.0 + 2.0 * ALPHA * BETA + BETA * BETA) / (1.0 - ALPHA * ALPHA);
    assert!((a - expected).abs() < 1e-12);
}

#[test]
fn noise_widens_fitted_forecast_intervals() {
    // Fit ARMA(1,1) on clean vs noisy estimates of the same series: the
    // noisy fit must carry a larger innovation variance and wider
    // intervals — the mechanism behind Fig. 12(a).
    let mut rng = StdRng::seed_from_u64(102);
    let spec = ArmaSpec { ar: vec![ALPHA], ma: vec![BETA], mean: 100.0, sigma: SIGMA_U };
    let clean = simulate_arma(&spec, 2_000, &mut rng);
    let noisy = add_estimation_noise(&clean, 2.0, &mut rng);

    let mut m_clean = ArmaModel::new(1, 1);
    let mut m_noisy = ArmaModel::new(1, 1);
    m_clean.fit(&clean).unwrap();
    m_noisy.fit(&noisy).unwrap();
    assert!(
        m_noisy.sigma2() > m_clean.sigma2() * 1.5,
        "noisy sigma2 {} vs clean {}",
        m_noisy.sigma2(),
        m_clean.sigma2()
    );
    let f_clean = m_clean.forecast(7, 0.9).unwrap();
    let f_noisy = m_noisy.forecast(7, 0.9).unwrap();
    assert!(f_noisy.mean_interval_width() > f_clean.mean_interval_width());
}

#[test]
fn negligible_noise_has_negligible_impact() {
    // σ_ε = 0.05 σ_u: interval widths within a few percent of the clean
    // fit — "if ε's variance is negligible in comparison to u's, ε will
    // have little impact on the forecast error/interval".
    let mut rng = StdRng::seed_from_u64(103);
    let spec = ArmaSpec { ar: vec![ALPHA], ma: vec![BETA], mean: 100.0, sigma: SIGMA_U };
    let clean = simulate_arma(&spec, 2_000, &mut rng);
    let noisy = add_estimation_noise(&clean, 0.05, &mut rng);

    let mut m_clean = ArmaModel::new(1, 1);
    let mut m_noisy = ArmaModel::new(1, 1);
    m_clean.fit(&clean).unwrap();
    m_noisy.fit(&noisy).unwrap();
    let w_clean = m_clean.forecast(7, 0.9).unwrap().mean_interval_width();
    let w_noisy = m_noisy.forecast(7, 0.9).unwrap().mean_interval_width();
    assert!(
        (w_noisy - w_clean).abs() / w_clean < 0.05,
        "clean width {w_clean} vs noisy width {w_noisy}"
    );
}

#[test]
fn unbiasedness_and_independence_of_engine_estimates() {
    // The engine's per-day estimates satisfy §3's two required properties:
    // unbiasedness (mean of estimates ≈ truth) and independence across
    // days (estimates come from independently drawn per-partition
    // samples; verify via near-zero lag-1 autocorrelation of the error).
    use flashp::core::{EngineConfig, FlashPEngine, SamplerChoice};
    use flashp::data::{generate_dataset, DatasetConfig};
    use flashp::storage::{AggFunc, Predicate, Timestamp};

    let ds = generate_dataset(&DatasetConfig::new(2_000, 60, 55)).unwrap();
    let mut engine = FlashPEngine::new(
        ds.table,
        EngineConfig {
            sampler: SamplerChoice::OptimalGsw,
            layer_rates: vec![0.05],
            ..Default::default()
        },
    );
    engine.build_samples().unwrap();
    let pred = engine.table().compile_predicate(&Predicate::eq("gender", "F")).unwrap();
    let start = Timestamp::from_yyyymmdd(20200101).unwrap();
    let end = start + 59;
    let (exact, _, _) = engine.estimate_series(0, &pred, AggFunc::Sum, start, end, 1.0).unwrap();
    let (est, _, _) = engine.estimate_series(0, &pred, AggFunc::Sum, start, end, 0.05).unwrap();

    let errors: Vec<f64> =
        est.iter().zip(&exact).map(|(e, x)| (e.value - x.value) / x.value).collect();
    let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(mean_err.abs() < 0.05, "relative bias {mean_err}");

    let acf = flashp::forecast::stats::acf(&errors, 1);
    assert!(acf[1].abs() < 0.35, "lag-1 autocorrelation of errors = {}", acf[1]);
}
