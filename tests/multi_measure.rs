//! Multi-measure space/accuracy tradeoffs (§4.2, Figs. 5 & 15): one
//! compressed sample serves every measure at a fraction of the space of
//! per-measure weighted samples, and grouping by L1 distance matters.

use flashp::core::{EngineConfig, FlashPEngine, GroupingPolicy, SamplerChoice};
use flashp::data::dimensions::measure;
use flashp::data::{generate_dataset, DatasetConfig};
use flashp::sampling::consistency::normalized_l1;
use flashp::sampling::group_measures;
use flashp::storage::{AggFunc, Predicate, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

#[test]
fn compressed_samples_use_a_fraction_of_the_space() {
    let ds = generate_dataset(&DatasetConfig::new(2_000, 20, 31)).unwrap();
    let table = Arc::new(ds.table);
    let mut per_measure = FlashPEngine::new(
        table.clone(),
        EngineConfig {
            sampler: SamplerChoice::OptimalGsw,
            layer_rates: vec![0.02],
            ..Default::default()
        },
    );
    let a = per_measure.build_samples().unwrap();
    let mut compressed = FlashPEngine::new(
        table.clone(),
        EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Single,
            layer_rates: vec![0.02],
            ..Default::default()
        },
    );
    let b = compressed.build_samples().unwrap();
    // 4 measures per-measure vs 1 shared sample: ~4x space difference.
    let ratio = a.total_bytes as f64 / b.total_bytes as f64;
    assert!(
        ratio > 3.0 && ratio < 5.0,
        "space ratio {ratio} should be near 4 (four per-measure samples vs one)"
    );
}

#[test]
fn every_measure_estimable_from_one_compressed_sample() {
    let ds = generate_dataset(&DatasetConfig::new(2_000, 20, 32)).unwrap();
    let table = Arc::new(ds.table);
    let mut engine = FlashPEngine::new(
        table.clone(),
        EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Auto { num_groups: 2 },
            layer_rates: vec![0.05],
            ..Default::default()
        },
    );
    let stats = engine.build_samples().unwrap();
    assert_eq!(stats.groups.iter().map(Vec::len).sum::<usize>(), 4);

    let pred = table.compile_predicate(&Predicate::eq("gender", "F")).unwrap();
    let start = Timestamp::from_yyyymmdd(20200101).unwrap();
    let end = start + 19;
    for m in 0..4 {
        let (exact, _, _) =
            engine.estimate_series(m, &pred, AggFunc::Sum, start, end, 1.0).unwrap();
        let (est, _, _) = engine.estimate_series(m, &pred, AggFunc::Sum, start, end, 0.05).unwrap();
        let exact_v: Vec<f64> = exact.iter().map(|p| p.value).collect();
        let est_v: Vec<f64> = est.iter().map(|p| p.value).collect();
        let err = flashp::forecast::metrics::mean_relative_error(&est_v, &exact_v).unwrap();
        assert!(err < 0.5, "measure {m}: error {err}");
    }
}

#[test]
fn grouping_reflects_funnel_structure() {
    // Impression/Click are tightly coupled by construction (CTR ratios);
    // their L1 distance must be smaller than Impression↔Cart (Cart has
    // per-row lognormal noise with σ = 0.9).
    let ds = generate_dataset(&DatasetConfig::new(4_000, 3, 33)).unwrap();
    let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
    let p = ds.table.partition(t0).unwrap();
    let d_imp_click = normalized_l1(p.measure(measure::IMPRESSION), p.measure(measure::CLICK));
    let d_imp_cart = normalized_l1(p.measure(measure::IMPRESSION), p.measure(measure::CART));
    assert!(
        d_imp_click < d_imp_cart,
        "imp↔click {d_imp_click} should be below imp↔cart {d_imp_cart}"
    );

    // KCENTER grouping into 2 groups keeps Impression and Click together.
    let mut rng = StdRng::seed_from_u64(0);
    let groups = group_measures(p, &[0, 1, 2, 3], 2, 50_000, &mut rng).unwrap();
    let find = |m: usize| groups.groups.iter().position(|g| g.contains(&m)).unwrap();
    assert_eq!(
        find(measure::IMPRESSION),
        find(measure::CLICK),
        "groups {:?} should keep the funnel neighbours together",
        groups.groups
    );
}

#[test]
fn better_grouping_gives_better_estimates() {
    // Fig. 5's point: grouping similar measures together (low L1 radius)
    // beats grouping dissimilar ones. Compare the auto (KCENTER) grouping
    // against the deliberately bad pairing for the noisiest measure.
    let ds = generate_dataset(&DatasetConfig::new(3_000, 15, 34)).unwrap();
    let table = Arc::new(ds.table);
    let pred = table.compile_predicate(&Predicate::True).unwrap();
    let start = Timestamp::from_yyyymmdd(20200101).unwrap();
    let end = start + 14;
    let rate = 0.01;

    let mean_err = |grouping: GroupingPolicy| {
        let mut engine = FlashPEngine::new(
            table.clone(),
            EngineConfig {
                sampler: SamplerChoice::ArithmeticGsw,
                grouping,
                layer_rates: vec![rate],
                ..Default::default()
            },
        );
        engine.build_samples().unwrap();
        // Average error across all four measures.
        let mut total = 0.0;
        for m in 0..4 {
            let (exact, _, _) =
                engine.estimate_series(m, &pred, AggFunc::Sum, start, end, 1.0).unwrap();
            let (est, _, _) =
                engine.estimate_series(m, &pred, AggFunc::Sum, start, end, rate).unwrap();
            for (e, x) in est.iter().zip(&exact) {
                total += (e.value - x.value).abs() / x.value;
            }
        }
        total / (4.0 * 15.0)
    };

    // Good: funnel neighbours together. Bad: split the funnel apart.
    let good = mean_err(GroupingPolicy::Explicit(vec![
        vec![measure::IMPRESSION, measure::CLICK],
        vec![measure::FAVORITE, measure::CART],
    ]));
    let bad = mean_err(GroupingPolicy::Explicit(vec![
        vec![measure::IMPRESSION, measure::CART],
        vec![measure::CLICK, measure::FAVORITE],
    ]));
    println!("good grouping err {good}, bad grouping err {bad}");
    // The good grouping should not lose; allow noise slack.
    assert!(good < bad * 1.15, "good {good} vs bad {bad}");
}
