//! Empirical checks of the §4 error theory: the measured RSTD of GSW
//! estimators must respect Theorem 3 and Corollaries 4–6.

use flashp::sampling::consistency::{
    arithmetic_bound, consistency_scale, geometric_bound, max_trend_deviation, optimal_gsw_bound,
    range_deviation, theorem3_bound,
};
use flashp::sampling::{estimate_agg, GswSampler, SampleSize, Sampler, WeightStrategy};
use flashp::storage::{AggFunc, DimensionColumn, Partition, Predicate, Schema, SchemaRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> SchemaRef {
    Schema::from_names(&[("k", flashp::storage::DataType::Int64)], &["m1", "m2"])
        .unwrap()
        .into_shared()
}

/// Two positively correlated heavy-tailed measures.
fn partition(n: usize, seed: u64) -> Partition {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m1 = Vec::with_capacity(n);
    let mut m2 = Vec::with_capacity(n);
    for _ in 0..n {
        let base: f64 = if rng.gen::<f64>() < 0.01 { 200.0 } else { 1.0 };
        let v1 = base * (1.0 + rng.gen::<f64>());
        // m2 follows m1's shape with a bounded ratio wobble in [0.5, 1.5].
        let v2 = v1 * (0.5 + rng.gen::<f64>());
        m1.push(v1);
        m2.push(v2);
    }
    Partition::from_columns(vec![DimensionColumn::Int64((0..n as i64).collect())], vec![m1, m2])
        .unwrap()
}

/// Empirical RSTD of a sampler estimating SUM(measure) over everything.
fn empirical_rstd(
    sampler: &GswSampler,
    partition: &Partition,
    measure: usize,
    reps: u64,
) -> (f64, f64) {
    let schema = schema();
    let truth: f64 = partition.measure(measure).iter().sum();
    let pred = Predicate::True.compile(&schema, &[None]).unwrap();
    let mut sq = 0.0;
    let mut sizes = 0.0;
    for seed in 0..reps {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let s = sampler.sample(&schema, partition, &mut rng).unwrap();
        let est = estimate_agg(&s, measure, &pred, AggFunc::Sum).unwrap();
        sq += ((est.value - truth) / truth).powi(2);
        sizes += s.num_rows() as f64;
    }
    ((sq / reps as f64).sqrt(), sizes / reps as f64)
}

#[test]
fn corollary4_optimal_gsw_bound_holds() {
    let p = partition(20_000, 1);
    let sampler = GswSampler::optimal(0, SampleSize::Expected(400));
    let (rstd, mean_size) = empirical_rstd(&sampler, &p, 0, 120);
    let bound = optimal_gsw_bound(mean_size);
    assert!(rstd <= bound * 1.05, "RSTD {rstd} exceeds Corollary 4 bound {bound}");
}

#[test]
fn theorem3_bound_holds_for_mismatched_weights() {
    // Sample with weights from m2 but estimate m1: Theorem 3's bound with
    // the measured consistency scale must still cover the RSTD.
    let p = partition(20_000, 2);
    let weights = WeightStrategy::SingleMeasure(1).compute(&p).unwrap();
    let scale = consistency_scale(&weights, p.measure(0)).unwrap();
    assert!(scale.is_finite() && scale >= 1.0);
    let sampler =
        GswSampler::with_size(WeightStrategy::SingleMeasure(1), SampleSize::Expected(400));
    let (rstd, mean_size) = empirical_rstd(&sampler, &p, 0, 120);
    let bound = theorem3_bound(scale, mean_size);
    assert!(rstd <= bound * 1.05, "RSTD {rstd} exceeds Theorem 3 bound {bound} (scale {scale})");
    // And the bound is meaningfully tighter than trivial: scale is small
    // for trend-similar measures.
    assert!(scale < 4.0, "scale {scale} should be small for correlated measures");
}

#[test]
fn corollary5_and_6_bounds_hold_for_compressed_samples() {
    let p = partition(20_000, 3);
    let measures: Vec<&[f64]> = vec![p.measure(0), p.measure(1)];
    let rho = max_trend_deviation(&measures).unwrap();
    let delta = range_deviation(&measures).unwrap();

    let geo = GswSampler::geometric_compressed(vec![0, 1], SampleSize::Expected(400));
    let (rstd_geo, size_geo) = empirical_rstd(&geo, &p, 0, 120);
    let bound_geo = geometric_bound(rho, 2, size_geo);
    assert!(
        rstd_geo <= bound_geo * 1.05,
        "geometric RSTD {rstd_geo} exceeds Corollary 5 bound {bound_geo} (rho {rho})"
    );

    let arith = GswSampler::arithmetic_compressed(vec![0, 1], SampleSize::Expected(400));
    let (rstd_arith, size_arith) = empirical_rstd(&arith, &p, 0, 120);
    let bound_arith = arithmetic_bound(delta, size_arith);
    assert!(
        rstd_arith <= bound_arith * 1.05,
        "arithmetic RSTD {rstd_arith} exceeds Corollary 6 bound {bound_arith} (delta {delta})"
    );
}

#[test]
fn compressed_bounds_are_looser_than_optimal() {
    // Structural sanity: for k ≥ 2 measures with any dissimilarity,
    // the compressed bounds must be at least the optimal bound.
    let p = partition(5_000, 4);
    let measures: Vec<&[f64]> = vec![p.measure(0), p.measure(1)];
    let rho = max_trend_deviation(&measures).unwrap();
    let delta = range_deviation(&measures).unwrap();
    let size = 300.0;
    assert!(geometric_bound(rho, 2, size) >= optimal_gsw_bound(size));
    assert!(arithmetic_bound(delta, size) >= optimal_gsw_bound(size));
}

#[test]
fn rstd_scales_inversely_with_sqrt_sample_size() {
    // Corollary 4's 1/√|S| law, observed empirically.
    let p = partition(30_000, 5);
    let small = GswSampler::optimal(0, SampleSize::Expected(100));
    let large = GswSampler::optimal(0, SampleSize::Expected(1600));
    let (rstd_small, _) = empirical_rstd(&small, &p, 0, 150);
    let (rstd_large, _) = empirical_rstd(&large, &p, 0, 150);
    let ratio = rstd_small / rstd_large;
    // Expected ratio = √(1600/100) = 4; allow generous noise.
    assert!(ratio > 2.0 && ratio < 8.0, "RSTD ratio {ratio} should be near 4 (1/√|S| scaling)");
}
