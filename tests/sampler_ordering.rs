//! The headline empirical claim of the paper (Exp-IV, Figs. 9–11):
//! on heavy-tailed measures,
//!
//! * uniform sampling has the largest aggregation error,
//! * optimal GSW and priority sampling are the best (and close to each
//!   other),
//! * compressed GSW sits in between — while using one sample for all
//!   measures.
//!
//! Verified here at laptop scale by averaging relative aggregation errors
//! over tasks × days.

use flashp::core::{EngineConfig, FlashPEngine, SamplerChoice};
use flashp::data::{generate_dataset, DatasetConfig, WorkloadConfig, WorkloadGenerator};
use flashp::storage::{AggFunc, Predicate, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

/// Mean relative aggregation error of `sampler` on the given tasks.
fn mean_error(
    engine: &FlashPEngine,
    tasks: &[(Predicate, usize)],
    start: Timestamp,
    end: Timestamp,
    rate: f64,
) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (pred, measure) in tasks {
        let compiled = engine.table().compile_predicate(pred).unwrap();
        let (exact, _, _) =
            engine.estimate_series(*measure, &compiled, AggFunc::Sum, start, end, 1.0).unwrap();
        let (est, _, _) =
            engine.estimate_series(*measure, &compiled, AggFunc::Sum, start, end, rate).unwrap();
        for (e, x) in est.iter().zip(&exact) {
            if x.value > 0.0 {
                total += (e.value - x.value).abs() / x.value;
                n += 1;
            }
        }
    }
    total / n as f64
}

#[test]
fn aggregation_error_ordering_matches_the_paper() {
    let ds = generate_dataset(&DatasetConfig::new(3_000, 40, 99)).unwrap();
    let workload = WorkloadGenerator::new(&ds);
    let mut rng = StdRng::seed_from_u64(5);
    // Medium selectivity, Impression (heavy-tailed), several tasks.
    let tasks: Vec<(Predicate, usize)> = (0..6)
        .map(|_| {
            let t = workload.generate(0, &WorkloadConfig::new(0.2), &mut rng).unwrap();
            (t.predicate, t.measure)
        })
        .collect();
    let table = Arc::new(ds.table);
    let start = Timestamp::from_yyyymmdd(20200101).unwrap();
    let end = start + 39;
    let rate = 0.02;

    let mut errors: HashMap<&'static str, f64> = HashMap::new();
    for sampler in [
        SamplerChoice::Uniform,
        SamplerChoice::OptimalGsw,
        SamplerChoice::Priority,
        SamplerChoice::ArithmeticGsw,
        SamplerChoice::GeometricGsw,
    ] {
        let label = sampler.label();
        let mut engine = FlashPEngine::new(
            table.clone(),
            EngineConfig { sampler, layer_rates: vec![rate], ..Default::default() },
        );
        engine.build_samples().unwrap();
        errors.insert(label, mean_error(&engine, &tasks, start, end, rate));
    }

    let uniform = errors["Uniform"];
    let opt = errors["Optimal GSW"];
    let priority = errors["Priority"];
    let arith = errors["Arithmetic compressed GSW"];
    let geo = errors["Geometric compressed GSW"];
    println!("errors: {errors:?}");

    // Weighted samplers decisively beat uniform on heavy-tailed measures.
    assert!(opt < uniform * 0.75, "optimal GSW {opt} vs uniform {uniform}");
    assert!(priority < uniform * 0.75, "priority {priority} vs uniform {uniform}");
    // Optimal GSW and priority are comparable (within 50% of each other).
    assert!(
        opt / priority < 1.5 && priority / opt < 1.5,
        "opt {opt} vs priority {priority} should be close"
    );
    // Compressed GSW is no worse than uniform (it should be better or
    // comparable while serving every measure from one sample).
    assert!(arith < uniform * 1.1, "arithmetic compressed {arith} vs uniform {uniform}");
    assert!(geo < uniform * 1.1, "geometric compressed {geo} vs uniform {uniform}");
}

#[test]
fn error_decreases_with_rate_and_selectivity() {
    // Exp-IV's other two observations: every sampler improves with larger
    // sampling rate and with larger selectivity.
    let ds = generate_dataset(&DatasetConfig::new(3_000, 30, 17)).unwrap();
    let workload = WorkloadGenerator::new(&ds);
    let mut rng = StdRng::seed_from_u64(6);
    let narrow = workload.generate(0, &WorkloadConfig::new(0.05), &mut rng).unwrap();
    let broad = workload.generate(0, &WorkloadConfig::new(0.4), &mut rng).unwrap();
    let table = Arc::new(ds.table);
    let start = Timestamp::from_yyyymmdd(20200101).unwrap();
    let end = start + 29;

    let mut engine = FlashPEngine::new(
        table,
        EngineConfig {
            sampler: SamplerChoice::OptimalGsw,
            layer_rates: vec![0.1, 0.01],
            ..Default::default()
        },
    );
    engine.build_samples().unwrap();

    let tasks_narrow = vec![(narrow.predicate, 0usize)];
    let tasks_broad = vec![(broad.predicate, 0usize)];
    let err_narrow_lo = mean_error(&engine, &tasks_narrow, start, end, 0.01);
    let err_narrow_hi = mean_error(&engine, &tasks_narrow, start, end, 0.1);
    let err_broad_lo = mean_error(&engine, &tasks_broad, start, end, 0.01);
    println!("narrow@1%={err_narrow_lo} narrow@10%={err_narrow_hi} broad@1%={err_broad_lo}");

    assert!(
        err_narrow_hi < err_narrow_lo,
        "higher rate must reduce error: {err_narrow_hi} vs {err_narrow_lo}"
    );
    assert!(
        err_broad_lo < err_narrow_lo,
        "larger selectivity must reduce error: {err_broad_lo} vs {err_narrow_lo}"
    );
}
