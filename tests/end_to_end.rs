//! End-to-end pipeline tests: dataset → engine → SQL → forecast, across
//! sampler families and models.

use flashp::core::{EngineConfig, FlashPEngine, SamplerChoice};
use flashp::data::{generate_dataset, DatasetConfig};
use flashp::forecast::metrics::mean_relative_error;
use std::sync::Arc;

fn dataset_table() -> Arc<flashp::storage::TimeSeriesTable> {
    let ds = generate_dataset(&DatasetConfig::new(1_500, 70, 424242)).unwrap();
    Arc::new(ds.table)
}

fn engine_with(
    table: Arc<flashp::storage::TimeSeriesTable>,
    sampler: SamplerChoice,
) -> FlashPEngine {
    let mut e = FlashPEngine::new(
        table,
        EngineConfig {
            sampler,
            layer_rates: vec![0.1, 0.02],
            default_rate: 0.02,
            ..Default::default()
        },
    );
    e.build_samples().unwrap();
    e
}

#[test]
fn forecast_via_sql_for_every_sampler() {
    let table = dataset_table();
    for sampler in [
        SamplerChoice::Uniform,
        SamplerChoice::OptimalGsw,
        SamplerChoice::Priority,
        SamplerChoice::Threshold,
        SamplerChoice::ArithmeticGsw,
        SamplerChoice::GeometricGsw,
    ] {
        let label = sampler.label();
        let engine = engine_with(table.clone(), sampler);
        let result = engine
            .forecast(
                "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
                 USING (20200101, 20200229) \
                 OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7, SAMPLE_RATE = 0.1)",
            )
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(result.estimates.len(), 60, "{label}");
        assert_eq!(result.forecasts.len(), 7, "{label}");
        assert_eq!(result.sampler, label);
        assert!(result.forecast_values().iter().all(|v| v.is_finite()), "{label}");
        assert!(
            result.forecasts.iter().all(|f| f.lo <= f.value && f.value <= f.hi),
            "{label}: intervals must bracket the point forecast"
        );
        // Estimated series should track the exact series.
        let exact = engine
            .forecast(
                "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
                 USING (20200101, 20200229) \
                 OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7, SAMPLE_RATE = 1.0)",
            )
            .unwrap();
        let err = mean_relative_error(&result.estimate_values(), &exact.estimate_values()).unwrap();
        assert!(err < 0.35, "{label}: estimate error vs exact = {err}");
    }
}

#[test]
fn count_and_avg_forecasts() {
    let table = dataset_table();
    let engine = engine_with(table, SamplerChoice::Uniform);
    let count = engine
        .forecast(
            "FORECAST COUNT(*) FROM ads WHERE gender = 'F' \
             USING (20200101, 20200229) OPTION (MODEL = 'naive', SAMPLE_RATE = 0.1)",
        )
        .unwrap();
    // Roughly 46% of ~1.5k rows/day.
    for p in &count.estimates {
        assert!(p.value > 300.0 && p.value < 1400.0, "count estimate {}", p.value);
    }
    let avg = engine
        .forecast(
            "FORECAST AVG(ViewTimeless) FROM ads USING (20200101, 20200131)"
                .replace("ViewTimeless", "Impression")
                .as_str(),
        )
        .unwrap();
    assert!(avg.estimates.iter().all(|p| p.value > 0.0));
    // AVG has no unbiased plug-in variance: noise variance reported as 0.
    assert_eq!(avg.mean_noise_variance, 0.0);
}

#[test]
fn forecasts_are_in_a_sane_range() {
    // Not a strict accuracy test — just that the pipeline's forecasts are
    // the right order of magnitude vs held-out truth.
    let ds = generate_dataset(&DatasetConfig::new(1_500, 70, 7)).unwrap();
    let table = Arc::new(ds.table);
    let engine = engine_with(table, SamplerChoice::OptimalGsw);
    let result = engine
        .forecast(
            "FORECAST SUM(Impression) FROM ads WHERE device = 'mobile' \
             USING (20200101, 20200229) \
             OPTION (MODEL = 'arima', FORE_PERIOD = 7, SAMPLE_RATE = 0.1)",
        )
        .unwrap();
    let pred = engine
        .table()
        .compile_predicate(&flashp::storage::Predicate::eq("device", "mobile"))
        .unwrap();
    let t0 = flashp::storage::Timestamp::from_yyyymmdd(20200301).unwrap();
    let (truth, _, _) =
        engine.estimate_series(0, &pred, flashp::storage::AggFunc::Sum, t0, t0 + 6, 1.0).unwrap();
    let truth_vals: Vec<f64> = truth.iter().map(|p| p.value).collect();
    let err = mean_relative_error(&result.forecast_values(), &truth_vals).unwrap();
    assert!(err < 0.6, "forecast error vs held-out week = {err}");
}

#[test]
fn timing_breakdown_reported() {
    let table = dataset_table();
    let engine = engine_with(table, SamplerChoice::OptimalGsw);
    let sampled = engine
        .forecast(
            "FORECAST SUM(Click) FROM ads USING (20200101, 20200229) \
             OPTION (MODEL = 'naive', SAMPLE_RATE = 0.02)",
        )
        .unwrap();
    let exact = engine
        .forecast(
            "FORECAST SUM(Click) FROM ads USING (20200101, 20200229) \
             OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
        )
        .unwrap();
    assert!(
        sampled.timing.aggregation < exact.timing.aggregation,
        "sampled aggregation ({:?}) should beat the full scan ({:?})",
        sampled.timing.aggregation,
        exact.timing.aggregation
    );
    assert!(sampled.timing.total() > std::time::Duration::ZERO);
}

#[test]
fn select_statements_agree_with_forecast_training_series() {
    let table = dataset_table();
    let engine = engine_with(table, SamplerChoice::Uniform);
    let rows = engine
        .select(
            "SELECT SUM(Impression) FROM ads \
             WHERE age <= 30 AND t >= 20200101 AND t <= 20200110 GROUP BY t",
        )
        .unwrap();
    assert_eq!(rows.rows.len(), 10);
    let exact = engine
        .forecast(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 \
             USING (20200101, 20200110) OPTION (MODEL = 'naive', SAMPLE_RATE = 1.0)",
        )
        .unwrap();
    for (row, est) in rows.rows.iter().zip(&exact.estimates) {
        assert_eq!(row.0, est.t);
        assert!((row.1 - est.value).abs() < 1e-9);
    }
}
