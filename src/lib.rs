//! # FlashP
//!
//! A from-scratch Rust reproduction of **FlashP: An Analytical Pipeline for
//! Real-time Forecasting of Time-Series Relational Data** (PVLDB 14(5),
//! 2021).
//!
//! FlashP answers forecasting tasks such as
//!
//! ```sql
//! FORECAST SUM(Impression) FROM T
//! WHERE Age <= 30 AND Gender = 'F'
//! USING (20200101, 20200331)
//! OPTION (MODEL = 'arima', FORE_PERIOD = 7)
//! ```
//!
//! interactively by (1) estimating the per-day aggregates from offline
//! **GSW samples** instead of scanning the base table, and (2) fitting a
//! forecasting model (ARIMA or LSTM) on the estimates to predict future
//! values with confidence intervals.
//!
//! This facade crate re-exports the component crates:
//!
//! * [`storage`] — columnar time-partitioned tables, predicates, exact
//!   aggregation (the Hologres-like substrate),
//! * [`query`] — the `FORECAST`/`SELECT` query language,
//! * [`sampling`] — GSW / uniform / priority / threshold samplers,
//!   estimators, error bounds, measure grouping,
//! * [`forecast`] — ARMA/ARIMA/auto-ARIMA, LSTM, ETS, naive models with
//!   forecast intervals,
//! * [`data`] — synthetic ads-style dataset and workload generators plus
//!   the PIM baseline,
//! * [`core`] — the FlashP engine tying everything together through the
//!   staged pipeline `parse → plan → prepare → execute`, with live
//!   ingest publishing versioned, atomically swapped sample catalogs.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate map and
//! the catalog lifecycle (build → version → swap → invalidate).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the short version — build the sample
//! catalog once offline, wrap it in a shareable engine handle, forecast:
//!
//! ```
//! use flashp::core::{EngineConfig, FlashPEngine, SampleCatalog};
//! use flashp::data::{DatasetConfig, generate_dataset};
//!
//! let dataset = generate_dataset(&DatasetConfig::small(42)).unwrap();
//! let config = EngineConfig::default();
//! let catalog = SampleCatalog::build(&dataset.table, &config).unwrap();
//! let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);
//! let result = engine
//!     .forecast(
//!         "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
//!          USING (20200101, 20200229) OPTION (MODEL = 'arima', FORE_PERIOD = 7)",
//!     )
//!     .unwrap();
//! for point in &result.forecasts {
//!     println!("{} {:.1} [{:.1}, {:.1}]", point.t, point.value, point.lo, point.hi);
//! }
//! ```
//!
//! The engine handle is `Clone + Send + Sync`; for a service loop,
//! [`core::FlashPEngine::prepare`] turns a statement (optionally with `?`
//! parameter placeholders) into a lock-free, repeatedly executable
//! [`core::PreparedQuery`], and `EXPLAIN <statement>` renders the chosen
//! plan — sampler, layer rate, estimated rows scanned — without executing:
//!
//! ```
//! # use flashp::core::{EngineConfig, FlashPEngine, Literal, SampleCatalog};
//! # use flashp::data::{DatasetConfig, generate_dataset};
//! # let dataset = generate_dataset(&DatasetConfig::small(42)).unwrap();
//! # let config = EngineConfig::default();
//! # let catalog = SampleCatalog::build(&dataset.table, &config).unwrap();
//! # let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);
//! let prepared = engine
//!     .prepare(
//!         "FORECAST SUM(Impression) FROM ads WHERE age <= ? \
//!          USING (20200101, 20200229) OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7)",
//!     )
//!     .unwrap();
//! println!("{}", prepared.explain().unwrap());
//! let under_30 = prepared.forecast_with(&[Literal::Int(30)]).unwrap();
//! let under_50 = prepared.forecast_with(&[Literal::Int(50)]).unwrap();
//! assert_eq!(under_30.forecasts.len(), 7);
//! assert_eq!(under_50.forecasts.len(), 7);
//! ```

pub use flashp_core as core;
pub use flashp_data as data;
pub use flashp_forecast as forecast;
pub use flashp_query as query;
pub use flashp_sampling as sampling;
pub use flashp_storage as storage;
