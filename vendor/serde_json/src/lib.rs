//! Offline drop-in subset of the [`serde_json`](https://crates.io/crates/serde_json)
//! API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice FlashP's bench harness uses: the [`Value`] tree, an
//! insertion-ordered [`Map`], the [`json!`] macro, and
//! [`to_string`]/[`to_string_pretty`] over `Value`s. There is no serde
//! integration and no parser — values are *built*, not deserialized, and
//! conversions go through `Value: From<T>` instead of `Serialize`.

use std::fmt;

/// A JSON number: integers keep their integer formatting, everything else
/// is an `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    Int(i64),
    UInt(u64),
    Float(f64),
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if x.is_finite() => {
                // Make sure floats survive a JSON round trip as floats.
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // Real JSON has no NaN/Inf; serde_json emits null. Do the same.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// An insertion-ordered `String -> Value` map (`serde_json::Map` subset).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value (`serde_json::Value` subset).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, isize);

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::UInt(v as u64))
            }
        }
    )*};
}

from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl<A: Into<Value>, B: Into<Value>, C: Into<Value>> From<(A, B, C)> for Value {
    fn from((a, b, c): (A, B, C)) -> Value {
        Value::Array(vec![a.into(), b.into(), c.into()])
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// By-reference conversion into a [`Value`] — the stub's stand-in for
/// `Serialize`. The [`json!`] macro converts through `&expr`, matching the
/// real crate's semantics (expressions are borrowed, not moved).
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

to_json_via_from!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for Map {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        f.write_str(&out)
    }
}

/// Compact serialization. Infallible here, but keeps `serde_json`'s
/// `Result` signature so call sites don't change.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, fmt::Error> {
    Ok(value.to_json().to_string())
}

/// Two-space-indented serialization, matching `serde_json`'s pretty layout.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, fmt::Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0, true);
    Ok(out)
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// Build a [`Value`] from JSON-ish syntax. Supports nested object and
/// array literals, `null`/`true`/`false`, and arbitrary expressions with a
/// `Value: From` conversion — the same shapes `serde_json::json!` accepts
/// (minus spread/`..` forms, which this repo never uses).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };

    // ---- array elements ----------------------------------------------
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::ToJson::to_json(&$value),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $value:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::ToJson::to_json(&$value),])
    };

    // ---- object entries ----------------------------------------------
    // Done.
    (@object $object:ident () ()) => {};
    // Value is null / a nested array / a nested object.
    (@object $object:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).to_string(), $crate::json_internal!([$($arr)*]));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($($key:tt)+) (: {$($obj:tt)*} $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).to_string(), $crate::json_internal!({$($obj)*}));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Value is a general expression (consumes up to the next top-level
    // comma; `expr` may legally be followed by `,`).
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.insert(($($key)+).to_string(), $crate::ToJson::to_json(&$value));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.insert(($($key)+).to_string(), $crate::ToJson::to_json(&$value));
    };
    // Munch one token into the key accumulator.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_from() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3i64), Value::Number(Number::Int(3)));
        assert_eq!(json!(1.5).as_f64(), Some(1.5));
        assert_eq!(json!("hi").as_str(), Some("hi"));
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(json!(v).as_array().unwrap().len(), 2);
    }

    #[test]
    fn object_and_array_literals() {
        let xs = vec![1.0, 2.5];
        let name = "gsw".to_string();
        let v = json!({
            "sampler": name,
            "rates": xs,
            "nested": { "a": 1, "b": [true, null, 2.0] },
            "expr": 1 + 2,
        });
        assert_eq!(v.get("sampler").unwrap().as_str(), Some("gsw"));
        assert_eq!(v.get("expr").unwrap().as_f64(), Some(3.0));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(nested.get("b").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn pretty_round_layout() {
        let v = json!({ "k": [1, 2], "s": "a\"b" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"k\": ["));
        assert!(text.contains("\\\""));
        let compact = v.to_string();
        assert_eq!(compact, r#"{"k":[1,2],"s":"a\"b"}"#);
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), json!(1)).is_none());
        assert_eq!(m.insert("a".into(), json!(2)), Some(json!(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }
}
