//! Offline drop-in subset of the [`serde_json`](https://crates.io/crates/serde_json)
//! API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice FlashP's bench harness uses: the [`Value`] tree, an
//! insertion-ordered [`Map`], the [`json!`] macro,
//! [`to_string`]/[`to_string_pretty`] over `Value`s, and a [`from_str`]
//! parser into `Value` (for the service tests that inspect wire
//! responses). There is no serde integration — parsing always yields a
//! [`Value`] tree, and conversions go through `Value: From<T>` instead
//! of `Serialize`/`Deserialize`.

use std::fmt;

/// A JSON number: integers keep their integer formatting, everything else
/// is an `f64`.
#[derive(Debug, Clone)]
pub enum Number {
    Int(i64),
    UInt(u64),
    Float(f64),
}

/// Numeric equality across the integer variants (`Int(1) == UInt(1)`,
/// matching `serde_json`, where both become the same internal variant);
/// floats only equal floats (`1 != 1.0`, also matching `serde_json`).
impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => a == b,
            (Number::UInt(a), Number::UInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            (Number::Int(a), Number::UInt(b)) | (Number::UInt(b), Number::Int(a)) => {
                *a >= 0 && *a as u64 == *b
            }
            _ => false,
        }
    }
}

impl Number {
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::Int(i) => i as f64,
            Number::UInt(u) => u as f64,
            Number::Float(f) => f,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::Int(i) if i >= 0 => Some(i as u64),
            Number::UInt(u) => Some(u),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::Int(i) => Some(i),
            Number::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::Int(i) => write!(f, "{i}"),
            Number::UInt(u) => write!(f, "{u}"),
            Number::Float(x) if x.is_finite() => {
                // Make sure floats survive a JSON round trip as floats.
                if x == x.trunc() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            // Real JSON has no NaN/Inf; serde_json emits null. Do the same.
            Number::Float(_) => write!(f, "null"),
        }
    }
}

/// An insertion-ordered `String -> Value` map (`serde_json::Map` subset).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            return Some(std::mem::replace(&mut slot.1, value));
        }
        self.entries.push((key, value));
        None
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

/// A JSON value (`serde_json::Value` subset).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

macro_rules! from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::Int(v as i64))
            }
        }
    )*};
}

from_int!(i8, i16, i32, i64, isize);

macro_rules! from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::Number(Number::UInt(v as u64))
            }
        }
    )*};
}

from_uint!(u8, u16, u32, u64, usize);

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::Float(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Value {
        Value::Number(Number::Float(v as f64))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Value {
        Value::String(v.clone())
    }
}

impl From<Map> for Value {
    fn from(v: Map) -> Value {
        Value::Object(v)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&[T]> for Value {
    fn from(v: &[T]) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Clone + Into<Value>> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Value {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<A: Into<Value>, B: Into<Value>> From<(A, B)> for Value {
    fn from((a, b): (A, B)) -> Value {
        Value::Array(vec![a.into(), b.into()])
    }
}

impl<A: Into<Value>, B: Into<Value>, C: Into<Value>> From<(A, B, C)> for Value {
    fn from((a, b, c): (A, B, C)) -> Value {
        Value::Array(vec![a.into(), b.into(), c.into()])
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        v.map_or(Value::Null, Into::into)
    }
}

/// By-reference conversion into a [`Value`] — the stub's stand-in for
/// `Serialize`. The [`json!`] macro converts through `&expr`, matching the
/// real crate's semantics (expressions are borrowed, not moved).
pub trait ToJson {
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

macro_rules! to_json_via_from {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::from(*self)
            }
        }
    )*};
}

to_json_via_from!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64, bool);

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for Map {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson, const N: usize> ToJson for [T; N] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToJson::to_json)
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Value {
        Value::Array(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value, indent: usize, pretty: bool) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, false);
        f.write_str(&out)
    }
}

/// Compact serialization. Infallible here, but keeps `serde_json`'s
/// `Result` signature so call sites don't change.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> Result<String, fmt::Error> {
    Ok(value.to_json().to_string())
}

/// Two-space-indented serialization, matching `serde_json`'s pretty layout.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> Result<String, fmt::Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_json(), 0, true);
    Ok(out)
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Value {
        v.clone()
    }
}

/// `value["key"]` / `value[index]` sugar, matching `serde_json`'s
/// semantics: a missing key or out-of-range index yields `Null` instead
/// of panicking (read-only — this stub has no `IndexMut`).
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        self.as_array().and_then(|a| a.get(idx)).unwrap_or(&NULL)
    }
}

/// A parse failure: byte offset plus what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { offset: self.pos, message: message.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected '{word}'"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte 0x{other:02x}")),
            None => self.err("unexpected end of input"),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return self.err("expected ',' or ']' in array"),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return self.err("expected ',' or '}' in object"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(ParseError {
                        offset: self.pos,
                        message: "unterminated escape".into(),
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                // Surrogate pairs are out of scope for this
                                // stub: the encoder never emits them.
                                Some(c) => {
                                    self.pos += 4;
                                    out.push(c);
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        other => {
                            return self.err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| ParseError {
                        offset: self.pos,
                        message: "invalid UTF-8".into(),
                    })?;
                    let c = s.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::UInt(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::Int(i)));
            }
        }
        match text.parse::<f64>() {
            Ok(f) => Ok(Value::Number(Number::Float(f))),
            Err(_) => self.err(format!("bad number '{text}'")),
        }
    }
}

/// Parse a JSON document into a [`Value`] tree (`serde_json::from_str`
/// pinned to `Value` — this stub has no `Deserialize`).
pub fn from_str(input: &str) -> Result<Value, ParseError> {
    let mut parser = Parser { bytes: input.as_bytes(), pos: 0 };
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing data after document");
    }
    Ok(value)
}

/// Build a [`Value`] from JSON-ish syntax. Supports nested object and
/// array literals, `null`/`true`/`false`, and arbitrary expressions with a
/// `Value: From` conversion — the same shapes `serde_json::json!` accepts
/// (minus spread/`..` forms, which this repo never uses).
#[macro_export]
macro_rules! json {
    ($($tt:tt)+) => { $crate::json_internal!($($tt)+) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_internal!(@array [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {
        $crate::Value::Object({
            let mut object = $crate::Map::new();
            $crate::json_internal!(@object object () ($($tt)+));
            object
        })
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };

    // ---- array elements ----------------------------------------------
    (@array [$($elems:expr,)*]) => {
        ::std::vec![$($elems,)*]
    };
    (@array [$($elems:expr,)*] null $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::Value::Null,] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] [$($arr:tt)*] $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($arr)*]),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] {$($obj:tt)*} $(, $($rest:tt)*)?) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($obj)*}),] $($($rest)*)?)
    };
    (@array [$($elems:expr,)*] $value:expr , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::ToJson::to_json(&$value),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $value:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::ToJson::to_json(&$value),])
    };

    // ---- object entries ----------------------------------------------
    // Done.
    (@object $object:ident () ()) => {};
    // Value is null / a nested array / a nested object.
    (@object $object:ident ($($key:tt)+) (: null $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).to_string(), $crate::Value::Null);
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($($key:tt)+) (: [$($arr:tt)*] $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).to_string(), $crate::json_internal!([$($arr)*]));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    (@object $object:ident ($($key:tt)+) (: {$($obj:tt)*} $(, $($rest:tt)*)?)) => {
        $object.insert(($($key)+).to_string(), $crate::json_internal!({$($obj)*}));
        $crate::json_internal!(@object $object () ($($($rest)*)?));
    };
    // Value is a general expression (consumes up to the next top-level
    // comma; `expr` may legally be followed by `,`).
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*)) => {
        $object.insert(($($key)+).to_string(), $crate::ToJson::to_json(&$value));
        $crate::json_internal!(@object $object () ($($rest)*));
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr)) => {
        $object.insert(($($key)+).to_string(), $crate::ToJson::to_json(&$value));
    };
    // Munch one token into the key accumulator.
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*)) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_from() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(3i64), Value::Number(Number::Int(3)));
        assert_eq!(json!(1.5).as_f64(), Some(1.5));
        assert_eq!(json!("hi").as_str(), Some("hi"));
        let v: Vec<f64> = vec![1.0, 2.0];
        assert_eq!(json!(v).as_array().unwrap().len(), 2);
    }

    #[test]
    fn object_and_array_literals() {
        let xs = vec![1.0, 2.5];
        let name = "gsw".to_string();
        let v = json!({
            "sampler": name,
            "rates": xs,
            "nested": { "a": 1, "b": [true, null, 2.0] },
            "expr": 1 + 2,
        });
        assert_eq!(v.get("sampler").unwrap().as_str(), Some("gsw"));
        assert_eq!(v.get("expr").unwrap().as_f64(), Some(3.0));
        let nested = v.get("nested").unwrap();
        assert_eq!(nested.get("a").unwrap().as_f64(), Some(1.0));
        assert_eq!(nested.get("b").unwrap().as_array().unwrap().len(), 3);
    }

    #[test]
    fn pretty_round_layout() {
        let v = json!({ "k": [1, 2], "s": "a\"b" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains("\"k\": ["));
        assert!(text.contains("\\\""));
        let compact = v.to_string();
        assert_eq!(compact, r#"{"k":[1,2],"s":"a\"b"}"#);
    }

    #[test]
    fn map_insert_replaces() {
        let mut m = Map::new();
        assert!(m.insert("a".into(), json!(1)).is_none());
        assert_eq!(m.insert("a".into(), json!(2)), Some(json!(1)));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get("a").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(json!(f64::NAN).to_string(), "null");
        assert_eq!(json!(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_encoder_output() {
        let v = json!({
            "ok": true,
            "n": -3,
            "u": 42u64,
            "f": 1.5,
            "s": "a\"b\\c\nd",
            "arr": [1, null, {"k": "v"}],
            "empty_obj": {},
            "empty_arr": [],
        });
        let parsed = from_str(&v.to_string()).unwrap();
        assert_eq!(parsed, v);
        assert_eq!(from_str(&to_string_pretty(&v).unwrap()).unwrap(), v);
        assert_eq!(parsed["u"].as_u64(), Some(42));
        assert_eq!(parsed["n"].as_i64(), Some(-3));
        assert_eq!(parsed["ok"].as_bool(), Some(true));
        assert_eq!(parsed["arr"][2]["k"].as_str(), Some("v"));
        assert_eq!(parsed["missing"], Value::Null);
        assert_eq!(parsed["arr"][9], Value::Null);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated"] {
            assert!(from_str(bad).is_err(), "{bad:?} must not parse");
        }
        let e = from_str("nope").unwrap_err();
        assert!(e.to_string().contains("byte 0"), "{e}");
    }

    #[test]
    fn parse_handles_unicode_and_escapes() {
        let v = from_str(r#"{"s": "café → ünïcode", "t": "tab\there"}"#).unwrap();
        assert_eq!(v["s"].as_str(), Some("café → ünïcode"));
        assert_eq!(v["t"].as_str(), Some("tab\there"));
    }
}
