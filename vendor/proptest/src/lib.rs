//! Offline drop-in subset of the [`proptest`](https://crates.io/crates/proptest)
//! API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice FlashP's unit tests use: the [`proptest!`] macro over
//! `arg in strategy` parameters, [`any`], range strategies for floats and
//! integers, [`collection::vec`], and the `prop_assert*` macros.
//!
//! Unlike the real crate this runs a **fixed-seed** loop (256 cases per
//! property, overridable via `PROPTEST_CASES`) and does no shrinking: a
//! failing case panics with the standard assert message plus the case
//! index. Determinism is a feature here — the workspace's tier-1 gate
//! requires identical results across runs.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::ops::{Range, RangeInclusive};

// Re-exported so `proptest!` can name rand types via `$crate::` without
// requiring the caller to depend on `rand` itself.
#[doc(hidden)]
pub extern crate rand;

/// A generator of values for one `proptest!` parameter.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// `Strategy::prop_map` — derive a strategy by mapping sampled values.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Types with a canonical "anything goes" strategy (`Arbitrary` subset).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u32()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for f64 {
    /// Finite floats spanning a broad magnitude range (the real crate also
    /// yields non-finite values; FlashP's properties only need finite).
    fn arbitrary(rng: &mut StdRng) -> Self {
        let mag = rng.gen_range(-300.0..300.0);
        let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
        sign * 10f64.powf(mag / 10.0)
    }
}

pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `proptest::prelude::any::<T>()`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Vector lengths accepted by [`collection::vec`] (`SizeRange` subset).
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

pub mod collection {
    use super::{SizeRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element_strategy, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

#[doc(hidden)]
pub fn num_cases() -> usize {
    std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(256)
}

/// Define property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a regular test that samples all strategies from a fixed-seed
/// RNG and runs the body for [`num_cases`] cases.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )+) => {$(
        $(#[$attr])*
        fn $name() {
            // Different properties get different (but fixed) streams.
            let seed = $crate::fnv1a(stringify!($name));
            let mut prop_rng =
                <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..$crate::num_cases() {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                let run = || -> () { $body };
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                if let Err(payload) = outcome {
                    eprintln!("proptest case {case} of {} failed", stringify!($name));
                    ::std::panic::resume_unwind(payload);
                }
            }
        }
    )+};
}

#[doc(hidden)]
pub fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// `prop_assert!` — panics on failure (this stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!` — panics on failure (this stub does not shrink).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!` — panics on failure (this stub does not shrink).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use rand;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn vec_lengths_respect_size_range(
            bits in collection::vec(any::<bool>(), 2..5),
            exact in collection::vec(-1.0f64..1.0, 3),
        ) {
            prop_assert!((2..5).contains(&bits.len()));
            prop_assert_eq!(exact.len(), 3);
            for v in &exact {
                prop_assert!((-1.0..1.0).contains(v));
            }
        }

        #[test]
        fn ranges_stay_in_bounds(x in -0.6f64..0.6, n in 1u64..10) {
            prop_assert!((-0.6..0.6).contains(&x));
            prop_assert!((1..10).contains(&n));
        }
    }

    #[test]
    fn fixed_seed_is_deterministic() {
        let mut a = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(crate::fnv1a("p"));
        let mut b = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(crate::fnv1a("p"));
        let sa = crate::collection::vec(any::<u64>(), 0..10).sample(&mut a);
        let sb = crate::collection::vec(any::<u64>(), 0..10).sample(&mut b);
        assert_eq!(sa, sb);
    }
}
