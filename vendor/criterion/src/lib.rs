//! Offline drop-in subset of the [`criterion`](https://crates.io/crates/criterion)
//! bench API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the slice the FlashP benches use: `Criterion::benchmark_group`,
//! `BenchmarkGroup::{throughput, sample_size, bench_function,
//! bench_with_input, finish}`, `Bencher::{iter, iter_with_setup}`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! It is a *timing harness*, not a statistics engine: each benchmark is
//! warmed up once, then timed over a capped number of iterations, and a
//! single `name/id  mean  (throughput)` line is printed. That keeps
//! `cargo bench` runnable (and CI-checkable) without criterion's plotting
//! and bootstrap machinery. Relative numbers are still meaningful; use the
//! real crate for publication-grade measurements.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for the throughput line (`criterion::Throughput` subset).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark identifier (`criterion::BenchmarkId` subset).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Runs the measured routine (`criterion::Bencher` subset).
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, excluded from timing
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    pub fn iter_with_setup<S, O, FS, F>(&mut self, mut setup: FS, mut routine: F)
    where
        FS: FnMut() -> S,
        F: FnMut(S) -> O,
    {
        black_box(routine(setup())); // warm-up, excluded from timing
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// A named group of related benchmarks (`criterion::BenchmarkGroup`
/// subset).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let iters = self.iters();
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = self.iters();
        let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut bencher, input);
        self.report(&id, &bencher);
        self
    }

    pub fn finish(self) {}

    fn iters(&self) -> u64 {
        // The stub keeps runs short: a handful of timed iterations, capped
        // well below criterion's default 100 samples.
        self.sample_size.min(self.criterion.max_iters)
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        let mean = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:.3e} elem/s", n as f64 / mean)
            }
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!("  {:.3e} B/s", n as f64 / mean)
            }
            _ => String::new(),
        };
        println!("{}/{}  {:>12}{}", self.name, id, format_time(mean), rate);
    }
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.2} s", seconds)
    }
}

/// The harness entry point (`criterion::Criterion` subset).
pub struct Criterion {
    max_iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        let max_iters =
            std::env::var("FLASHP_BENCH_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10);
        Criterion { max_iters }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup { criterion: self, name, throughput: None, sample_size: u64::MAX }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        {
            let mut group = c.benchmark_group("smoke");
            group.throughput(Throughput::Elements(4)).sample_size(3);
            group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
            group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
                b.iter_with_setup(
                    || n,
                    |n| {
                        calls += 1;
                        n * 2
                    },
                )
            });
            group.finish();
        }
        // sample_size(3) + 1 warm-up call
        assert_eq!(calls, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter("gsw").to_string(), "gsw");
        assert_eq!(BenchmarkId::new("fit", 128).to_string(), "fit/128");
    }
}
