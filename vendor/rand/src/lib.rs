//! Offline drop-in subset of the [`rand`](https://crates.io/crates/rand)
//! 0.8 API.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! the small slice of `rand` that FlashP uses: [`rngs::StdRng`] (implemented
//! as xoshiro256++ seeded via SplitMix64), the [`Rng`]/[`SeedableRng`]
//! traits with `gen`, `gen_range` and `gen_bool`, and
//! [`seq::SliceRandom::{choose, shuffle}`](seq::SliceRandom).
//!
//! Determinism is part of the contract: `StdRng::seed_from_u64(s)` yields an
//! identical stream on every platform and every run, which is what the
//! fixed-seed test suites rely on. The stream is *not* the same as the real
//! `rand` crate's `StdRng` (ChaCha12), but nothing in this repo depends on
//! the concrete stream, only on it being fixed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with SplitMix64 (the same approach
    /// `rand` documents for `seed_from_u64`).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types that can be drawn uniformly by [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Ranges accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($(($t:ty, $u:ty)),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // The span must go through the type's unsigned counterpart:
                // a wrapped signed difference would sign-extend under a
                // direct `as u64` (e.g. -100i8..100i8 spans 200, but
                // 100i8.wrapping_sub(-100) is -56).
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = hi.wrapping_sub(lo) as $u as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_range!(
    (i8, u8),
    (i16, u16),
    (i32, u32),
    (i64, u64),
    (isize, usize),
    (u8, u8),
    (u16, u16),
    (u32, u32),
    (u64, u64),
    (usize, usize)
);

/// Uniform draw in `[0, span)` by widening multiply (Lemire); unbiased
/// enough for test workloads and fully deterministic.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mul = (rng.next_u64() as u128) * (span as u128);
    (mul >> 64) as u64
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing generator methods (`rand::Rng` subset).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand`'s
    /// `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// `rand::seq::SliceRandom` subset: `choose` and `shuffle`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seed_determinism() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let first: u64 = StdRng::seed_from_u64(42).gen();
        assert_ne!(first, c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(18..=34);
            assert!((18..=34).contains(&x));
            let y = rng.gen_range(0..7u8);
            assert!(y < 7);
            let z = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&z));
        }
        // Every value of a small range is eventually hit.
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_narrow_signed_types_stay_in_bounds() {
        // Regression: spans wider than the type's positive half must not
        // sign-extend (e.g. -100i8..100i8 wraps to a negative i8 span).
        let mut rng = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (i8::MAX, i8::MIN);
        for _ in 0..2000 {
            let x = rng.gen_range(-100i8..100);
            assert!((-100..100).contains(&x), "i8 out of range: {x}");
            lo_seen = lo_seen.min(x);
            hi_seen = hi_seen.max(x);
            let y = rng.gen_range(-30_000i16..=30_000);
            assert!((-30_000..=30_000).contains(&y), "i16 out of range: {y}");
        }
        // The whole span is reachable, not just the positive half.
        assert!(lo_seen < -80 && hi_seen > 80, "span not covered: [{lo_seen}, {hi_seen}]");
        // Full-width inclusive ranges hit the degenerate span path.
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }

    #[test]
    fn slice_random() {
        let mut rng = StdRng::seed_from_u64(9);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        assert!(items.contains(items.choose(&mut rng).unwrap()));
        let mut v: Vec<usize> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig, "50-element shuffle left slice unchanged");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
    }
}
