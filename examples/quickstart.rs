//! Quickstart: generate a small synthetic ads dataset, build offline GSW
//! samples, and run one real-time forecasting task — the Fig. 2 / Fig. 3
//! flow of the paper.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flashp::core::{EngineConfig, FlashPEngine, SampleCatalog};
use flashp::data::{generate_dataset, DatasetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline: a 70-day, 2k-rows/day synthetic ads table
    //    (11 dimensions; measures Impression, Click, Favorite, Cart).
    println!("generating dataset…");
    let dataset = generate_dataset(&DatasetConfig::small(42))?;
    println!(
        "  {} rows across {} daily partitions ({:.1} MiB)",
        dataset.table.num_rows(),
        dataset.table.num_partitions(),
        dataset.table.byte_size() as f64 / (1024.0 * 1024.0),
    );

    // 2. Offline: build multi-layer optimal-GSW samples (one per measure)
    //    with the free-standing builder, then wrap table + catalog in a
    //    shareable engine handle.
    let config = EngineConfig { layer_rates: vec![0.05, 0.01], ..Default::default() };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    let stats = catalog.stats();
    println!(
        "  built {} sample layers in {:?} ({} KiB total)",
        stats.layers.len(),
        stats.duration,
        stats.total_bytes / 1024
    );
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // 3. Online: the paper's example task — impressions by young women —
    //    trained on 60 days of estimates, forecasting the next 7 days.
    let sql = "FORECAST SUM(Impression) FROM ads \
               WHERE age <= 30 AND gender = 'F' \
               USING (20200101, 20200229) \
               OPTION (MODEL = 'arima', FORE_PERIOD = 7, SAMPLE_RATE = 0.05)";
    println!("\n{sql}\n");

    // EXPLAIN first: which layer/sampler will serve this, and how many
    // rows will it scan?
    println!("{}", engine.explain(sql)?);
    let result = engine.forecast(sql)?;

    println!(
        "model {} fitted on {} estimated points (sampler: {}, rate {}):",
        result.model,
        result.estimates.len(),
        result.sampler,
        result.rate_used
    );
    let tail = &result.estimates[result.estimates.len() - 5..];
    for p in tail {
        println!("  {}  M̂ = {:>12.1}", p.t, p.value);
    }
    println!("forecasts ({}% intervals):", (result.confidence * 100.0) as u32);
    for f in &result.forecasts {
        println!("  {}  {:>12.1}   [{:>12.1}, {:>12.1}]", f.t, f.value, f.lo, f.hi);
    }
    println!(
        "\ntiming: aggregation {:?}, forecasting {:?} (total {:?})",
        result.timing.aggregation,
        result.timing.forecasting,
        result.timing.total()
    );

    // 4. Compare against the exact (full scan) answer.
    let exact = engine.forecast(&sql.replace("SAMPLE_RATE = 0.05", "SAMPLE_RATE = 1.0"))?;
    println!(
        "full-scan timing: aggregation {:?} — sampling gave a {:.0}x speedup on aggregation",
        exact.timing.aggregation,
        exact.timing.aggregation.as_secs_f64() / result.timing.aggregation.as_secs_f64().max(1e-9)
    );

    // 5. Approximate SELECT: per-day estimates with their HT standard
    //    errors (the ± column), straight from the sample catalog.
    let select = "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
                  AND t BETWEEN 20200223 AND 20200229 GROUP BY t OPTION (SAMPLE_RATE = 0.05)";
    println!("\n{select}\n");
    let rows = engine.select(select)?;
    for (t, value, std_err) in &rows.rows {
        match std_err {
            Some(se) => println!("  {t}  {value:>12.1} ± {se:>10.1}"),
            None => println!("  {t}  {value:>12.1}"),
        }
    }
    Ok(())
}
