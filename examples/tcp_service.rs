//! The FlashP engine behind a real socket: `flashp-server`'s
//! newline-delimited wire protocol, driven end to end over TCP.
//!
//! An in-process server is started on an OS-assigned port (exactly what
//! `cargo run -p flashp-server --bin flashp_server` does from the shell),
//! then two plain blocking connections talk to it: an *analyst* session
//! that prepares a handle and re-executes it with different bindings,
//! and a *publisher* session that stages rows and publishes a new
//! catalog version under the analyst's feet. Every request/response pair
//! is printed as an `nc`-style transcript — the responses are exactly
//! the JSON lines a `nc 127.0.0.1 <port>` session would see.
//!
//! ```text
//! cargo run --release --example tcp_service
//! ```

use flashp::core::{EngineConfig, FlashPEngine, SampleCatalog, SamplerChoice};
use flashp::data::{generate_dataset, DatasetConfig};
use flashp_server::{serve, Client, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: a month of synthetic ads data, sampled at two layers.
    println!("generating dataset + samples…");
    let dataset = generate_dataset(&DatasetConfig::new(400, 30, 11))?;
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // Online: the TCP frontend. Port 0 lets the OS pick; a full queue
    // answers `busy`, it never blocks a client.
    let mut server =
        serve(engine, ServerConfig { workers: 2, queue_depth: 16, ..Default::default() })?;
    let addr = server.local_addr();
    println!("listening on {addr}\n");

    let mut analyst = Client::connect(addr)?;
    let mut publisher = Client::connect(addr)?;

    // The analyst session: one prepared handle, many cheap re-binds.
    for line in [
        "PREPARE clicks AS FORECAST SUM(Click) FROM ads WHERE age <= ? \
         USING LAST 20 DAYS OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)",
        "EXECUTE clicks (30)",
        "EXECUTE clicks (55)",
        "EXPLAIN SELECT SUM(Impression) FROM ads WHERE gender = 'F' \
         AND t BETWEEN 20200110 AND 20200120 GROUP BY t OPTION (SAMPLE_RATE = 0.05)",
    ] {
        transcript(&mut analyst, line)?;
    }

    // The publisher session: stage one row, swap the catalog version.
    // The analyst's handle re-snapshots on its next EXECUTE — same
    // handle, new version, no re-PREPARE.
    for line in [
        "INGEST (20200130, 28, 'F', 'city_03', 'mobile', 'ios', 2, 1, 3, \
         'search', 2, 1, 150.0, 12.0, 3.0, 1.0)",
        "PUBLISH",
    ] {
        transcript(&mut publisher, line)?;
    }
    transcript(&mut analyst, "EXECUTE clicks (30)")?;

    // Service introspection, then a clean goodbye.
    transcript(&mut analyst, "STATS")?;
    transcript(&mut analyst, "CLOSE")?;
    transcript(&mut publisher, "CLOSE")?;

    let drain = server.shutdown();
    println!(
        "drained: completed={} busy={} timeouts={}",
        drain.completed, drain.busy_rejections, drain.reply_timeouts
    );
    Ok(())
}

/// One round trip, printed the way a terminal `nc` session reads.
fn transcript(client: &mut Client, request: &str) -> std::io::Result<()> {
    let response = client.roundtrip(request)?;
    println!("> {request}");
    println!("< {response}\n");
    Ok(())
}
