//! Compare the pluggable forecasting models (§5: "Other forecasting
//! models can be plugged in here, too") on the same task, scoring each
//! against the held-out true future aggregates.
//!
//! ```text
//! cargo run --release --example model_comparison
//! ```

use flashp::core::{EngineConfig, FlashPEngine, SampleCatalog};
use flashp::data::{generate_dataset, DatasetConfig};
use flashp::forecast::metrics::mean_relative_error;
use flashp::storage::{AggFunc, Predicate, Timestamp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 70 days: train on the first 60, hold out the last 7 for scoring.
    let dataset = generate_dataset(&DatasetConfig::small(5))?;
    let config = EngineConfig { layer_rates: vec![0.05], default_rate: 0.05, ..Default::default() };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    let constraint = "age <= 30 AND gender = 'F'";
    let train_end = 20200229; // 60 training days
    let horizon = 7;

    // Ground truth for the held-out week.
    let pred = engine.table().compile_predicate(
        &Predicate::cmp("age", flashp::storage::CmpOp::Le, 30).and(Predicate::eq("gender", "F")),
    )?;
    let t_end = Timestamp::from_yyyymmdd(train_end)?;
    let (truth_points, _, _) =
        engine.estimate_series(0, &pred, AggFunc::Sum, t_end + 1, t_end + horizon, 1.0)?;
    let truth: Vec<f64> = truth_points.iter().map(|p| p.value).collect();

    println!("{:<22} {:>10} {:>12} {:>12} {:>10}", "model", "err %", "width", "sigma", "fit time");
    for model in [
        "arima",
        "arima(1,1,1)",
        "lstm",
        "holt",
        "holt_winters(7)",
        "seasonal_naive(7)",
        "naive",
        "drift",
    ] {
        let sql = format!(
            "FORECAST SUM(Impression) FROM ads WHERE {constraint} \
             USING (20200101, {train_end}) \
             OPTION (MODEL = '{model}', FORE_PERIOD = {horizon})"
        );
        match engine.forecast(&sql) {
            Ok(result) => {
                let err = mean_relative_error(&result.forecast_values(), &truth)
                    .map(|e| e * 100.0)
                    .unwrap_or(f64::NAN);
                println!(
                    "{:<22} {:>9.2}% {:>12.0} {:>12.1} {:>9.1?}",
                    result.model,
                    err,
                    result.mean_interval_width(),
                    result.sigma2.sqrt(),
                    result.timing.forecasting
                );
            }
            Err(e) => println!("{model:<22} failed: {e}"),
        }
    }
    println!("\n(err % = mean relative error vs the held-out true week)");
    Ok(())
}
