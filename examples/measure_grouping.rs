//! Compressed samples for multiple measures (§4.2): instead of one
//! weighted sample per measure (4× the space), group correlated measures
//! with KCENTER on normalized-L1 distance and share one arithmetic-mean
//! GSW sample per group.
//!
//! Prints the grouping, the space comparison, and per-measure aggregation
//! errors — a miniature of Fig. 5 / Fig. 15.
//!
//! ```text
//! cargo run --release --example measure_grouping
//! ```

use flashp::core::{EngineConfig, FlashPEngine, GroupingPolicy, SampleCatalog, SamplerChoice};
use flashp::data::{generate_dataset, DatasetConfig, WorkloadConfig, WorkloadGenerator};
use flashp::forecast::metrics::mean_relative_error;
use flashp::storage::{AggFunc, Predicate, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const MEASURES: [&str; 4] = ["Impression", "Click", "Favorite", "Cart"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate_dataset(&DatasetConfig::small(3))?;
    let start = Timestamp::from_yyyymmdd(20200101)?;
    let end = start + 59;

    // A shared workload of constraints (generated before the table moves
    // into the Arc the engines share).
    let workload = WorkloadGenerator::new(&dataset);
    let mut rng = StdRng::seed_from_u64(1);
    let tasks: Vec<Predicate> = (0..6)
        .map(|_| workload.generate(0, &WorkloadConfig::new(0.05), &mut rng).unwrap().predicate)
        .collect();
    let table = Arc::new(dataset.table);

    // Engine A: one optimal GSW sample per measure.
    let config_a = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.02],
        ..Default::default()
    };
    let catalog_a = SampleCatalog::build(&table, &config_a)?;
    let stats_a = catalog_a.stats().clone();
    let per_measure = FlashPEngine::with_catalog(table.clone(), config_a, catalog_a);

    // Engine B: auto-grouped arithmetic compressed GSW (2 groups).
    let config_b = EngineConfig {
        sampler: SamplerChoice::ArithmeticGsw,
        grouping: GroupingPolicy::Auto { num_groups: 2 },
        layer_rates: vec![0.02],
        ..Default::default()
    };
    let catalog_b = SampleCatalog::build(&table, &config_b)?;
    let stats_b = catalog_b.stats().clone();
    let compressed = FlashPEngine::with_catalog(table.clone(), config_b, catalog_b);

    println!("KCENTER grouping of the four measures (normalized L1):");
    for (i, group) in stats_b.groups.iter().enumerate() {
        let names: Vec<&str> = group.iter().map(|&j| MEASURES[j]).collect();
        println!("  group {}: {}", i + 1, names.join(" + "));
    }
    println!(
        "\nspace: per-measure optimal GSW = {} KiB, compressed GSW = {} KiB ({:.1}x smaller)",
        stats_a.total_bytes / 1024,
        stats_b.total_bytes / 1024,
        stats_a.total_bytes as f64 / stats_b.total_bytes as f64
    );

    println!("\nmean relative aggregation error over {} tasks:", tasks.len());
    println!("{:<12} {:>20} {:>20}", "measure", "opt-GSW (4 samples)", "compressed (2)");
    for (j, name) in MEASURES.iter().enumerate() {
        let mut err_opt = Vec::new();
        let mut err_cmp = Vec::new();
        for pred in &tasks {
            let compiled = table.compile_predicate(pred)?;
            let (exact, _, _) =
                per_measure.estimate_series(j, &compiled, AggFunc::Sum, start, end, 1.0)?;
            let exact_vals: Vec<f64> = exact.iter().map(|p| p.value).collect();
            for (engine, out) in [(&per_measure, &mut err_opt), (&compressed, &mut err_cmp)] {
                let (est, _, _) =
                    engine.estimate_series(j, &compiled, AggFunc::Sum, start, end, 0.02)?;
                let est_vals: Vec<f64> = est.iter().map(|p| p.value).collect();
                if let Some(e) = mean_relative_error(&est_vals, &exact_vals) {
                    out.push(e);
                }
            }
        }
        let avg = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len().max(1) as f64;
        println!("{:<12} {:>20.3} {:>20.3}", name, avg(&err_opt), avg(&err_cmp));
    }
    Ok(())
}
