//! The paper's motivating scenario (§1): an advertiser explores targeting
//! combinations interactively, reading a forecast for each candidate
//! segment before committing a campaign bid.
//!
//! Each exploration step is one FORECAST task; FlashP answers from
//! samples so the loop stays interactive even on large tables.
//!
//! ```text
//! cargo run --release --example ads_targeting
//! ```

use flashp::core::{EngineConfig, FlashPEngine, SampleCatalog};
use flashp::data::{generate_dataset, DatasetConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = generate_dataset(&DatasetConfig::small(7))?;
    let config = EngineConfig { layer_rates: vec![0.05], default_rate: 0.05, ..Default::default() };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // Candidate segments the advertiser wants to compare, exactly like
    // "20-30 year old females interested in sports located in some
    // cities" from the introduction.
    let segments: &[(&str, &str)] = &[
        ("young women", "age BETWEEN 20 AND 30 AND gender = 'F'"),
        ("young women, mobile", "age BETWEEN 20 AND 30 AND gender = 'F' AND device = 'mobile'"),
        (
            "young women, sports interest, two metros",
            "age BETWEEN 20 AND 30 AND gender = 'F' AND interest <= 3 \
             AND city IN ('city_00', 'city_01')",
        ),
        ("older men, pc", "age >= 50 AND gender = 'M' AND device = 'pc'"),
        ("premium members", "membership >= 3"),
    ];

    println!("{:<42} {:>14} {:>14} {:>10}", "segment", "7d impressions", "interval ±", "latency");
    for (name, constraint) in segments {
        let sql = format!(
            "FORECAST SUM(Impression) FROM ads WHERE {constraint} \
             USING (20200101, 20200229) OPTION (MODEL = 'arima', FORE_PERIOD = 7)"
        );
        match engine.forecast(&sql) {
            Ok(result) => {
                let total: f64 = result.forecast_values().iter().sum();
                let half_width = result.mean_interval_width() / 2.0;
                println!(
                    "{:<42} {:>14.0} {:>14.0} {:>9.1?}",
                    name,
                    total,
                    half_width,
                    result.timing.total()
                );
            }
            Err(e) => println!("{name:<42} failed: {e}"),
        }
    }

    // The decision also depends on engagement, not just volume: compare
    // expected clicks for the two finalists.
    println!("\nengagement check (Click) for the finalists:");
    for (name, constraint) in &segments[..2] {
        let sql = format!(
            "FORECAST SUM(Click) FROM ads WHERE {constraint} \
             USING (20200101, 20200229) OPTION (MODEL = 'arima', FORE_PERIOD = 7)"
        );
        let result = engine.forecast(&sql)?;
        let total: f64 = result.forecast_values().iter().sum();
        println!("  {name:<40} {total:>12.0} clicks over 7 days");
    }
    Ok(())
}
