//! Incremental GSW maintenance (§4.1): new rows stream in during the day
//! and the sample absorbs them by raising Δ — without ever revisiting
//! rows that were previously rejected.
//!
//! ```text
//! cargo run --release --example incremental_ingest
//! ```

use flashp::sampling::incremental::offer_partition;
use flashp::sampling::{estimate_agg, IncrementalGswSample, WeightStrategy};
use flashp::storage::{AggFunc, CmpOp, DataType, PartitionBuilder, Predicate, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema =
        Schema::from_names(&[("segment", DataType::Int64)], &["Impression"])?.into_shared();

    // The stream arrives in 10 batches of 20k rows; we keep the retained
    // sample under 2,000 rows by raising Δ whenever it overflows.
    let mut sample = IncrementalGswSample::new(schema.clone(), 1.0)?;
    let mut rng = StdRng::seed_from_u64(99);
    let mut true_total = 0.0;
    let max_rows = 2_000;

    println!(
        "{:>6} {:>12} {:>10} {:>12} {:>14} {:>8}",
        "batch", "rows seen", "retained", "delta", "estimate", "err%"
    );
    for batch in 0..10 {
        // Build one batch with a heavy tail.
        let mut builder = PartitionBuilder::with_capacity(&schema, 20_000);
        for i in 0..20_000i64 {
            let heavy = if rng.gen::<f64>() < 0.002 { 500.0 } else { 1.0 };
            let value = heavy * (1.0 + rng.gen::<f64>());
            true_total += value;
            builder.push_raw_row(&[i % 50], &[value])?;
        }
        let partition = builder.finish();
        let weights = WeightStrategy::SingleMeasure(0).compute(&partition)?;
        offer_partition(&mut sample, &partition, &weights, &mut rng)?;
        let new_delta = sample.shrink_to(max_rows);

        // Estimate the running total (constraint: everything) and a
        // subset (segment < 25) from the materialized sample.
        let snap = sample.to_sample()?;
        let all = Predicate::True.compile(&schema, &[None])?;
        let est = estimate_agg(&snap, 0, &all, AggFunc::Sum)?;
        let err = (est.value - true_total).abs() / true_total * 100.0;
        println!(
            "{:>6} {:>12} {:>10} {:>12.2} {:>14.0} {:>7.2}%",
            batch + 1,
            sample.population_rows(),
            sample.len(),
            new_delta,
            est.value,
            err
        );
    }

    // Subset estimation still works on the final sample.
    let snap = sample.to_sample()?;
    let subset = Predicate::cmp("segment", CmpOp::Lt, 25).compile(&schema, &[None])?;
    let est = estimate_agg(&snap, 0, &subset, AggFunc::Sum)?;
    println!(
        "\nsubset (segment < 25) estimate: {:.0} (±{:.0} std)",
        est.value,
        est.std_dev().unwrap_or(0.0)
    );
    println!(
        "final sample: {} rows covering a population of {} ({} KiB)",
        snap.num_rows(),
        snap.population_rows(),
        snap.byte_size() / 1024
    );
    Ok(())
}
