//! Live ingest with versioned catalog swap: rows stream in and are
//! published as new immutable `CatalogVersion`s while prepared queries
//! keep executing — lock-free, never torn across versions — from other
//! threads. The same prepared handles serve the updated answers after
//! every publish, and `EXPLAIN` names the catalog version a plan was
//! made against.
//!
//! ```text
//! cargo run --release --example live_ingest
//! ```

use flashp::core::{EngineConfig, FlashPEngine, IngestBatch, SampleCatalog, SamplerChoice};
use flashp::data::{generate_dataset, BatchStream, DatasetConfig, StreamConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: generate 45 days of ads data and draw the sample catalog.
    let dataset_config = DatasetConfig::new(600, 45, 42);
    let dataset = generate_dataset(&dataset_config)?;
    let config = EngineConfig {
        layer_rates: vec![0.1, 0.02],
        sampler: SamplerChoice::OptimalGsw,
        default_rate: 0.02,
        table_name: Some("ads".to_string()),
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    println!(
        "offline: {} days, {} rows; catalog v{} ({} KiB) in {:?}",
        dataset_config.num_days,
        dataset.table.num_rows(),
        catalog.version(),
        catalog.stats().total_bytes / 1024,
        catalog.stats().duration,
    );
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // Online: prepare once, share everywhere.
    let select_sql = "SELECT SUM(Impression) FROM ads \
                      WHERE t BETWEEN 20200210 AND 20200214 OPTION (SAMPLE_RATE = 1.0)";
    let forecast_sql = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 \
                        USING (20200105, 20200214) \
                        OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7, SAMPLE_RATE = 0.1)";
    let select = Arc::new(engine.prepare(select_sql)?);
    let forecast = Arc::new(engine.prepare(forecast_sql)?);
    println!("\nEXPLAIN before ingest:\n{}", engine.explain(forecast_sql)?);

    // Readers hammer the prepared handles while ingest runs.
    let stop = Arc::new(AtomicBool::new(false));
    let executed = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let (select, forecast) = (select.clone(), forecast.clone());
            let (stop, executed) = (stop.clone(), executed.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // Each execution snapshots exactly one version.
                    select.select_with(&[]).expect("select never blocked by a swap");
                    forecast.forecast_with(&[]).expect("forecast never blocked by a swap");
                    executed.fetch_add(2, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // Stream late-arriving rows into the last 5 existing days, two
    // batches per day, publishing after each day.
    println!(
        "\n{:>4} {:>9} {:>8} {:>9} {:>9} {:>12} {:>14}",
        "day", "rows", "version", "rebuilt", "absorbed", "publish", "SUM(last 5d)"
    );
    let baseline = select.select_with(&[])?.rows[0].1;
    println!(
        "{:>4} {:>9} {:>8} {:>9} {:>9} {:>12} {:>14.0}",
        "-",
        "-",
        engine.version(),
        "-",
        "-",
        "-",
        baseline
    );
    let stream_config = StreamConfig::new(400, 7).with_batches_per_day(2);
    let mut stream = BatchStream::starting_at_day(&dataset_config, stream_config, 40);
    for day in 0..5 {
        let mut staged = 0usize;
        let mut batch = IngestBatch::new();
        for _ in 0..2 {
            let b = stream.next().expect("stream is unbounded");
            staged += b.partition.num_rows();
            batch.push_partition(b.t, b.partition);
        }
        engine.ingest(batch)?;
        let stats = engine.publish()?;
        // The same prepared handle now answers from the new version.
        let updated = select.select_with(&[])?.rows[0].1;
        println!(
            "{:>4} {:>9} {:>8} {:>9} {:>9} {:>12?} {:>14.0}",
            day + 41,
            staged,
            stats.version,
            stats.delta.rebuilt_cells,
            stats.delta.absorbed_cells,
            stats.duration,
            updated,
        );
        assert!(updated > baseline, "published rows must be visible");
    }

    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().expect("reader thread panicked");
    }
    println!(
        "\nreaders: {} prepared executions completed concurrently, zero errors",
        executed.load(Ordering::Relaxed)
    );
    println!("EXPLAIN after publishes:\n{}", engine.explain(forecast_sql)?);
    Ok(())
}
