//! The online forecasting *service* shape of §5: one offline sample
//! build, then many interactive FORECAST tasks answered concurrently.
//!
//! One `SampleCatalog` is built once; a `FlashPEngine` handle over it is
//! cloned into N worker threads (cloning copies `Arc`s, not samples). A
//! single parameterized `PreparedQuery` template — `age <= ?` — serves
//! every worker: each execution binds a different `?` value through
//! `&self`, with no `unsafe` and no mutex anywhere on the hot path.
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```

use flashp::core::{EngineConfig, FlashPEngine, Literal, SampleCatalog};
use flashp::data::{generate_dataset, DatasetConfig};
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: dataset + sample catalog, built exactly once.
    println!("generating dataset…");
    let dataset = generate_dataset(&DatasetConfig::small(42))?;
    let config = EngineConfig {
        layer_rates: vec![0.05],
        default_rate: 0.05,
        // Per-query batches are small; let the threads be the queries.
        threads: 1,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    println!(
        "  catalog: {} layers, {} KiB",
        catalog.num_layers(),
        catalog.stats().total_bytes / 1024
    );
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // Prepare one FORECAST template; `?` binds per execution.
    let template = "FORECAST SUM(Impression) FROM ads WHERE age <= ? \
                    USING (20200101, 20200229) \
                    OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7)";
    let prepared = Arc::new(engine.prepare(template)?);
    println!("\nprepared: {template}");
    println!("plan:\n{}", prepared.explain()?);

    // Reference answers, computed single-threaded through the same
    // prepared statement.
    let ages: Vec<i64> = (0..QUERIES_PER_THREAD as i64).map(|i| 18 + (i % 40)).collect();
    let reference: Vec<Vec<f64>> = ages
        .iter()
        .map(|&age| {
            Ok::<_, flashp::core::EngineError>(
                prepared.forecast_with(&[Literal::Int(age)])?.forecast_values(),
            )
        })
        .collect::<Result<_, _>>()?;

    // Online: N workers hammer the shared prepared statement. Engine
    // handles and the prepared query are shared by reference — the only
    // state each worker owns is its loop counter.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..THREADS {
            let prepared = prepared.clone();
            let ages = &ages;
            let reference = &reference;
            workers.push(scope.spawn(move || {
                for (i, &age) in ages.iter().enumerate() {
                    let r = prepared
                        .forecast_with(&[Literal::Int(age)])
                        .unwrap_or_else(|e| panic!("worker {worker}: {e}"));
                    assert_eq!(
                        r.forecast_values(),
                        reference[i],
                        "worker {worker}: concurrent result diverged for age <= {age}"
                    );
                }
            }));
        }
        for w in workers {
            w.join().expect("worker panicked");
        }
    });
    let elapsed = t0.elapsed();
    let total = THREADS * QUERIES_PER_THREAD;
    println!(
        "{total} forecasts from {THREADS} threads in {elapsed:.1?} \
         ({:.0} statements/sec), every result bit-identical to the \
         single-threaded reference",
        total as f64 / elapsed.as_secs_f64()
    );
    Ok(())
}
