//! The online forecasting *service* shape of §5: one offline sample
//! build, then many interactive FORECAST tasks answered concurrently.
//!
//! One `SampleCatalog` is built once; a `FlashPEngine` handle over it is
//! cloned into N worker threads (cloning copies `Arc`s, not samples). A
//! single parameterized `PreparedQuery` template — `age <= ?` with a
//! `USING (?, ?)` range — serves every worker: each execution binds a
//! different constraint value *and* training window through `&self`,
//! with no `unsafe` and no mutex on the hot path (the range clamp and
//! sample-layer selection happen per binding, cached per distinct
//! window).
//!
//! ```text
//! cargo run --release --example concurrent_service
//! ```

use flashp::core::{EngineConfig, FlashPEngine, Literal, SampleCatalog};
use flashp::data::{generate_dataset, DatasetConfig};
use std::sync::Arc;
use std::time::Instant;

const THREADS: usize = 4;
const QUERIES_PER_THREAD: usize = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Offline: dataset + sample catalog, built exactly once.
    println!("generating dataset…");
    let dataset = generate_dataset(&DatasetConfig::small(42))?;
    let config = EngineConfig {
        layer_rates: vec![0.05],
        default_rate: 0.05,
        // Per-query batches are small; let the threads be the queries.
        threads: 1,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&dataset.table, &config)?;
    println!(
        "  catalog: {} layers, {} KiB",
        catalog.num_layers(),
        catalog.stats().total_bytes / 1024
    );
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // Prepare one FORECAST template; the constraint `?` *and* the
    // `USING (?, ?)` training window bind per execution. The plan keeps
    // everything range-independent (names, options, model, folded
    // predicate shape) static; the range clamp and layer selection run
    // when the window binds.
    let template = "FORECAST SUM(Impression) FROM ads WHERE age <= ? \
                    USING (?, ?) \
                    OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7)";
    let prepared = Arc::new(engine.prepare(template)?);
    println!("\nprepared: {template}");
    println!("plan (range unbound):\n{}", prepared.explain()?);
    println!(
        "plan (one binding):\n{}",
        prepared.explain_with(&[
            Literal::Int(30),
            Literal::Int(20200101),
            Literal::Int(20200229),
        ])?
    );

    // Each query rotates through a small set of training windows, the
    // way a dashboard pans: the prepared handle re-clamps and re-selects
    // per window, then serves repeats from its specialization cache.
    const WINDOWS: &[(i64, i64)] =
        &[(20200101, 20200229), (20200115, 20200229), (20200201, 20200229)];
    let bindings: Vec<[Literal; 3]> = (0..QUERIES_PER_THREAD as i64)
        .map(|i| {
            let (lo, hi) = WINDOWS[i as usize % WINDOWS.len()];
            [Literal::Int(18 + (i % 40)), Literal::Int(lo), Literal::Int(hi)]
        })
        .collect();

    // Reference answers, computed single-threaded through the same
    // prepared statement.
    let reference: Vec<Vec<f64>> = bindings
        .iter()
        .map(|params| {
            Ok::<_, flashp::core::EngineError>(prepared.forecast_with(params)?.forecast_values())
        })
        .collect::<Result<_, _>>()?;

    // Online: N workers hammer the shared prepared statement. Engine
    // handles and the prepared query are shared by reference — the only
    // state each worker owns is its loop counter.
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        let mut workers = Vec::new();
        for worker in 0..THREADS {
            let prepared = prepared.clone();
            let bindings = &bindings;
            let reference = &reference;
            workers.push(scope.spawn(move || {
                for (i, params) in bindings.iter().enumerate() {
                    let r = prepared
                        .forecast_with(params)
                        .unwrap_or_else(|e| panic!("worker {worker}: {e}"));
                    assert_eq!(
                        r.forecast_values(),
                        reference[i],
                        "worker {worker}: concurrent result diverged for {params:?}"
                    );
                }
            }));
        }
        for w in workers {
            w.join().expect("worker panicked");
        }
    });
    let elapsed = t0.elapsed();
    let total = THREADS * QUERIES_PER_THREAD;
    println!(
        "{total} forecasts from {THREADS} threads in {elapsed:.1?} \
         ({:.0} statements/sec), every result bit-identical to the \
         single-threaded reference",
        total as f64 / elapsed.as_secs_f64()
    );
    println!(
        "{} distinct windows specialized for the current catalog version",
        prepared.specialization_count()
    );
    Ok(())
}
