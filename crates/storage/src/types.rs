//! Logical value and column types.

use std::fmt;

/// Physical/logical type of a dimension column.
///
/// Dimensions are the `a(i)` attributes the paper filters on. Measures are
/// always `f64` and are kept separate (see
/// [`MeasureDef`](crate::schema::MeasureDef)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Small unsigned integers (e.g. `Age`), stored as one byte per row.
    UInt8,
    /// Medium unsigned integers (e.g. a city id), two bytes per row.
    UInt16,
    /// General integers, eight bytes per row.
    Int64,
    /// IEEE-754 doubles (e.g. a price or a score), eight bytes per row.
    /// Comparisons use exact IEEE semantics: `NaN` compares false under
    /// every operator except `!=`, and `-0.0 == 0.0`.
    Float64,
    /// Dictionary-encoded strings (e.g. `Gender`, `Location`).
    Categorical,
}

impl DataType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::UInt8 => "uint8",
            DataType::UInt16 => "uint16",
            DataType::Int64 => "int64",
            DataType::Float64 => "float64",
            DataType::Categorical => "categorical",
        }
    }

    /// Whether `<`, `<=`, `>`, `>=` are meaningful on this type.
    pub fn is_ordered(self) -> bool {
        !matches!(self, DataType::Categorical)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar used for ingestion and predicate literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
    Str(String),
}

impl Value {
    /// The integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Float(_) | Value::Str(_) => None,
        }
    }

    /// The float payload: native for [`Value::Float`], widened for
    /// [`Value::Int`] (exact for |v| < 2^53).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) | Value::Float(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            // Keep the decimal point so the rendered literal stays a float
            // (`1.0`, not `1` — which would re-parse as an Int).
            Value::Float(v) if v.fract() == 0.0 && v.is_finite() => write!(f, "{v:.1}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_support_matches_type() {
        assert!(DataType::UInt8.is_ordered());
        assert!(DataType::Int64.is_ordered());
        assert!(DataType::Float64.is_ordered());
        assert!(!DataType::Categorical.is_ordered());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(2.5).as_float(), Some(2.5));
        assert_eq!(Value::Float(2.5).as_int(), None);
        assert_eq!(Value::from("F").as_str(), Some("F"));
        assert_eq!(Value::from("F").to_string(), "'F'");
    }

    #[test]
    fn float_display_keeps_the_decimal_point() {
        assert_eq!(Value::Float(1.0).to_string(), "1.0");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(-0.0).to_string(), "-0.0");
    }
}
