//! Logical value and column types.

use std::fmt;

/// Physical/logical type of a dimension column.
///
/// Dimensions are the `a(i)` attributes the paper filters on. Measures are
/// always `f64` and are kept separate (see
/// [`MeasureDef`](crate::schema::MeasureDef)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Small unsigned integers (e.g. `Age`), stored as one byte per row.
    UInt8,
    /// Medium unsigned integers (e.g. a city id), two bytes per row.
    UInt16,
    /// General integers, eight bytes per row.
    Int64,
    /// Dictionary-encoded strings (e.g. `Gender`, `Location`).
    Categorical,
}

impl DataType {
    /// Human-readable name used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::UInt8 => "uint8",
            DataType::UInt16 => "uint16",
            DataType::Int64 => "int64",
            DataType::Categorical => "categorical",
        }
    }

    /// Whether `<`, `<=`, `>`, `>=` are meaningful on this type.
    pub fn is_ordered(self) -> bool {
        !matches!(self, DataType::Categorical)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A dynamically typed scalar used for ingestion and predicate literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Int(i64),
    Str(String),
}

impl Value {
    /// The integer payload, if this is an integer value.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// The string payload, if this is a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_support_matches_type() {
        assert!(DataType::UInt8.is_ordered());
        assert!(DataType::Int64.is_ordered());
        assert!(!DataType::Categorical.is_ordered());
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_str(), None);
        assert_eq!(Value::from("F").as_str(), Some("F"));
        assert_eq!(Value::from("F").to_string(), "'F'");
    }
}
