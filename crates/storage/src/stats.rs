//! Per-partition zone maps: min/max of each ordered dimension, used to
//! skip partitions that provably contain no matching rows.
//!
//! Zone maps matter less for FlashP's main path (the constraint `C` rarely
//! excludes whole days) but they make the exact-scan baseline competitive
//! for highly selective range constraints and they are cheap to maintain.

use crate::column::DimensionColumn;

/// Min/max summaries for the ordered dimension columns of one partition.
/// Categorical (dictionary) columns have no meaningful order, so their slot
/// is `None`.
#[derive(Debug, Clone, Default)]
pub struct ZoneMaps {
    ranges: Vec<Option<(i64, i64)>>,
}

impl ZoneMaps {
    /// Zone maps with no observations for `num_dims` dimensions.
    pub fn empty(num_dims: usize) -> Self {
        ZoneMaps { ranges: vec![None; num_dims] }
    }

    /// Compute zone maps for a full set of columns.
    pub fn compute(dims: &[DimensionColumn]) -> Self {
        let mut zm = ZoneMaps::empty(dims.len());
        for (d, slot) in dims.iter().zip(&mut zm.ranges) {
            if matches!(d, DimensionColumn::Dict(_)) || d.is_empty() {
                continue;
            }
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for i in 0..d.len() {
                let v = d.get_i64(i);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            *slot = Some((lo, hi));
        }
        zm
    }

    /// Extend the zone maps with one newly appended row.
    pub fn observe_row(&mut self, dims: &[DimensionColumn], row: usize) {
        if self.ranges.len() != dims.len() {
            self.ranges.resize(dims.len(), None);
        }
        for (d, slot) in dims.iter().zip(&mut self.ranges) {
            if matches!(d, DimensionColumn::Dict(_)) {
                continue;
            }
            let v = d.get_i64(row);
            *slot = match *slot {
                Some((lo, hi)) => Some((lo.min(v), hi.max(v))),
                None => Some((v, v)),
            };
        }
    }

    /// Merge another partition's zone maps into this one (union of
    /// ranges), used when two partitions for the same timestamp are
    /// concatenated during ingest.
    pub fn merge(&mut self, other: &ZoneMaps) {
        if self.ranges.len() < other.ranges.len() {
            self.ranges.resize(other.ranges.len(), None);
        }
        for (slot, o) in self.ranges.iter_mut().zip(&other.ranges) {
            *slot = match (*slot, *o) {
                (Some((a, b)), Some((c, d))) => Some((a.min(c), b.max(d))),
                (s, None) => s,
                (None, o) => o,
            };
        }
    }

    /// The `(min, max)` of ordered dimension `idx`, if known.
    pub fn range(&self, idx: usize) -> Option<(i64, i64)> {
        self.ranges.get(idx).copied().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_skips_dict_columns() {
        let dims =
            vec![DimensionColumn::Int64(vec![5, -3, 9]), DimensionColumn::Dict(vec![0, 1, 0])];
        let zm = ZoneMaps::compute(&dims);
        assert_eq!(zm.range(0), Some((-3, 9)));
        assert_eq!(zm.range(1), None);
    }

    #[test]
    fn observe_row_extends() {
        let mut dims = vec![DimensionColumn::Int64(vec![5])];
        let mut zm = ZoneMaps::empty(1);
        zm.observe_row(&dims, 0);
        assert_eq!(zm.range(0), Some((5, 5)));
        if let DimensionColumn::Int64(v) = &mut dims[0] {
            v.push(11);
        }
        zm.observe_row(&dims, 1);
        assert_eq!(zm.range(0), Some((5, 11)));
    }

    #[test]
    fn empty_column_has_no_range() {
        let dims = vec![DimensionColumn::Int64(vec![])];
        let zm = ZoneMaps::compute(&dims);
        assert_eq!(zm.range(0), None);
        assert_eq!(zm.range(7), None);
    }
}
