//! Per-partition zone maps: min/max of each ordered dimension, used to
//! skip partitions that provably contain no matching rows.
//!
//! Zone maps matter less for FlashP's main path (the constraint `C` rarely
//! excludes whole days) but they make the exact-scan baseline competitive
//! for highly selective range constraints and they are cheap to maintain.

use crate::column::DimensionColumn;

/// The observed value range of one ordered dimension column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZoneRange {
    /// Integer-valued column (uint8/uint16/int64).
    Int {
        /// Smallest observed value.
        lo: i64,
        /// Largest observed value.
        hi: i64,
    },
    /// Float64 column. `lo`/`hi` cover the non-NaN values only
    /// (`lo = +inf, hi = -inf` when every row is NaN); `has_nan` records
    /// whether any NaN was observed — a NaN row matches `!=` against any
    /// literal, so `!=` pruning must never fire while it is set.
    Float {
        /// Smallest observed non-NaN value (`+inf` if none).
        lo: f64,
        /// Largest observed non-NaN value (`-inf` if none).
        hi: f64,
        /// Whether any NaN value was observed.
        has_nan: bool,
    },
}

impl ZoneRange {
    fn union(self, other: ZoneRange) -> Option<ZoneRange> {
        match (self, other) {
            (ZoneRange::Int { lo: a, hi: b }, ZoneRange::Int { lo: c, hi: d }) => {
                Some(ZoneRange::Int { lo: a.min(c), hi: b.max(d) })
            }
            (
                ZoneRange::Float { lo: a, hi: b, has_nan: n1 },
                ZoneRange::Float { lo: c, hi: d, has_nan: n2 },
            ) => Some(ZoneRange::Float { lo: a.min(c), hi: b.max(d), has_nan: n1 || n2 }),
            // Mismatched variants (a column changed type across merged
            // partitions — impossible via the table API): no claim.
            _ => None,
        }
    }

    fn observe_f64(slot: &mut Option<ZoneRange>, v: f64) {
        let (mut lo, mut hi, mut has_nan) = match *slot {
            Some(ZoneRange::Float { lo, hi, has_nan }) => (lo, hi, has_nan),
            _ => (f64::INFINITY, f64::NEG_INFINITY, false),
        };
        if v.is_nan() {
            has_nan = true;
        } else {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        *slot = Some(ZoneRange::Float { lo, hi, has_nan });
    }

    fn observe_i64(slot: &mut Option<ZoneRange>, v: i64) {
        *slot = match *slot {
            Some(ZoneRange::Int { lo, hi }) => {
                Some(ZoneRange::Int { lo: lo.min(v), hi: hi.max(v) })
            }
            _ => Some(ZoneRange::Int { lo: v, hi: v }),
        };
    }
}

/// Min/max summaries for the ordered dimension columns of one partition.
/// Categorical (dictionary) columns have no meaningful order, so their slot
/// is `None`.
#[derive(Debug, Clone, Default)]
pub struct ZoneMaps {
    ranges: Vec<Option<ZoneRange>>,
}

impl ZoneMaps {
    /// Zone maps with no observations for `num_dims` dimensions.
    pub fn empty(num_dims: usize) -> Self {
        ZoneMaps { ranges: vec![None; num_dims] }
    }

    /// Compute zone maps for a full set of columns.
    pub fn compute(dims: &[DimensionColumn]) -> Self {
        let mut zm = ZoneMaps::empty(dims.len());
        for (d, slot) in dims.iter().zip(&mut zm.ranges) {
            if d.is_empty() {
                continue;
            }
            match d {
                DimensionColumn::Dict(_) => {}
                DimensionColumn::Float64(v) => {
                    for &x in v {
                        ZoneRange::observe_f64(slot, x);
                    }
                }
                _ => {
                    for i in 0..d.len() {
                        ZoneRange::observe_i64(slot, d.get_i64(i));
                    }
                }
            }
        }
        zm
    }

    /// Extend the zone maps with one newly appended row.
    pub fn observe_row(&mut self, dims: &[DimensionColumn], row: usize) {
        if self.ranges.len() != dims.len() {
            self.ranges.resize(dims.len(), None);
        }
        for (d, slot) in dims.iter().zip(&mut self.ranges) {
            match d {
                DimensionColumn::Dict(_) => {}
                DimensionColumn::Float64(v) => ZoneRange::observe_f64(slot, v[row]),
                _ => ZoneRange::observe_i64(slot, d.get_i64(row)),
            }
        }
    }

    /// Merge another partition's zone maps into this one (union of
    /// ranges), used when two partitions for the same timestamp are
    /// concatenated during ingest.
    pub fn merge(&mut self, other: &ZoneMaps) {
        if self.ranges.len() < other.ranges.len() {
            self.ranges.resize(other.ranges.len(), None);
        }
        for (slot, o) in self.ranges.iter_mut().zip(&other.ranges) {
            *slot = match (*slot, *o) {
                (Some(a), Some(b)) => a.union(b),
                (s, None) => s,
                (None, o) => o,
            };
        }
    }

    /// The `(min, max)` of integer-valued ordered dimension `idx`, if
    /// known. Float columns answer through [`ZoneMaps::float_range`].
    pub fn range(&self, idx: usize) -> Option<(i64, i64)> {
        match self.ranges.get(idx).copied().flatten() {
            Some(ZoneRange::Int { lo, hi }) => Some((lo, hi)),
            _ => None,
        }
    }

    /// The `(min, max, has_nan)` of float dimension `idx`, if known.
    /// `min`/`max` cover non-NaN values only (`(+inf, -inf)` when every
    /// observed value was NaN).
    pub fn float_range(&self, idx: usize) -> Option<(f64, f64, bool)> {
        match self.ranges.get(idx).copied().flatten() {
            Some(ZoneRange::Float { lo, hi, has_nan }) => Some((lo, hi, has_nan)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_skips_dict_columns() {
        let dims =
            vec![DimensionColumn::Int64(vec![5, -3, 9]), DimensionColumn::Dict(vec![0, 1, 0])];
        let zm = ZoneMaps::compute(&dims);
        assert_eq!(zm.range(0), Some((-3, 9)));
        assert_eq!(zm.range(1), None);
    }

    #[test]
    fn observe_row_extends() {
        let mut dims = vec![DimensionColumn::Int64(vec![5])];
        let mut zm = ZoneMaps::empty(1);
        zm.observe_row(&dims, 0);
        assert_eq!(zm.range(0), Some((5, 5)));
        if let DimensionColumn::Int64(v) = &mut dims[0] {
            v.push(11);
        }
        zm.observe_row(&dims, 1);
        assert_eq!(zm.range(0), Some((5, 11)));
    }

    #[test]
    fn empty_column_has_no_range() {
        let dims = vec![DimensionColumn::Int64(vec![])];
        let zm = ZoneMaps::compute(&dims);
        assert_eq!(zm.range(0), None);
        assert_eq!(zm.range(7), None);
    }

    #[test]
    fn float_ranges_track_non_nan_bounds_and_nan_presence() {
        let dims = vec![DimensionColumn::Float64(vec![1.5, f64::NAN, -2.0, 0.0])];
        let zm = ZoneMaps::compute(&dims);
        assert_eq!(zm.float_range(0), Some((-2.0, 1.5, true)));
        assert_eq!(zm.range(0), None, "float slots never answer the integer accessor");

        // All-NaN column: empty numeric range, NaN flag set.
        let dims = vec![DimensionColumn::Float64(vec![f64::NAN, f64::NAN])];
        let zm = ZoneMaps::compute(&dims);
        let (lo, hi, has_nan) = zm.float_range(0).unwrap();
        assert!(lo > hi && has_nan);
    }

    #[test]
    fn float_ranges_merge_and_observe() {
        let a_cols = vec![DimensionColumn::Float64(vec![1.0, 2.0])];
        let mut a = ZoneMaps::compute(&a_cols);
        let b = ZoneMaps::compute(&[DimensionColumn::Float64(vec![f64::NAN, -5.0])]);
        a.merge(&b);
        assert_eq!(a.float_range(0), Some((-5.0, 2.0, true)));

        let mut dims = a_cols;
        if let DimensionColumn::Float64(v) = &mut dims[0] {
            v.push(9.5);
        }
        a.observe_row(&dims, 2);
        assert_eq!(a.float_range(0), Some((-5.0, 9.5, true)));
    }
}
