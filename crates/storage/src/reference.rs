//! Scalar reference kernels: faithful reproductions of the predicate
//! evaluation and masked aggregation this crate shipped before the
//! word-at-a-time rewrite — per-leaf loops that test one row at a time and
//! set mask bits one by one, tree combining via whole-mask AND/OR/NOT with
//! a `count_ones()` short-circuit, and an index-at-a-time aggregation
//! gather.
//!
//! They are kept (not test-gated) for two jobs: the kernel-equivalence
//! property tests prove the vectorized kernels bit-for-bit and sum-exact
//! identical to these, and the `bench_report` harness measures them as the
//! "scalar" baseline so the recorded speedups always compare against the
//! code that actually shipped. Nothing on a query path should call into
//! this module.

use crate::aggregate::AggState;
use crate::bitmask::Bitmask;
use crate::column::DimensionColumn;
use crate::partition::Partition;
use crate::predicate::{CmpOp, CompiledPredicate};

/// The pre-rewrite `CompiledPredicate::evaluate`: per-leaf scalar scans,
/// `count_ones()`-guarded AND short-circuit, binary-search IN-lists via
/// the widening `get_i64` accessor.
pub fn evaluate_scalar(pred: &CompiledPredicate, partition: &Partition) -> Bitmask {
    let n = partition.num_rows();
    match pred {
        CompiledPredicate::Const(true) => Bitmask::ones(n),
        CompiledPredicate::Const(false) => Bitmask::zeros(n),
        CompiledPredicate::Cmp { dim, op, value } => {
            eval_cmp_scalar(partition.dim(*dim), *op, *value)
        }
        CompiledPredicate::CmpF64 { dim, op, value } => match partition.dim(*dim) {
            DimensionColumn::Float64(v) => eval_cmp_f64_scalar(v, *op, *value),
            col => Bitmask::from_fn(n, |i| op.apply_f64(col.get_f64(i), *value)),
        },
        CompiledPredicate::InSet { dim, values, .. } => match partition.dim(*dim) {
            // By promoted value, mirroring the vectorized path — never the
            // `get_i64` bit pattern.
            DimensionColumn::Float64(v) => {
                Bitmask::from_fn(n, |i| values.iter().any(|&w| v[i] == w as f64))
            }
            col => Bitmask::from_fn(n, |i| values.binary_search(&col.get_i64(i)).is_ok()),
        },
        CompiledPredicate::And(children) => {
            let mut mask = evaluate_scalar(&children[0], partition);
            for c in &children[1..] {
                if mask.count_ones() == 0 {
                    break;
                }
                mask.and_inplace(&evaluate_scalar(c, partition));
            }
            mask
        }
        CompiledPredicate::Or(children) => {
            let mut mask = evaluate_scalar(&children[0], partition);
            for c in &children[1..] {
                mask.or_inplace(&evaluate_scalar(c, partition));
            }
            mask
        }
        CompiledPredicate::Not(child) => {
            let mut mask = evaluate_scalar(child, partition);
            mask.not_inplace();
            mask
        }
    }
}

/// The pre-rewrite `eval_cmp`: monomorphized per column representation,
/// but testing one row and setting one bit at a time, with every
/// comparison widened through `op.apply` in i64 space.
fn eval_cmp_scalar(col: &DimensionColumn, op: CmpOp, value: i64) -> Bitmask {
    macro_rules! scan {
        ($v:expr, $cast:ty) => {{
            let data = $v;
            let mut mask = Bitmask::zeros(data.len());
            match <$cast>::try_from(value) {
                Ok(rhs) => {
                    for (i, x) in data.iter().enumerate() {
                        if op.apply(i64::from(*x), i64::from(rhs)) {
                            mask.set(i);
                        }
                    }
                }
                // Literal outside the column type's range: compare in i64
                // space (still correct, just not narrowed).
                Err(_) => {
                    for (i, x) in data.iter().enumerate() {
                        if op.apply(i64::from(*x), value) {
                            mask.set(i);
                        }
                    }
                }
            }
            mask
        }};
    }
    match col {
        DimensionColumn::UInt8(v) => scan!(v, u8),
        DimensionColumn::UInt16(v) => scan!(v, u16),
        DimensionColumn::Dict(v) => scan!(v, u32),
        DimensionColumn::Int64(v) => {
            let mut mask = Bitmask::zeros(v.len());
            for (i, x) in v.iter().enumerate() {
                if op.apply(*x, value) {
                    mask.set(i);
                }
            }
            mask
        }
        // Integer literal against a float column: promote and compare by
        // value, as the vectorized path does.
        DimensionColumn::Float64(v) => eval_cmp_f64_scalar(v, op, value as f64),
    }
}

/// Row-at-a-time `f64` comparison oracle with Rust's native IEEE
/// semantics (ordered compares and `==` are `false` against NaN, `!=` is
/// `true`). The SIMD `cmp_f64` kernels of [`crate::simd`] are proven
/// bit-for-bit identical to this, including NaN / ±∞ / −0.0 / extreme
/// literals.
pub fn eval_cmp_f64_scalar(data: &[f64], op: CmpOp, rhs: f64) -> Bitmask {
    let mut mask = Bitmask::zeros(data.len());
    for (i, &x) in data.iter().enumerate() {
        let hit = match op {
            CmpOp::Eq => x == rhs,
            CmpOp::Ne => x != rhs,
            CmpOp::Lt => x < rhs,
            CmpOp::Le => x <= rhs,
            CmpOp::Gt => x > rhs,
            CmpOp::Ge => x >= rhs,
        };
        if hit {
            mask.set(i);
        }
    }
    mask
}

/// Index-at-a-time masked aggregation: gather each selected row through
/// the set-bit iterator, no word-level fast paths.
pub fn aggregate_masked_scalar(
    partition: &Partition,
    measure_idx: usize,
    mask: &Bitmask,
) -> AggState {
    let values = partition.measure(measure_idx);
    debug_assert_eq!(values.len(), mask.len());
    let mut state = AggState::default();
    for i in mask.iter_ones() {
        state.sum += values[i];
        state.count += 1;
    }
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DimensionColumn;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::Schema;
    use crate::types::DataType;

    #[test]
    fn scalar_reference_on_known_rows() {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap();
        let p = Partition::from_columns(
            vec![DimensionColumn::Int64(vec![1, 2, 3, 4])],
            vec![vec![10.0, 20.0, 30.0, 40.0]],
        )
        .unwrap();
        let pred = Predicate::cmp("k", CmpOp::Ge, 3).compile(&schema, &[None]).unwrap();
        let mask = evaluate_scalar(&pred, &p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![2, 3]);
        let s = aggregate_masked_scalar(&p, 0, &mask);
        assert_eq!(s.sum, 70.0);
        assert_eq!(s.count, 2);
    }
}
