//! The constraint language `C` of forecasting tasks.
//!
//! A [`Predicate`] is any logical expression over dimension values — the
//! exact class the paper allows in `FORECAST … WHERE C` (Eq. 1). Before
//! evaluation a predicate is *compiled* against a table: names resolve to
//! column indices, string literals resolve to dictionary codes, and
//! type/operator compatibility is checked once. The resulting
//! [`CompiledPredicate`] evaluates vectorized into a [`Bitmask`] and can be
//! shared across partitions and samples of the same table.

use crate::bitmask::Bitmask;
use crate::column::{Dictionary, DimensionColumn};
use crate::error::StorageError;
use crate::partition::Partition;
use crate::schema::Schema;
use crate::stats::ZoneMaps;
use crate::types::{DataType, Value};
use std::fmt;

/// Comparison operators supported in constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    #[inline]
    fn apply(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// An unbound constraint over dimension names, e.g.
/// `Age <= 30 AND Gender = 'F'`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op literal`.
    Cmp { column: String, op: CmpOp, value: Value },
    /// `column IN (v1, v2, …)`.
    In { column: String, values: Vec<Value> },
    /// Conjunction; empty conjunction is `TRUE`.
    And(Vec<Predicate>),
    /// Disjunction; empty disjunction is `FALSE`.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (select everything).
    True,
}

impl Predicate {
    /// Convenience: `column op value`.
    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp { column: column.to_string(), op, value: value.into() }
    }

    /// Convenience: equality.
    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Predicate::cmp(column, CmpOp::Eq, value)
    }

    /// Convenience: conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut v) => {
                v.push(other);
                Predicate::And(v)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Compile against a schema + dictionaries, resolving names and codes.
    pub fn compile(
        &self,
        schema: &Schema,
        dicts: &[Option<Dictionary>],
    ) -> Result<CompiledPredicate, StorageError> {
        match self {
            Predicate::True => Ok(CompiledPredicate::Const(true)),
            Predicate::And(children) => {
                let mut compiled = Vec::with_capacity(children.len());
                for c in children {
                    match c.compile(schema, dicts)? {
                        CompiledPredicate::Const(true) => {}
                        CompiledPredicate::Const(false) => {
                            return Ok(CompiledPredicate::Const(false))
                        }
                        other => compiled.push(other),
                    }
                }
                Ok(match compiled.len() {
                    0 => CompiledPredicate::Const(true),
                    1 => compiled.pop().expect("len checked"),
                    _ => CompiledPredicate::And(compiled),
                })
            }
            Predicate::Or(children) => {
                let mut compiled = Vec::with_capacity(children.len());
                for c in children {
                    match c.compile(schema, dicts)? {
                        CompiledPredicate::Const(false) => {}
                        CompiledPredicate::Const(true) => {
                            return Ok(CompiledPredicate::Const(true))
                        }
                        other => compiled.push(other),
                    }
                }
                Ok(match compiled.len() {
                    0 => CompiledPredicate::Const(false),
                    1 => compiled.pop().expect("len checked"),
                    _ => CompiledPredicate::Or(compiled),
                })
            }
            Predicate::Not(child) => Ok(match child.compile(schema, dicts)? {
                CompiledPredicate::Const(b) => CompiledPredicate::Const(!b),
                other => CompiledPredicate::Not(Box::new(other)),
            }),
            Predicate::Cmp { column, op, value } => {
                let dim = schema.dimension_index(column)?;
                let dtype = schema.dimensions()[dim].dtype;
                match (dtype, value) {
                    (DataType::Categorical, Value::Str(s)) => {
                        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                            return Err(StorageError::UnsupportedOperation(format!(
                                "{} on categorical column {column}",
                                op.symbol()
                            )));
                        }
                        match dicts[dim].as_ref().and_then(|d| d.lookup(s)) {
                            Some(code) => {
                                Ok(CompiledPredicate::Cmp { dim, op: *op, value: i64::from(code) })
                            }
                            // Unseen string: Eq matches nothing, Ne everything.
                            None => Ok(CompiledPredicate::Const(*op == CmpOp::Ne)),
                        }
                    }
                    (DataType::Categorical, Value::Int(v)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "string literal",
                        got: v.to_string(),
                    }),
                    (_, Value::Int(v)) => Ok(CompiledPredicate::Cmp { dim, op: *op, value: *v }),
                    (_, Value::Str(s)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "integer literal",
                        got: format!("'{s}'"),
                    }),
                }
            }
            Predicate::In { column, values } => {
                let dim = schema.dimension_index(column)?;
                let dtype = schema.dimensions()[dim].dtype;
                let mut resolved = Vec::with_capacity(values.len());
                for v in values {
                    match (dtype, v) {
                        (DataType::Categorical, Value::Str(s)) => {
                            // Unseen strings simply cannot match; drop them.
                            if let Some(code) = dicts[dim].as_ref().and_then(|d| d.lookup(s)) {
                                resolved.push(i64::from(code));
                            }
                        }
                        (DataType::Categorical, Value::Int(v)) => {
                            return Err(StorageError::TypeMismatch {
                                column: column.clone(),
                                expected: "string literal",
                                got: v.to_string(),
                            })
                        }
                        (_, Value::Int(v)) => resolved.push(*v),
                        (_, Value::Str(s)) => {
                            return Err(StorageError::TypeMismatch {
                                column: column.clone(),
                                expected: "integer literal",
                                got: format!("'{s}'"),
                            })
                        }
                    }
                }
                if resolved.is_empty() {
                    return Ok(CompiledPredicate::Const(false));
                }
                resolved.sort_unstable();
                resolved.dedup();
                Ok(CompiledPredicate::InSet { dim, values: resolved })
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => {
                write!(f, "{column} {} {value}", op.symbol())
            }
            Predicate::In { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::And(children) => {
                if children.is_empty() {
                    return write!(f, "TRUE");
                }
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Predicate::Or(children) => {
                if children.is_empty() {
                    return write!(f, "FALSE");
                }
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Predicate::Not(c) => write!(f, "NOT ({c})"),
            Predicate::True => write!(f, "TRUE"),
        }
    }
}

/// A predicate bound to a concrete table: names resolved to dimension
/// indices, strings resolved to dictionary codes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPredicate {
    Cmp { dim: usize, op: CmpOp, value: i64 },
    InSet { dim: usize, values: Vec<i64> },
    And(Vec<CompiledPredicate>),
    Or(Vec<CompiledPredicate>),
    Not(Box<CompiledPredicate>),
    Const(bool),
}

impl CompiledPredicate {
    /// Evaluate over every row of `partition`, producing a selection mask.
    pub fn evaluate(&self, partition: &Partition) -> Bitmask {
        let n = partition.num_rows();
        match self {
            CompiledPredicate::Const(true) => Bitmask::ones(n),
            CompiledPredicate::Const(false) => Bitmask::zeros(n),
            CompiledPredicate::Cmp { dim, op, value } => {
                eval_cmp(partition.dim(*dim), *op, *value)
            }
            CompiledPredicate::InSet { dim, values } => {
                let col = partition.dim(*dim);
                Bitmask::from_fn(n, |i| values.binary_search(&col.get_i64(i)).is_ok())
            }
            CompiledPredicate::And(children) => {
                let mut mask = children[0].evaluate(partition);
                for c in &children[1..] {
                    if mask.count_ones() == 0 {
                        break;
                    }
                    mask.and_inplace(&c.evaluate(partition));
                }
                mask
            }
            CompiledPredicate::Or(children) => {
                let mut mask = children[0].evaluate(partition);
                for c in &children[1..] {
                    mask.or_inplace(&c.evaluate(partition));
                }
                mask
            }
            CompiledPredicate::Not(child) => {
                let mut mask = child.evaluate(partition);
                mask.not_inplace();
                mask
            }
        }
    }

    /// Evaluate for a single row (used by row-at-a-time consumers such as
    /// stratified samplers).
    pub fn matches_row(&self, partition: &Partition, row: usize) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::Cmp { dim, op, value } => {
                op.apply(partition.dim(*dim).get_i64(row), *value)
            }
            CompiledPredicate::InSet { dim, values } => {
                values.binary_search(&partition.dim(*dim).get_i64(row)).is_ok()
            }
            CompiledPredicate::And(children) => {
                children.iter().all(|c| c.matches_row(partition, row))
            }
            CompiledPredicate::Or(children) => {
                children.iter().any(|c| c.matches_row(partition, row))
            }
            CompiledPredicate::Not(child) => !child.matches_row(partition, row),
        }
    }

    /// Conservative zone-map check: returns `false` only if the partition
    /// provably contains no matching row.
    pub fn may_match(&self, zone_maps: &ZoneMaps) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::Cmp { dim, op, value } => match zone_maps.range(*dim) {
                None => true,
                Some((lo, hi)) => match op {
                    CmpOp::Eq => (lo..=hi).contains(value),
                    CmpOp::Ne => !(lo == hi && lo == *value),
                    CmpOp::Lt => lo < *value,
                    CmpOp::Le => lo <= *value,
                    CmpOp::Gt => hi > *value,
                    CmpOp::Ge => hi >= *value,
                },
            },
            CompiledPredicate::InSet { dim, values } => match zone_maps.range(*dim) {
                None => true,
                Some((lo, hi)) => values.iter().any(|v| (lo..=hi).contains(v)),
            },
            CompiledPredicate::And(children) => children.iter().all(|c| c.may_match(zone_maps)),
            CompiledPredicate::Or(children) => children.iter().any(|c| c.may_match(zone_maps)),
            // NOT over an approximate summary cannot prove emptiness.
            CompiledPredicate::Not(_) => true,
        }
    }
}

fn eval_cmp(col: &DimensionColumn, op: CmpOp, value: i64) -> Bitmask {
    // Monomorphize the hot loop per column representation so the compiler
    // can vectorize the comparison.
    macro_rules! scan {
        ($v:expr, $cast:ty) => {{
            let data = $v;
            let mut mask = Bitmask::zeros(data.len());
            match <$cast>::try_from(value) {
                Ok(rhs) => {
                    for (i, x) in data.iter().enumerate() {
                        if op.apply(i64::from(*x), i64::from(rhs)) {
                            mask.set(i);
                        }
                    }
                }
                // The literal is outside the column type's range: compare in
                // i64 space (still correct, just not narrowed).
                Err(_) => {
                    for (i, x) in data.iter().enumerate() {
                        if op.apply(i64::from(*x), value) {
                            mask.set(i);
                        }
                    }
                }
            }
            mask
        }};
    }
    match col {
        DimensionColumn::UInt8(v) => scan!(v, u8),
        DimensionColumn::UInt16(v) => scan!(v, u16),
        DimensionColumn::Dict(v) => scan!(v, u32),
        DimensionColumn::Int64(v) => {
            let mut mask = Bitmask::zeros(v.len());
            for (i, x) in v.iter().enumerate() {
                if op.apply(*x, value) {
                    mask.set(i);
                }
            }
            mask
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn setup() -> (Schema, Vec<Option<Dictionary>>, Partition) {
        let schema = Schema::from_names(
            &[("Age", DataType::UInt8), ("Gender", DataType::Categorical)],
            &["Impression"],
        )
        .unwrap();
        let mut dicts: Vec<Option<Dictionary>> = vec![None, None];
        let mut p = Partition::empty(&schema);
        // Rows of Fig. 1 (minus Location).
        for (age, g, imp) in [(30, "F", 5.0), (60, "M", 1.0), (20, "F", 10.0), (40, "M", 20.0)] {
            p.push_row(&schema, &mut dicts, &[Value::Int(age), Value::from(g)], &[imp]).unwrap();
        }
        (schema, dicts, p)
    }

    #[test]
    fn paper_example_constraint() {
        // Age <= 30 AND Gender = 'F' matches rows 0 and 2 (Fig. 1 yellow).
        let (schema, dicts, p) = setup();
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        let compiled = pred.compile(&schema, &dicts).unwrap();
        let mask = compiled.evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn or_and_not() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::Or(vec![
            Predicate::cmp("Age", CmpOp::Ge, 60),
            Predicate::cmp("Age", CmpOp::Lt, 25),
        ]);
        let mask = pred.compile(&schema, &dicts).unwrap().evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![1, 2]);

        let pred = Predicate::Not(Box::new(Predicate::eq("Gender", "F")));
        let mask = pred.compile(&schema, &dicts).unwrap().evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn in_set() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::In {
            column: "Age".to_string(),
            values: vec![Value::Int(20), Value::Int(60), Value::Int(99)],
        };
        let mask = pred.compile(&schema, &dicts).unwrap().evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn unseen_string_folds_to_constant() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::eq("Gender", "X");
        let compiled = pred.compile(&schema, &dicts).unwrap();
        assert_eq!(compiled, CompiledPredicate::Const(false));
        assert_eq!(compiled.evaluate(&p).count_ones(), 0);

        let pred = Predicate::cmp("Gender", CmpOp::Ne, "X");
        let compiled = pred.compile(&schema, &dicts).unwrap();
        assert_eq!(compiled, CompiledPredicate::Const(true));
    }

    #[test]
    fn range_on_categorical_rejected() {
        let (schema, dicts, _) = setup();
        let pred = Predicate::cmp("Gender", CmpOp::Lt, "F");
        assert!(pred.compile(&schema, &dicts).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let (schema, dicts, _) = setup();
        assert!(Predicate::eq("Age", "thirty").compile(&schema, &dicts).is_err());
        assert!(Predicate::eq("Gender", 1).compile(&schema, &dicts).is_err());
        assert!(Predicate::eq("Nope", 1).compile(&schema, &dicts).is_err());
    }

    #[test]
    fn matches_row_agrees_with_evaluate() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        let compiled = pred.compile(&schema, &dicts).unwrap();
        let mask = compiled.evaluate(&p);
        for i in 0..p.num_rows() {
            assert_eq!(mask.get(i), compiled.matches_row(&p, i));
        }
    }

    #[test]
    fn zone_map_pruning() {
        let (schema, dicts, p) = setup();
        // Ages span [20, 60]; Age > 100 cannot match.
        let pred = Predicate::cmp("Age", CmpOp::Gt, 100).compile(&schema, &dicts).unwrap();
        assert!(!pred.may_match(p.zone_maps()));
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).compile(&schema, &dicts).unwrap();
        assert!(pred.may_match(p.zone_maps()));
        // NOT is conservative.
        let pred = Predicate::Not(Box::new(Predicate::cmp("Age", CmpOp::Le, 100)))
            .compile(&schema, &dicts)
            .unwrap();
        assert!(pred.may_match(p.zone_maps()));
    }

    #[test]
    fn literal_outside_narrow_type_range() {
        let (schema, dicts, p) = setup();
        // 1000 does not fit u8 but `Age <= 1000` must still select all rows.
        let pred = Predicate::cmp("Age", CmpOp::Le, 1000).compile(&schema, &dicts).unwrap();
        assert_eq!(pred.evaluate(&p).count_ones(), 4);
        let pred = Predicate::cmp("Age", CmpOp::Ge, -5).compile(&schema, &dicts).unwrap();
        assert_eq!(pred.evaluate(&p).count_ones(), 4);
    }

    #[test]
    fn display_round_trips_structure() {
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        assert_eq!(pred.to_string(), "(Age <= 30) AND (Gender = 'F')");
    }
}
