//! The constraint language `C` of forecasting tasks.
//!
//! A [`Predicate`] is any logical expression over dimension values — the
//! exact class the paper allows in `FORECAST … WHERE C` (Eq. 1). Before
//! evaluation a predicate is *compiled* against a table: names resolve to
//! column indices, string literals resolve to dictionary codes, and
//! type/operator compatibility is checked once. The resulting
//! [`CompiledPredicate`] evaluates vectorized into a [`Bitmask`] and can be
//! shared across partitions and samples of the same table.

use crate::bitmask::Bitmask;
use crate::column::{Dictionary, DimensionColumn};
use crate::error::StorageError;
use crate::partition::Partition;
use crate::schema::Schema;
use crate::simd::KernelSet;
use crate::stats::ZoneMaps;
use crate::types::{DataType, Value};
use std::fmt;

/// Comparison operators supported in constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }

    #[inline]
    pub(crate) fn apply(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// IEEE-754 comparison, exactly Rust's `PartialOrd` on `f64`: every
    /// operator except `!=` is false when either side is NaN, `!=` is then
    /// true; `-0.0 == 0.0`.
    #[inline]
    pub fn apply_f64(self, lhs: f64, rhs: f64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

/// An unbound constraint over dimension names, e.g.
/// `Age <= 30 AND Gender = 'F'`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column op literal`.
    Cmp { column: String, op: CmpOp, value: Value },
    /// `column IN (v1, v2, …)`.
    In { column: String, values: Vec<Value> },
    /// Conjunction; empty conjunction is `TRUE`.
    And(Vec<Predicate>),
    /// Disjunction; empty disjunction is `FALSE`.
    Or(Vec<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (select everything).
    True,
}

impl Predicate {
    /// Convenience: `column op value`.
    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Value>) -> Self {
        Predicate::Cmp { column: column.to_string(), op, value: value.into() }
    }

    /// Convenience: equality.
    pub fn eq(column: &str, value: impl Into<Value>) -> Self {
        Predicate::cmp(column, CmpOp::Eq, value)
    }

    /// Convenience: conjunction of two predicates.
    pub fn and(self, other: Predicate) -> Self {
        match self {
            Predicate::And(mut v) => {
                v.push(other);
                Predicate::And(v)
            }
            p => Predicate::And(vec![p, other]),
        }
    }

    /// Compile against a schema + dictionaries, resolving names and codes.
    pub fn compile(
        &self,
        schema: &Schema,
        dicts: &[Option<Dictionary>],
    ) -> Result<CompiledPredicate, StorageError> {
        match self {
            Predicate::True => Ok(CompiledPredicate::Const(true)),
            Predicate::And(children) => {
                let mut compiled = Vec::with_capacity(children.len());
                for c in children {
                    match c.compile(schema, dicts)? {
                        CompiledPredicate::Const(true) => {}
                        CompiledPredicate::Const(false) => {
                            return Ok(CompiledPredicate::Const(false))
                        }
                        other => compiled.push(other),
                    }
                }
                Ok(match compiled.len() {
                    0 => CompiledPredicate::Const(true),
                    1 => compiled.pop().expect("len checked"),
                    _ => CompiledPredicate::And(compiled),
                })
            }
            Predicate::Or(children) => {
                let mut compiled = Vec::with_capacity(children.len());
                for c in children {
                    match c.compile(schema, dicts)? {
                        CompiledPredicate::Const(false) => {}
                        CompiledPredicate::Const(true) => {
                            return Ok(CompiledPredicate::Const(true))
                        }
                        other => compiled.push(other),
                    }
                }
                Ok(match compiled.len() {
                    0 => CompiledPredicate::Const(false),
                    1 => compiled.pop().expect("len checked"),
                    _ => CompiledPredicate::Or(compiled),
                })
            }
            Predicate::Not(child) => Ok(match child.compile(schema, dicts)? {
                CompiledPredicate::Const(b) => CompiledPredicate::Const(!b),
                other => CompiledPredicate::Not(Box::new(other)),
            }),
            Predicate::Cmp { column, op, value } => {
                let dim = schema.dimension_index(column)?;
                let dtype = schema.dimensions()[dim].dtype;
                match (dtype, value) {
                    (DataType::Categorical, Value::Str(s)) => {
                        if !matches!(op, CmpOp::Eq | CmpOp::Ne) {
                            return Err(StorageError::UnsupportedOperation(format!(
                                "{} on categorical column {column}",
                                op.symbol()
                            )));
                        }
                        match dicts[dim].as_ref().and_then(|d| d.lookup(s)) {
                            Some(code) => {
                                Ok(CompiledPredicate::Cmp { dim, op: *op, value: i64::from(code) })
                            }
                            // Unseen string: Eq matches nothing, Ne everything.
                            None => Ok(CompiledPredicate::Const(*op == CmpOp::Ne)),
                        }
                    }
                    (DataType::Categorical, Value::Int(v)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "string literal",
                        got: v.to_string(),
                    }),
                    (DataType::Categorical, Value::Float(v)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "string literal",
                        got: v.to_string(),
                    }),
                    // Float columns never dictionary-fold: the literal stays
                    // an IEEE double (integers promote exactly up to 2^53)
                    // and comparison follows strict IEEE semantics — a NaN
                    // literal matches nothing except through `<>`.
                    (DataType::Float64, Value::Float(v)) => {
                        Ok(CompiledPredicate::CmpF64 { dim, op: *op, value: *v })
                    }
                    (DataType::Float64, Value::Int(v)) => {
                        Ok(CompiledPredicate::CmpF64 { dim, op: *op, value: *v as f64 })
                    }
                    (DataType::Float64, Value::Str(s)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "numeric literal",
                        got: format!("'{s}'"),
                    }),
                    (_, Value::Float(v)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "integer literal",
                        got: v.to_string(),
                    }),
                    (_, Value::Int(v)) => Ok(CompiledPredicate::Cmp { dim, op: *op, value: *v }),
                    (_, Value::Str(s)) => Err(StorageError::TypeMismatch {
                        column: column.clone(),
                        expected: "integer literal",
                        got: format!("'{s}'"),
                    }),
                }
            }
            Predicate::In { column, values } => {
                let dim = schema.dimension_index(column)?;
                let dtype = schema.dimensions()[dim].dtype;
                // Float equality is almost never what an IN-list means;
                // require explicit comparisons on float64 dimensions.
                if dtype == DataType::Float64 {
                    return Err(StorageError::UnsupportedOperation(format!(
                        "IN list on float64 column '{column}': exact equality on floating-point \
                         values is unreliable, so IN is rejected at bind time; use explicit \
                         comparisons instead (e.g. {column} >= lo AND {column} <= hi)"
                    )));
                }
                let mut resolved = Vec::with_capacity(values.len());
                for v in values {
                    match (dtype, v) {
                        (DataType::Categorical, Value::Str(s)) => {
                            // Unseen strings simply cannot match; drop them.
                            if let Some(code) = dicts[dim].as_ref().and_then(|d| d.lookup(s)) {
                                resolved.push(i64::from(code));
                            }
                        }
                        (DataType::Categorical, Value::Int(v)) => {
                            return Err(StorageError::TypeMismatch {
                                column: column.clone(),
                                expected: "string literal",
                                got: v.to_string(),
                            })
                        }
                        (DataType::Categorical, Value::Float(v)) => {
                            return Err(StorageError::TypeMismatch {
                                column: column.clone(),
                                expected: "string literal",
                                got: v.to_string(),
                            })
                        }
                        (_, Value::Int(v)) => resolved.push(*v),
                        (_, Value::Float(v)) => {
                            return Err(StorageError::TypeMismatch {
                                column: column.clone(),
                                expected: "integer literal",
                                got: v.to_string(),
                            })
                        }
                        (_, Value::Str(s)) => {
                            return Err(StorageError::TypeMismatch {
                                column: column.clone(),
                                expected: "integer literal",
                                got: format!("'{s}'"),
                            })
                        }
                    }
                }
                if resolved.is_empty() {
                    return Ok(CompiledPredicate::Const(false));
                }
                resolved.sort_unstable();
                resolved.dedup();
                let lookup = InLookup::build(&resolved);
                Ok(CompiledPredicate::InSet { dim, values: resolved, lookup })
            }
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { column, op, value } => {
                write!(f, "{column} {} {value}", op.symbol())
            }
            Predicate::In { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Predicate::And(children) => {
                if children.is_empty() {
                    return write!(f, "TRUE");
                }
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Predicate::Or(children) => {
                if children.is_empty() {
                    return write!(f, "FALSE");
                }
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Predicate::Not(c) => write!(f, "NOT ({c})"),
            Predicate::True => write!(f, "TRUE"),
        }
    }
}

/// Small-domain membership bitset for IN-lists, precomputed once at
/// predicate compile time. Covers the contiguous value span
/// `[offset, offset + 64·bits.len())`; membership is two shifts and a
/// bounds check instead of a binary search per row.
#[derive(Debug, Clone, PartialEq)]
pub struct InLookup {
    offset: i64,
    bits: Vec<u64>,
}

impl InLookup {
    /// Largest value span worth materializing: 64 Ki values = 8 KiB of
    /// bits, small enough to stay L1/L2-resident during a scan. `UInt8`
    /// and dictionary-coded columns are always under this.
    const MAX_SPAN: i64 = 64 * 1024;

    /// Build from a sorted, deduplicated value list; `None` when the span
    /// is too wide (evaluation then falls back to binary search).
    pub(crate) fn build(values: &[i64]) -> Option<InLookup> {
        let (&lo, &hi) = (values.first()?, values.last()?);
        let span = hi.checked_sub(lo)?.checked_add(1)?;
        if span > Self::MAX_SPAN {
            return None;
        }
        let mut bits = vec![0u64; (span as usize).div_ceil(64)];
        for &v in values {
            let d = (v - lo) as usize;
            bits[d / 64] |= 1 << (d % 64);
        }
        Some(InLookup { offset: lo, bits })
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, x: i64) -> bool {
        // Wrapping keeps the true difference for any (x, offset) pair once
        // reinterpreted as u64; out-of-span values fail the range check.
        let d = x.wrapping_sub(self.offset) as u64;
        d < self.bits.len() as u64 * 64 && (self.bits[(d / 64) as usize] >> (d % 64)) & 1 == 1
    }

    /// First value of the covered span (the bit index of value `v` is
    /// `v - offset`). For the crate's SIMD membership kernels.
    #[inline]
    pub(crate) fn offset(&self) -> i64 {
        self.offset
    }

    /// The packed membership bitset, 64 values per word.
    #[inline]
    pub(crate) fn bits(&self) -> &[u64] {
        &self.bits
    }
}

/// Word-at-a-time IN-list membership through the lookup bitset: the
/// **portable** tier of the membership kernel dispatch in [`crate::simd`];
/// the AVX2/AVX-512 tiers replace it with table-shuffle / gather probes.
pub(crate) fn in_lookup_kernel<T: Copy + Into<i64>>(
    data: &[T],
    lookup: &InLookup,
    mask: &mut Bitmask,
) {
    fill_mask(data, mask, |x| lookup.contains(x.into()))
}

/// Pool of reusable [`Bitmask`] buffers threaded through predicate
/// evaluation. AND/OR/NOT trees borrow child masks from the pool and
/// return them when combined, so evaluating a predicate over many
/// partitions of similar size performs no allocation after the first.
#[derive(Debug, Default)]
pub struct MaskScratch {
    pool: Vec<Bitmask>,
}

impl MaskScratch {
    pub fn new() -> Self {
        MaskScratch::default()
    }

    /// An all-zero mask over `len` rows, reusing a pooled buffer when one
    /// is available.
    pub fn acquire_zeros(&mut self, len: usize) -> Bitmask {
        match self.pool.pop() {
            Some(mut m) => {
                m.reset_zeros(len);
                m
            }
            None => Bitmask::zeros(len),
        }
    }

    /// A mask over `len` rows whose words are garbage until written — for
    /// kernels that overwrite every word, which would make the zeroing of
    /// [`MaskScratch::acquire_zeros`] a wasted memset.
    fn acquire_for_overwrite(&mut self, len: usize) -> Bitmask {
        match self.pool.pop() {
            Some(mut m) => {
                m.reset_for_overwrite(len);
                m
            }
            None => Bitmask::zeros(len),
        }
    }

    /// Return a mask's buffer to the pool for later reuse.
    pub fn release(&mut self, mask: Bitmask) {
        // A predicate tree holds at most depth-many masks live at once;
        // a small cap keeps pathological trees from hoarding memory.
        if self.pool.len() < 32 {
            self.pool.push(mask);
        }
    }
}

/// A predicate bound to a concrete table: names resolved to dimension
/// indices, strings resolved to dictionary codes.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledPredicate {
    Cmp {
        dim: usize,
        op: CmpOp,
        value: i64,
    },
    /// Comparison against a float64 dimension. Kept separate from `Cmp` so
    /// integer predicates never pay a float-path branch: the literal stays
    /// an IEEE double and evaluation follows strict IEEE semantics (NaN
    /// rows match only `<>`; `-0.0 = 0.0`).
    CmpF64 {
        dim: usize,
        op: CmpOp,
        value: f64,
    },
    InSet {
        dim: usize,
        values: Vec<i64>,
        lookup: Option<InLookup>,
    },
    And(Vec<CompiledPredicate>),
    Or(Vec<CompiledPredicate>),
    Not(Box<CompiledPredicate>),
    Const(bool),
}

impl CompiledPredicate {
    /// Evaluate over every row of `partition`, producing a selection mask.
    ///
    /// Convenience wrapper over [`CompiledPredicate::evaluate_into`] with a
    /// throwaway scratch; hot paths that visit many partitions should hold
    /// a [`MaskScratch`] and call `evaluate_into` to amortize allocations.
    pub fn evaluate(&self, partition: &Partition) -> Bitmask {
        self.evaluate_into(partition, &mut MaskScratch::new())
    }

    /// Evaluate over every row of `partition`, drawing all mask buffers
    /// (the result included) from `scratch`. Callers may hand the returned
    /// mask back via [`MaskScratch::release`] once consumed. Comparison
    /// leaves run on the process-wide dispatched kernel tier
    /// ([`crate::simd::active`]).
    pub fn evaluate_into(&self, partition: &Partition, scratch: &mut MaskScratch) -> Bitmask {
        self.evaluate_into_with(partition, scratch, crate::simd::active())
    }

    /// [`CompiledPredicate::evaluate_into`] with an explicit kernel tier —
    /// the hook the kernel-equivalence suite and the bench harness use to
    /// pit tiers against each other on identical inputs.
    pub fn evaluate_into_with(
        &self,
        partition: &Partition,
        scratch: &mut MaskScratch,
        kernels: &KernelSet,
    ) -> Bitmask {
        let n = partition.num_rows();
        match self {
            CompiledPredicate::Const(true) => {
                let mut mask = scratch.acquire_for_overwrite(n);
                mask.fill_ones();
                mask
            }
            CompiledPredicate::Const(false) => scratch.acquire_zeros(n),
            CompiledPredicate::Cmp { dim, op, value } => {
                let mut mask = scratch.acquire_for_overwrite(n);
                eval_cmp_into(kernels, partition.dim(*dim), *op, *value, &mut mask);
                mask
            }
            CompiledPredicate::CmpF64 { dim, op, value } => {
                let mut mask = scratch.acquire_for_overwrite(n);
                eval_cmp_f64_into(kernels, partition.dim(*dim), *op, *value, &mut mask);
                mask
            }
            CompiledPredicate::InSet { dim, values, lookup } => {
                let mut mask = scratch.acquire_for_overwrite(n);
                eval_in_into(kernels, partition.dim(*dim), values, lookup.as_ref(), &mut mask);
                mask
            }
            CompiledPredicate::And(children) => {
                let mut mask = children[0].evaluate_into_with(partition, scratch, kernels);
                for c in &children[1..] {
                    if !mask.any_set() {
                        break;
                    }
                    let child = c.evaluate_into_with(partition, scratch, kernels);
                    mask.and_inplace(&child);
                    scratch.release(child);
                }
                mask
            }
            CompiledPredicate::Or(children) => {
                let mut mask = children[0].evaluate_into_with(partition, scratch, kernels);
                for c in &children[1..] {
                    let child = c.evaluate_into_with(partition, scratch, kernels);
                    mask.or_inplace(&child);
                    scratch.release(child);
                }
                mask
            }
            CompiledPredicate::Not(child) => {
                let mut mask = child.evaluate_into_with(partition, scratch, kernels);
                mask.not_inplace();
                mask
            }
        }
    }

    /// Evaluate for a single row (used by row-at-a-time consumers such as
    /// stratified samplers).
    pub fn matches_row(&self, partition: &Partition, row: usize) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::Cmp { dim, op, value } => match partition.dim(*dim) {
                // Direct-constructed integer predicates against a float
                // column compare by value, not by the bit pattern that
                // `get_i64` would hand back.
                DimensionColumn::Float64(v) => op.apply_f64(v[row], *value as f64),
                col => op.apply(col.get_i64(row), *value),
            },
            CompiledPredicate::CmpF64 { dim, op, value } => {
                op.apply_f64(partition.dim(*dim).get_f64(row), *value)
            }
            CompiledPredicate::InSet { dim, values, .. } => match partition.dim(*dim) {
                DimensionColumn::Float64(v) => {
                    let x = v[row];
                    values.iter().any(|&w| x == w as f64)
                }
                col => values.binary_search(&col.get_i64(row)).is_ok(),
            },
            CompiledPredicate::And(children) => {
                children.iter().all(|c| c.matches_row(partition, row))
            }
            CompiledPredicate::Or(children) => {
                children.iter().any(|c| c.matches_row(partition, row))
            }
            CompiledPredicate::Not(child) => !child.matches_row(partition, row),
        }
    }

    /// Conservative zone-map check: returns `false` only if the partition
    /// provably contains no matching row.
    pub fn may_match(&self, zone_maps: &ZoneMaps) -> bool {
        match self {
            CompiledPredicate::Const(b) => *b,
            CompiledPredicate::Cmp { dim, op, value } => match zone_maps.range(*dim) {
                None => true,
                Some((lo, hi)) => match op {
                    CmpOp::Eq => (lo..=hi).contains(value),
                    CmpOp::Ne => !(lo == hi && lo == *value),
                    CmpOp::Lt => lo < *value,
                    CmpOp::Le => lo <= *value,
                    CmpOp::Gt => hi > *value,
                    CmpOp::Ge => hi >= *value,
                },
            },
            CompiledPredicate::CmpF64 { dim, op, value } => match zone_maps.float_range(*dim) {
                None => true,
                Some((lo, hi, has_nan)) => {
                    if value.is_nan() {
                        // `x <> NaN` is true for every x; all other
                        // operators are false for every x.
                        *op == CmpOp::Ne
                    } else {
                        match op {
                            // `lo > hi` encodes an all-NaN column: Eq/range
                            // checks fail it naturally, Ne stays alive via
                            // `has_nan`.
                            CmpOp::Eq => (lo..=hi).contains(value),
                            CmpOp::Ne => has_nan || !(lo == hi && lo == *value),
                            CmpOp::Lt => lo < *value,
                            CmpOp::Le => lo <= *value,
                            CmpOp::Gt => hi > *value,
                            CmpOp::Ge => hi >= *value,
                        }
                    }
                }
            },
            CompiledPredicate::InSet { dim, values, .. } => match zone_maps.range(*dim) {
                None => true,
                Some((lo, hi)) => values.iter().any(|v| (lo..=hi).contains(v)),
            },
            CompiledPredicate::And(children) => children.iter().all(|c| c.may_match(zone_maps)),
            CompiledPredicate::Or(children) => children.iter().any(|c| c.may_match(zone_maps)),
            // NOT over an approximate summary cannot prove emptiness.
            CompiledPredicate::Not(_) => true,
        }
    }
}

/// Pack per-row predicate results into mask words 64 rows at a time:
/// `word |= (pred as u64) << bit`, no per-row branch and no per-row bounds
/// check, so comparisons over primitive slices autovectorize.
#[inline]
fn fill_mask<T: Copy>(data: &[T], mask: &mut Bitmask, f: impl Fn(T) -> bool) {
    debug_assert_eq!(data.len(), mask.len());
    let words = mask.words_mut();
    let mut chunks = data.chunks_exact(64);
    let mut wi = 0;
    for chunk in chunks.by_ref() {
        let mut w = 0u64;
        for (bit, &x) in chunk.iter().enumerate() {
            w |= (f(x) as u64) << bit;
        }
        words[wi] = w;
        wi += 1;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = 0u64;
        for (bit, &x) in rem.iter().enumerate() {
            w |= (f(x) as u64) << bit;
        }
        words[wi] = w;
    }
}

/// Monomorphized word-at-a-time comparison kernel: the operator is
/// resolved once, then a single branchless [`fill_mask`] pass builds the
/// words. This is the **portable** tier of the kernel dispatch in
/// [`crate::simd`]; the SIMD tiers replace it with explicit
/// compare+movemask loops.
pub(crate) fn cmp_kernel<T: Copy + PartialOrd>(data: &[T], op: CmpOp, rhs: T, mask: &mut Bitmask) {
    match op {
        CmpOp::Eq => fill_mask(data, mask, |x| x == rhs),
        CmpOp::Ne => fill_mask(data, mask, |x| x != rhs),
        CmpOp::Lt => fill_mask(data, mask, |x| x < rhs),
        CmpOp::Le => fill_mask(data, mask, |x| x <= rhs),
        CmpOp::Gt => fill_mask(data, mask, |x| x > rhs),
        CmpOp::Ge => fill_mask(data, mask, |x| x >= rhs),
    }
}

/// Whether `col op value` matches every row when `value` is outside the
/// column representation's range (`above` = beyond its max, else below 0).
/// The alternative — per-row comparison in widened i64 space — would cost
/// the narrow types their vectorized loop for a literal that cannot
/// discriminate between rows anyway.
pub(crate) fn out_of_range_matches_all(op: CmpOp, above: bool) -> bool {
    match op {
        CmpOp::Eq => false,
        CmpOp::Ne => true,
        CmpOp::Lt | CmpOp::Le => above,
        CmpOp::Gt | CmpOp::Ge => !above,
    }
}

/// Evaluate `col op value` into `mask` through the given kernel tier, per
/// column representation. Every word of `mask` is written (the buffer may
/// arrive with garbage words).
fn eval_cmp_into(
    kernels: &KernelSet,
    col: &DimensionColumn,
    op: CmpOp,
    value: i64,
    mask: &mut Bitmask,
) {
    macro_rules! narrow {
        ($v:expr, $t:ty, $cmp:ident) => {{
            match <$t>::try_from(value) {
                Ok(rhs) => kernels.$cmp($v, op, rhs, mask),
                Err(_) => {
                    if out_of_range_matches_all(op, value > 0) {
                        mask.fill_ones();
                    } else {
                        mask.fill_zeros();
                    }
                }
            }
        }};
    }
    match col {
        DimensionColumn::UInt8(v) => narrow!(v, u8, cmp_u8),
        DimensionColumn::UInt16(v) => narrow!(v, u16, cmp_u16),
        DimensionColumn::Dict(v) => narrow!(v, u32, cmp_u32),
        DimensionColumn::Int64(v) => kernels.cmp_i64(v, op, value, mask),
        // Direct-constructed integer predicate against a float column:
        // promote the literal (exact up to 2^53) and compare by value.
        DimensionColumn::Float64(v) => kernels.cmp_f64(v, op, value as f64, mask),
    }
}

/// Evaluate `col op value` for a float literal. Compilation only ever
/// pairs `CmpF64` with float64 columns; for a hand-built predicate against
/// an integer column the rows widen to f64 (exact — every representable
/// narrow/dict value and every i64 up to 2^53 round-trips).
fn eval_cmp_f64_into(
    kernels: &KernelSet,
    col: &DimensionColumn,
    op: CmpOp,
    value: f64,
    mask: &mut Bitmask,
) {
    match col {
        DimensionColumn::Float64(v) => kernels.cmp_f64(v, op, value, mask),
        DimensionColumn::UInt8(v) => fill_mask(v, mask, |x| op.apply_f64(f64::from(x), value)),
        DimensionColumn::UInt16(v) => fill_mask(v, mask, |x| op.apply_f64(f64::from(x), value)),
        DimensionColumn::Dict(v) => fill_mask(v, mask, |x| op.apply_f64(f64::from(x), value)),
        DimensionColumn::Int64(v) => fill_mask(v, mask, |x| op.apply_f64(x as f64, value)),
    }
}

/// Evaluate `col IN (values)` into `mask`. With a compile-time lookup
/// bitset the membership probe dispatches through the kernel tier (table
/// shuffles / gathers on the SIMD tiers); the wide-span fallback is a
/// packed binary-search scan.
fn eval_in_into(
    kernels: &KernelSet,
    col: &DimensionColumn,
    values: &[i64],
    lookup: Option<&InLookup>,
    mask: &mut Bitmask,
) {
    macro_rules! scan {
        ($v:expr, $in_kernel:ident) => {{
            match lookup {
                Some(l) => kernels.$in_kernel($v, l, mask),
                None => fill_mask($v, mask, |x| values.binary_search(&i64::from(x)).is_ok()),
            }
        }};
    }
    match col {
        DimensionColumn::UInt8(v) => scan!(v, in_u8),
        DimensionColumn::UInt16(v) => scan!(v, in_u16),
        DimensionColumn::Dict(v) => scan!(v, in_u32),
        DimensionColumn::Int64(v) => scan!(v, in_i64),
        // Compilation rejects IN on float64; a hand-built set compares by
        // promoted value so the bit-pattern accessor never leaks through.
        DimensionColumn::Float64(v) => {
            fill_mask(v, mask, |x| values.iter().any(|&w| x == w as f64))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn setup() -> (Schema, Vec<Option<Dictionary>>, Partition) {
        let schema = Schema::from_names(
            &[("Age", DataType::UInt8), ("Gender", DataType::Categorical)],
            &["Impression"],
        )
        .unwrap();
        let mut dicts: Vec<Option<Dictionary>> = vec![None, None];
        let mut p = Partition::empty(&schema);
        // Rows of Fig. 1 (minus Location).
        for (age, g, imp) in [(30, "F", 5.0), (60, "M", 1.0), (20, "F", 10.0), (40, "M", 20.0)] {
            p.push_row(&schema, &mut dicts, &[Value::Int(age), Value::from(g)], &[imp]).unwrap();
        }
        (schema, dicts, p)
    }

    #[test]
    fn paper_example_constraint() {
        // Age <= 30 AND Gender = 'F' matches rows 0 and 2 (Fig. 1 yellow).
        let (schema, dicts, p) = setup();
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        let compiled = pred.compile(&schema, &dicts).unwrap();
        let mask = compiled.evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn in_list_on_float64_names_column_and_reason() {
        let schema = Schema::from_names(&[("score", DataType::Float64)], &["Impression"]).unwrap();
        let dicts: Vec<Option<Dictionary>> = vec![None];
        let pred =
            Predicate::In { column: "score".into(), values: vec![Value::Int(1), Value::Int(2)] };
        let msg = pred.compile(&schema, &dicts).unwrap_err().to_string();
        assert_eq!(
            msg,
            "unsupported operation: IN list on float64 column 'score': exact equality on \
             floating-point values is unreliable, so IN is rejected at bind time; use explicit \
             comparisons instead (e.g. score >= lo AND score <= hi)"
        );
    }

    #[test]
    fn or_and_not() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::Or(vec![
            Predicate::cmp("Age", CmpOp::Ge, 60),
            Predicate::cmp("Age", CmpOp::Lt, 25),
        ]);
        let mask = pred.compile(&schema, &dicts).unwrap().evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![1, 2]);

        let pred = Predicate::Not(Box::new(Predicate::eq("Gender", "F")));
        let mask = pred.compile(&schema, &dicts).unwrap().evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn in_set() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::In {
            column: "Age".to_string(),
            values: vec![Value::Int(20), Value::Int(60), Value::Int(99)],
        };
        let mask = pred.compile(&schema, &dicts).unwrap().evaluate(&p);
        assert_eq!(mask.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn unseen_string_folds_to_constant() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::eq("Gender", "X");
        let compiled = pred.compile(&schema, &dicts).unwrap();
        assert_eq!(compiled, CompiledPredicate::Const(false));
        assert_eq!(compiled.evaluate(&p).count_ones(), 0);

        let pred = Predicate::cmp("Gender", CmpOp::Ne, "X");
        let compiled = pred.compile(&schema, &dicts).unwrap();
        assert_eq!(compiled, CompiledPredicate::Const(true));
    }

    #[test]
    fn range_on_categorical_rejected() {
        let (schema, dicts, _) = setup();
        let pred = Predicate::cmp("Gender", CmpOp::Lt, "F");
        assert!(pred.compile(&schema, &dicts).is_err());
    }

    #[test]
    fn type_mismatch_rejected() {
        let (schema, dicts, _) = setup();
        assert!(Predicate::eq("Age", "thirty").compile(&schema, &dicts).is_err());
        assert!(Predicate::eq("Gender", 1).compile(&schema, &dicts).is_err());
        assert!(Predicate::eq("Nope", 1).compile(&schema, &dicts).is_err());
    }

    #[test]
    fn matches_row_agrees_with_evaluate() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        let compiled = pred.compile(&schema, &dicts).unwrap();
        let mask = compiled.evaluate(&p);
        for i in 0..p.num_rows() {
            assert_eq!(mask.get(i), compiled.matches_row(&p, i));
        }
    }

    #[test]
    fn zone_map_pruning() {
        let (schema, dicts, p) = setup();
        // Ages span [20, 60]; Age > 100 cannot match.
        let pred = Predicate::cmp("Age", CmpOp::Gt, 100).compile(&schema, &dicts).unwrap();
        assert!(!pred.may_match(p.zone_maps()));
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).compile(&schema, &dicts).unwrap();
        assert!(pred.may_match(p.zone_maps()));
        // NOT is conservative.
        let pred = Predicate::Not(Box::new(Predicate::cmp("Age", CmpOp::Le, 100)))
            .compile(&schema, &dicts)
            .unwrap();
        assert!(pred.may_match(p.zone_maps()));
    }

    #[test]
    fn literal_outside_narrow_type_range() {
        let (schema, dicts, p) = setup();
        // 1000 does not fit u8 but `Age <= 1000` must still select all rows.
        let pred = Predicate::cmp("Age", CmpOp::Le, 1000).compile(&schema, &dicts).unwrap();
        assert_eq!(pred.evaluate(&p).count_ones(), 4);
        let pred = Predicate::cmp("Age", CmpOp::Ge, -5).compile(&schema, &dicts).unwrap();
        assert_eq!(pred.evaluate(&p).count_ones(), 4);
    }

    #[test]
    fn scratch_reuse_matches_fresh_evaluate() {
        let (schema, dicts, p) = setup();
        let pred = Predicate::Or(vec![
            Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F")),
            Predicate::Not(Box::new(Predicate::cmp("Age", CmpOp::Lt, 60))),
        ])
        .compile(&schema, &dicts)
        .unwrap();
        let mut scratch = MaskScratch::new();
        for _ in 0..3 {
            let mask = pred.evaluate_into(&p, &mut scratch);
            assert_eq!(mask, pred.evaluate(&p));
            scratch.release(mask);
        }
    }

    #[test]
    fn in_lookup_small_and_wide_domains() {
        let small = InLookup::build(&[-3, 0, 7]).unwrap();
        assert!(small.contains(-3) && small.contains(0) && small.contains(7));
        assert!(!small.contains(-4) && !small.contains(1) && !small.contains(8));
        assert!(!small.contains(i64::MIN) && !small.contains(i64::MAX));
        // Span too wide (or overflowing) falls back to binary search.
        assert!(InLookup::build(&[0, InLookup::MAX_SPAN]).is_none());
        assert!(InLookup::build(&[i64::MIN, i64::MAX]).is_none());
        // Compiled IN over a narrow column gets a lookup.
        let (schema, dicts, p) = setup();
        let pred = Predicate::In {
            column: "Age".to_string(),
            values: vec![Value::Int(20), Value::Int(60)],
        }
        .compile(&schema, &dicts)
        .unwrap();
        match &pred {
            CompiledPredicate::InSet { lookup, .. } => assert!(lookup.is_some()),
            other => panic!("expected InSet, got {other:?}"),
        }
        assert_eq!(pred.evaluate(&p).iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn display_round_trips_structure() {
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        assert_eq!(pred.to_string(), "(Age <= 30) AND (Gender = 'F')");
    }
}
