//! # flashp-storage
//!
//! Columnar, time-partitioned storage for time series of relational data —
//! the substrate FlashP (VLDB 2021) runs on.
//!
//! A [`TimeSeriesTable`] models the paper's relation
//! `T(a(1), …, a(da); m(1), …, m(dm); t)`: every row belongs to exactly one
//! time partition `t`, carries dimension values used for filtering and
//! measure values that are aggregated and forecast. Partitioning by time is
//! what lets the 91 per-day aggregation queries of Fig. 2 be answered with a
//! single pass, and what lets samples be drawn and maintained per partition.
//!
//! The crate provides:
//! * compact dimension columns ([`mod@column`]) with dictionary encoding for
//!   strings,
//! * a predicate language ([`predicate`]) matching the constraint class `C`
//!   of the paper (any logical expression over dimension values),
//! * vectorized predicate evaluation into [`bitmask::Bitmask`]es, running
//!   on runtime-dispatched kernel tiers ([`simd`]: AVX-512 → AVX2 → SSE2 →
//!   portable word-at-a-time, selected once at startup), including SIMD
//!   IN-list membership and `f64` comparison kernels,
//! * SUM / COUNT / AVG aggregation ([`aggregate`]) per partition and over
//!   time ranges, with parallel partition scans ([`scan`]),
//! * zone-map statistics ([`stats`]) for partition pruning,
//! * calendar-aware [`timestamp::Timestamp`]s (`YYYYMMDD` literal support).

pub mod aggregate;
pub mod bitmask;
pub mod column;
pub mod error;
pub mod parallel;
pub mod partition;
pub mod predicate;
pub mod reference;
pub mod scan;
pub mod schema;
pub mod simd;
pub mod stats;
pub mod table;
pub mod timestamp;
pub mod types;

pub use aggregate::{
    aggregate_filtered, aggregate_filtered_f64_with, aggregate_filtered_with, AggFunc, AggState,
};
pub use bitmask::Bitmask;
pub use column::{Dictionary, DimensionColumn};
pub use error::StorageError;
pub use partition::{Partition, PartitionBuilder};
pub use predicate::{CmpOp, CompiledPredicate, InLookup, MaskScratch, Predicate};
pub use scan::{
    aggregate_range, aggregate_states_range, aggregate_total, selectivity_range, ScanOptions,
    SumMode,
};
pub use schema::{DimensionDef, MeasureDef, Schema, SchemaRef};
pub use simd::{KernelSet, KernelTier};
pub use table::{eval_partition_with, TimeSeriesTable};
pub use timestamp::{Date, Timestamp};
pub use types::{DataType, Value};
