//! Columnar storage for dimension values.
//!
//! Numeric dimensions are stored in tightly packed vectors; categorical
//! dimensions are dictionary-encoded with the dictionary owned at the table
//! level (shared across partitions) so that a string predicate is resolved
//! to a code once per query rather than once per row.

use crate::error::StorageError;
use crate::types::{DataType, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Dictionary mapping strings to dense `u32` codes for one categorical
/// column. Shared across all partitions of a table. The string storage is
/// `Arc<str>` shared between the code-indexed vector and the hash index,
/// so interning an unseen value costs one allocation and a hit costs none.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    values: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
}

impl Dictionary {
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Code for `value`, inserting it if unseen.
    pub fn intern(&mut self, value: &str) -> u32 {
        if let Some(&code) = self.index.get(value) {
            return code;
        }
        let code = self.values.len() as u32;
        let shared: Arc<str> = Arc::from(value);
        self.values.push(shared.clone());
        self.index.insert(shared, code);
        code
    }

    /// Code for `value` if present (read-only lookup for predicates).
    pub fn lookup(&self, value: &str) -> Option<u32> {
        self.index.get(value).copied()
    }

    /// String for `code`.
    pub fn value(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(|s| &**s)
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Shared dictionary handle; `None` slots in a table's dictionary vector
/// correspond to non-categorical dimensions.
pub type DictionaryRef = Arc<Dictionary>;

/// One dimension column within a partition.
#[derive(Debug, Clone, PartialEq)]
pub enum DimensionColumn {
    UInt8(Vec<u8>),
    UInt16(Vec<u16>),
    Int64(Vec<i64>),
    /// IEEE-754 doubles. Compared with exact IEEE semantics (NaN-exact).
    Float64(Vec<f64>),
    /// Dictionary codes; the dictionary itself lives on the table.
    Dict(Vec<u32>),
}

impl DimensionColumn {
    /// Create an empty column of the given type.
    pub fn new(dtype: DataType) -> Self {
        match dtype {
            DataType::UInt8 => DimensionColumn::UInt8(Vec::new()),
            DataType::UInt16 => DimensionColumn::UInt16(Vec::new()),
            DataType::Int64 => DimensionColumn::Int64(Vec::new()),
            DataType::Float64 => DimensionColumn::Float64(Vec::new()),
            DataType::Categorical => DimensionColumn::Dict(Vec::new()),
        }
    }

    /// Create an empty column with room for `capacity` rows.
    pub fn with_capacity(dtype: DataType, capacity: usize) -> Self {
        match dtype {
            DataType::UInt8 => DimensionColumn::UInt8(Vec::with_capacity(capacity)),
            DataType::UInt16 => DimensionColumn::UInt16(Vec::with_capacity(capacity)),
            DataType::Int64 => DimensionColumn::Int64(Vec::with_capacity(capacity)),
            DataType::Float64 => DimensionColumn::Float64(Vec::with_capacity(capacity)),
            DataType::Categorical => DimensionColumn::Dict(Vec::with_capacity(capacity)),
        }
    }

    /// The column's logical type.
    pub fn dtype(&self) -> DataType {
        match self {
            DimensionColumn::UInt8(_) => DataType::UInt8,
            DimensionColumn::UInt16(_) => DataType::UInt16,
            DimensionColumn::Int64(_) => DataType::Int64,
            DimensionColumn::Float64(_) => DataType::Float64,
            DimensionColumn::Dict(_) => DataType::Categorical,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            DimensionColumn::UInt8(v) => v.len(),
            DimensionColumn::UInt16(v) => v.len(),
            DimensionColumn::Int64(v) => v.len(),
            DimensionColumn::Float64(v) => v.len(),
            DimensionColumn::Dict(v) => v.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a numeric value, checking range for narrow types.
    pub fn push_int(&mut self, name: &str, v: i64) -> Result<(), StorageError> {
        match self {
            DimensionColumn::UInt8(col) => {
                let v = u8::try_from(v).map_err(|_| StorageError::TypeMismatch {
                    column: name.to_string(),
                    expected: "uint8",
                    got: v.to_string(),
                })?;
                col.push(v);
            }
            DimensionColumn::UInt16(col) => {
                let v = u16::try_from(v).map_err(|_| StorageError::TypeMismatch {
                    column: name.to_string(),
                    expected: "uint16",
                    got: v.to_string(),
                })?;
                col.push(v);
            }
            DimensionColumn::Int64(col) => col.push(v),
            // Integer literals ingest into float columns exactly for
            // |v| < 2^53 (the common case for ids, counts, dates).
            DimensionColumn::Float64(col) => col.push(v as f64),
            DimensionColumn::Dict(_) => {
                return Err(StorageError::TypeMismatch {
                    column: name.to_string(),
                    expected: "categorical",
                    got: v.to_string(),
                })
            }
        }
        Ok(())
    }

    /// Append a pre-interned dictionary code.
    pub fn push_code(&mut self, name: &str, code: u32) -> Result<(), StorageError> {
        match self {
            DimensionColumn::Dict(col) => {
                col.push(code);
                Ok(())
            }
            other => Err(StorageError::TypeMismatch {
                column: name.to_string(),
                expected: "numeric",
                got: format!("code {} into {}", code, other.dtype()),
            }),
        }
    }

    /// Append an IEEE double. Only float columns accept floats — a
    /// float into an integer column is a type error (no silent rounding).
    pub fn push_float(&mut self, name: &str, v: f64) -> Result<(), StorageError> {
        match self {
            DimensionColumn::Float64(col) => {
                col.push(v);
                Ok(())
            }
            other => Err(StorageError::TypeMismatch {
                column: name.to_string(),
                expected: "float64",
                got: format!("{} into {}", v, other.dtype()),
            }),
        }
    }

    /// Numeric value of row `i` widened to `i64` (codes for dict columns).
    ///
    /// For [`DimensionColumn::Float64`] this returns the raw IEEE bit
    /// pattern (`f64::to_bits as i64`) — an opaque, exactly
    /// round-trippable row key, **not** a value-ordered integer. Bulk
    /// re-materialization ([`crate::partition::PartitionBuilder`]) inverts
    /// it; value semantics (comparisons, stats) go through
    /// [`DimensionColumn::get_f64`].
    #[inline]
    pub fn get_i64(&self, i: usize) -> i64 {
        match self {
            DimensionColumn::UInt8(v) => i64::from(v[i]),
            DimensionColumn::UInt16(v) => i64::from(v[i]),
            DimensionColumn::Int64(v) => v[i],
            DimensionColumn::Float64(v) => v[i].to_bits() as i64,
            DimensionColumn::Dict(v) => i64::from(v[i]),
        }
    }

    /// Value of row `i` as an IEEE double: native for float columns,
    /// widened for integer and dictionary-code columns.
    #[inline]
    pub fn get_f64(&self, i: usize) -> f64 {
        match self {
            DimensionColumn::UInt8(v) => f64::from(v[i]),
            DimensionColumn::UInt16(v) => f64::from(v[i]),
            DimensionColumn::Int64(v) => v[i] as f64,
            DimensionColumn::Float64(v) => v[i],
            DimensionColumn::Dict(v) => f64::from(v[i]),
        }
    }

    /// Render row `i` using the dictionary where needed.
    pub fn display_value(&self, i: usize, dict: Option<&Dictionary>) -> Value {
        match self {
            DimensionColumn::Dict(v) => {
                let code = v[i];
                match dict.and_then(|d| d.value(code)) {
                    Some(s) => Value::Str(s.to_string()),
                    None => Value::Int(i64::from(code)),
                }
            }
            DimensionColumn::Float64(v) => Value::Float(v[i]),
            _ => Value::Int(self.get_i64(i)),
        }
    }

    /// Approximate heap footprint in bytes (for space-cost experiments).
    pub fn byte_size(&self) -> usize {
        match self {
            DimensionColumn::UInt8(v) => v.len(),
            DimensionColumn::UInt16(v) => v.len() * 2,
            DimensionColumn::Int64(v) => v.len() * 8,
            DimensionColumn::Float64(v) => v.len() * 8,
            DimensionColumn::Dict(v) => v.len() * 4,
        }
    }

    /// Append every row of `other` (which must have the same dtype) —
    /// the columnar merge behind late-arriving partition ingest.
    pub fn extend_from(&mut self, name: &str, other: &DimensionColumn) -> Result<(), StorageError> {
        match (self, other) {
            (DimensionColumn::UInt8(a), DimensionColumn::UInt8(b)) => a.extend_from_slice(b),
            (DimensionColumn::UInt16(a), DimensionColumn::UInt16(b)) => a.extend_from_slice(b),
            (DimensionColumn::Int64(a), DimensionColumn::Int64(b)) => a.extend_from_slice(b),
            (DimensionColumn::Float64(a), DimensionColumn::Float64(b)) => a.extend_from_slice(b),
            (DimensionColumn::Dict(a), DimensionColumn::Dict(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(StorageError::TypeMismatch {
                    column: name.to_string(),
                    expected: "matching column type",
                    got: format!("{} appended to {}", b.dtype(), a.dtype()),
                })
            }
        }
        Ok(())
    }

    /// Gather rows at `indices` into a new column (used when materializing
    /// samples).
    pub fn gather(&self, indices: &[usize]) -> DimensionColumn {
        match self {
            DimensionColumn::UInt8(v) => {
                DimensionColumn::UInt8(indices.iter().map(|&i| v[i]).collect())
            }
            DimensionColumn::UInt16(v) => {
                DimensionColumn::UInt16(indices.iter().map(|&i| v[i]).collect())
            }
            DimensionColumn::Int64(v) => {
                DimensionColumn::Int64(indices.iter().map(|&i| v[i]).collect())
            }
            DimensionColumn::Float64(v) => {
                DimensionColumn::Float64(indices.iter().map(|&i| v[i]).collect())
            }
            DimensionColumn::Dict(v) => {
                DimensionColumn::Dict(indices.iter().map(|&i| v[i]).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_interning() {
        let mut d = Dictionary::new();
        let f = d.intern("F");
        let m = d.intern("M");
        assert_eq!(d.intern("F"), f);
        assert_ne!(f, m);
        assert_eq!(d.lookup("M"), Some(m));
        assert_eq!(d.lookup("X"), None);
        assert_eq!(d.value(f), Some("F"));
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn push_and_get_numeric() {
        let mut c = DimensionColumn::new(DataType::UInt8);
        c.push_int("Age", 30).unwrap();
        c.push_int("Age", 255).unwrap();
        assert!(c.push_int("Age", 256).is_err());
        assert!(c.push_int("Age", -1).is_err());
        assert_eq!(c.len(), 2);
        assert_eq!(c.get_i64(0), 30);
        assert_eq!(c.get_i64(1), 255);
    }

    #[test]
    fn type_confusion_rejected() {
        let mut c = DimensionColumn::new(DataType::Categorical);
        assert!(c.push_int("Gender", 1).is_err());
        c.push_code("Gender", 0).unwrap();
        let mut n = DimensionColumn::new(DataType::Int64);
        assert!(n.push_code("x", 0).is_err());
    }

    #[test]
    fn gather_selects_rows() {
        let mut c = DimensionColumn::new(DataType::Int64);
        for v in [10, 20, 30, 40] {
            c.push_int("x", v).unwrap();
        }
        let g = c.gather(&[3, 1]);
        assert_eq!(g.get_i64(0), 40);
        assert_eq!(g.get_i64(1), 20);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn float_column_round_trips_bits_through_get_i64() {
        let mut c = DimensionColumn::new(DataType::Float64);
        for v in [1.5, -0.0, f64::NAN, f64::INFINITY, 5e-324] {
            c.push_float("score", v).unwrap();
        }
        c.push_int("score", 42).unwrap(); // ints promote exactly
        assert_eq!(c.get_f64(0), 1.5);
        assert_eq!(c.get_f64(5), 42.0);
        assert!(c.get_f64(2).is_nan());
        // get_i64 is the opaque bit pattern and inverts exactly, NaN
        // payload and -0.0 sign included.
        for i in 0..c.len() {
            assert_eq!(f64::from_bits(c.get_i64(i) as u64).to_bits(), c.get_f64(i).to_bits());
        }
        // Floats never silently round into integer columns.
        let mut n = DimensionColumn::new(DataType::Int64);
        assert!(n.push_float("x", 1.5).is_err());
    }

    #[test]
    fn byte_sizes() {
        let mut c = DimensionColumn::new(DataType::UInt16);
        c.push_int("x", 5).unwrap();
        c.push_int("x", 6).unwrap();
        assert_eq!(c.byte_size(), 4);
    }
}
