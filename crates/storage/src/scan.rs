//! Parallel time-range scans: the batched processing of the `t0`
//! aggregation queries of Eq. (4) "with one scan of the data".
//!
//! Per-partition evaluation routes through the runtime-dispatched kernel
//! tier ([`crate::simd::active`]): predicate leaves and the fused
//! single-comparison filter+aggregate run on AVX2 / SSE2 / portable
//! word-at-a-time kernels, selected once at startup.

use crate::aggregate::{AggFunc, AggState};
use crate::error::StorageError;
use crate::parallel::{default_threads, parallel_map_with};
use crate::predicate::{CompiledPredicate, MaskScratch};
use crate::table::{eval_partition_with, TimeSeriesTable};
use crate::timestamp::Timestamp;

/// Float-sum accumulation contract for masked aggregation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SumMode {
    /// Sum matching rows in ascending row order — bit-identical to the
    /// scalar reference on every kernel tier. The default.
    #[default]
    Exact,
    /// Opt-in reassociated horizontal sums (masked vector accumulators on
    /// AVX2/AVX-512). Counts stay exact and results are deterministic for
    /// a given tier, but sums may differ from [`SumMode::Exact`] by
    /// accumulated rounding — and therefore across tiers.
    Fast,
}

impl SumMode {
    /// EXPLAIN spelling (`sum=exact` / `sum=fast`).
    pub fn name(self) -> &'static str {
        match self {
            SumMode::Exact => "exact",
            SumMode::Fast => "fast",
        }
    }
}

/// Options controlling a range scan.
#[derive(Debug, Clone, Copy)]
pub struct ScanOptions {
    /// Worker threads; defaults to [`default_threads`].
    pub threads: usize,
    /// Float-sum accumulation mode; defaults to [`SumMode::Exact`].
    pub sum: SumMode,
}

impl Default for ScanOptions {
    fn default() -> Self {
        ScanOptions { threads: default_threads(), sum: SumMode::default() }
    }
}

/// Compute the aggregate of `measure_idx` under `pred` for every timestamp
/// in `[start, end]` that has a partition, in parallel. This is the exact
/// ("Full", 100 % sampling rate) evaluation path of the paper, and the
/// performance bottleneck FlashP replaces with samples.
pub fn aggregate_range(
    table: &TimeSeriesTable,
    measure_idx: usize,
    pred: &CompiledPredicate,
    func: AggFunc,
    start: Timestamp,
    end: Timestamp,
    options: ScanOptions,
) -> Result<Vec<(Timestamp, f64)>, StorageError> {
    let (parts, states) = scan_states(table, measure_idx, pred, start, end, options)?;
    Ok(parts.iter().zip(states).map(|((t, _), s)| (*t, s.finalize(func))).collect())
}

/// Shared scan body: bounds-check the measure, collect the partitions in
/// range and evaluate each in parallel, one [`MaskScratch`] per worker so
/// every partition a worker scans reuses the same mask buffers.
#[allow(clippy::type_complexity)]
fn scan_states<'a>(
    table: &'a TimeSeriesTable,
    measure_idx: usize,
    pred: &CompiledPredicate,
    start: Timestamp,
    end: Timestamp,
    options: ScanOptions,
) -> Result<(Vec<(Timestamp, &'a crate::partition::Partition)>, Vec<AggState>), StorageError> {
    if measure_idx >= table.schema().num_measures() {
        return Err(StorageError::ColumnIndexOutOfRange {
            index: measure_idx,
            len: table.schema().num_measures(),
        });
    }
    let parts: Vec<(Timestamp, &crate::partition::Partition)> =
        table.partitions_in(start, end).collect();
    let states: Vec<AggState> =
        parallel_map_with(&parts, options.threads, MaskScratch::new, |scratch, (_, p)| {
            eval_partition_with(p, measure_idx, pred, scratch, options.sum)
        });
    Ok((parts, states))
}

/// Per-timestamp aggregate *states* (not finalized values) of
/// `measure_idx` under `pred` for every timestamp in `[start, end]` that
/// has a partition. This is the partial-aggregation entry point for
/// scatter-gather execution: a shard scans its own partitions into
/// [`AggState`]s, and a combiner merges states across shards before
/// finalizing — `AggState::merge` is exact for sums and counts, so
/// merged partials equal a single scan over the union of the rows.
pub fn aggregate_states_range(
    table: &TimeSeriesTable,
    measure_idx: usize,
    pred: &CompiledPredicate,
    start: Timestamp,
    end: Timestamp,
    options: ScanOptions,
) -> Result<Vec<(Timestamp, AggState)>, StorageError> {
    let (parts, states) = scan_states(table, measure_idx, pred, start, end, options)?;
    Ok(parts.iter().zip(states).map(|((t, _), s)| (*t, s)).collect())
}

/// Scalar aggregate of `measure_idx` under `pred` across all partitions in
/// `[start, end]`, merged into one [`AggState`] — the non-grouped SELECT
/// path. Runs the same fused / scratch-reusing per-partition kernels as
/// [`aggregate_range`].
pub fn aggregate_total(
    table: &TimeSeriesTable,
    measure_idx: usize,
    pred: &CompiledPredicate,
    start: Timestamp,
    end: Timestamp,
    options: ScanOptions,
) -> Result<AggState, StorageError> {
    let (_, states) = scan_states(table, measure_idx, pred, start, end, options)?;
    let mut total = AggState::default();
    for s in states {
        total.merge(s);
    }
    Ok(total)
}

/// Per-timestamp selectivity over a range (fraction of rows matching), used
/// by workload generators to calibrate constraints.
pub fn selectivity_range(
    table: &TimeSeriesTable,
    pred: &CompiledPredicate,
    start: Timestamp,
    end: Timestamp,
    options: ScanOptions,
) -> Vec<(Timestamp, f64)> {
    let parts: Vec<(Timestamp, &crate::partition::Partition)> =
        table.partitions_in(start, end).collect();
    let sel: Vec<f64> =
        parallel_map_with(&parts, options.threads, MaskScratch::new, |scratch, (_, p)| {
            if p.num_rows() == 0 {
                0.0
            } else {
                let mask = pred.evaluate_into(p, scratch);
                let matched = mask.count_ones();
                scratch.release(mask);
                matched as f64 / p.num_rows() as f64
            }
        });
    parts.iter().zip(sel).map(|((t, _), s)| (*t, s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{CmpOp, Predicate};
    use crate::schema::Schema;
    use crate::types::{DataType, Value};

    fn table(days: i64, rows_per_day: i64) -> TimeSeriesTable {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let mut table = TimeSeriesTable::new(schema);
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        for d in 0..days {
            for r in 0..rows_per_day {
                table.append_row(start + d, &[Value::Int(r)], &[(d + 1) as f64]).unwrap();
            }
        }
        table
    }

    #[test]
    fn range_scan_matches_per_day_queries() {
        let table = table(10, 20);
        let pred = table.compile_predicate(&Predicate::cmp("k", CmpOp::Lt, 5)).unwrap();
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        let out = aggregate_range(
            &table,
            0,
            &pred,
            AggFunc::Sum,
            start,
            start + 9,
            ScanOptions { threads: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(out.len(), 10);
        for (i, (t, v)) in out.iter().enumerate() {
            assert_eq!(*t, start + i as i64);
            // 5 matching rows of value (day+1) each.
            assert_eq!(*v, 5.0 * (i as f64 + 1.0));
            assert_eq!(
                *v,
                table.aggregate_at(*t, 0, &pred, AggFunc::Sum).unwrap(),
                "range scan must equal per-day query"
            );
        }
    }

    #[test]
    fn sub_range_is_respected() {
        let table = table(10, 5);
        let pred = table.compile_predicate(&Predicate::True).unwrap();
        let start = Timestamp::from_yyyymmdd(20200103).unwrap();
        let out = aggregate_range(
            &table,
            0,
            &pred,
            AggFunc::Count,
            start,
            start + 2,
            ScanOptions::default(),
        )
        .unwrap();
        assert_eq!(out.len(), 3);
        assert!(out.iter().all(|(_, v)| *v == 5.0));
    }

    #[test]
    fn bad_measure_index_errors() {
        let table = table(2, 2);
        let pred = table.compile_predicate(&Predicate::True).unwrap();
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        assert!(aggregate_range(
            &table,
            7,
            &pred,
            AggFunc::Sum,
            start,
            start + 1,
            ScanOptions::default()
        )
        .is_err());
    }

    #[test]
    fn total_matches_sum_of_range() {
        let table = table(10, 20);
        let pred = table.compile_predicate(&Predicate::cmp("k", CmpOp::Lt, 5)).unwrap();
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        let per_day = aggregate_range(
            &table,
            0,
            &pred,
            AggFunc::Sum,
            start,
            start + 9,
            ScanOptions { threads: 3, ..Default::default() },
        )
        .unwrap();
        let total = aggregate_total(
            &table,
            0,
            &pred,
            start,
            start + 9,
            ScanOptions { threads: 3, ..Default::default() },
        )
        .unwrap();
        assert_eq!(total.finalize(AggFunc::Sum), per_day.iter().map(|(_, v)| v).sum::<f64>());
        assert_eq!(total.count, 50);
        assert!(
            aggregate_total(&table, 9, &pred, start, start + 9, ScanOptions::default()).is_err()
        );
    }

    #[test]
    fn states_range_matches_finalized_range() {
        let table = table(10, 20);
        let pred = table.compile_predicate(&Predicate::cmp("k", CmpOp::Lt, 5)).unwrap();
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        let options = ScanOptions { threads: 3, ..Default::default() };
        let states = aggregate_states_range(&table, 0, &pred, start, start + 9, options).unwrap();
        let values =
            aggregate_range(&table, 0, &pred, AggFunc::Sum, start, start + 9, options).unwrap();
        assert_eq!(states.len(), values.len());
        for ((ts, state), (tv, v)) in states.iter().zip(&values) {
            assert_eq!(ts, tv);
            assert_eq!(state.finalize(AggFunc::Sum), *v);
            assert_eq!(state.count, 5);
        }
        assert!(aggregate_states_range(&table, 9, &pred, start, start + 9, options).is_err());
    }

    #[test]
    fn selectivity_over_range() {
        let table = table(3, 10);
        let pred = table.compile_predicate(&Predicate::cmp("k", CmpOp::Lt, 3)).unwrap();
        let start = Timestamp::from_yyyymmdd(20200101).unwrap();
        let sel = selectivity_range(&table, &pred, start, start + 2, ScanOptions::default());
        assert_eq!(sel.len(), 3);
        for (_, s) in sel {
            assert!((s - 0.3).abs() < 1e-12);
        }
    }
}
