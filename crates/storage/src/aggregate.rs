//! SUM / COUNT / AVG aggregation over (masked) partitions — the inner loop
//! of the per-timestamp aggregation queries in Eq. (4) of the paper.

use crate::bitmask::Bitmask;
use crate::column::DimensionColumn;
use crate::partition::Partition;
use crate::predicate::CmpOp;
use crate::simd::KernelSet;
use std::fmt;

/// Aggregate function of a forecasting task. The paper's primary target is
/// `SUM`; `COUNT` and `AVG` are also supported (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        }
    }

    /// Parse a (case-insensitive) SQL name.
    pub fn parse(s: &str) -> Option<Self> {
        if s.eq_ignore_ascii_case("SUM") {
            Some(AggFunc::Sum)
        } else if s.eq_ignore_ascii_case("COUNT") {
            Some(AggFunc::Count)
        } else if s.eq_ignore_ascii_case("AVG") {
            Some(AggFunc::Avg)
        } else {
            None
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running sum + count, combinable across partitions/threads, finalized
/// into any [`AggFunc`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggState {
    pub sum: f64,
    pub count: u64,
}

impl AggState {
    /// Merge another partial state into this one.
    pub fn merge(&mut self, other: AggState) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Finalize into the requested aggregate. `AVG` of zero rows is `NaN`
    /// (there is no meaningful value), matching SQL's `NULL` semantics as
    /// closely as a float can.
    pub fn finalize(&self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

/// Aggregate measure `measure_idx` over the rows selected by `mask`,
/// walking the mask word-at-a-time via [`Bitmask::for_each_one`].
pub fn aggregate_masked(partition: &Partition, measure_idx: usize, mask: &Bitmask) -> AggState {
    let values = partition.measure(measure_idx);
    debug_assert_eq!(values.len(), mask.len());
    let mut sum = 0.0f64;
    let mut count = 0u64;
    mask.for_each_one(|i| {
        sum += values[i];
        count += 1;
    });
    AggState { sum, count }
}

/// Fused filter + aggregate for a single comparison predicate: per 64-row
/// chunk the comparison result is packed into one register word, so no
/// mask is ever materialized. This is the kernel behind single-comparison
/// constraints on the exact scan path; the comparison runs on the
/// process-wide dispatched kernel tier ([`crate::simd::active`]).
pub fn aggregate_filtered(
    partition: &Partition,
    measure_idx: usize,
    dim: usize,
    op: CmpOp,
    value: i64,
) -> AggState {
    aggregate_filtered_with(crate::simd::active(), partition, measure_idx, dim, op, value)
}

/// [`aggregate_filtered`] with an explicit kernel tier — the hook the
/// kernel-equivalence suite and the bench harness use to pit tiers
/// against each other on identical inputs.
pub fn aggregate_filtered_with(
    kernels: &KernelSet,
    partition: &Partition,
    measure_idx: usize,
    dim: usize,
    op: CmpOp,
    value: i64,
) -> AggState {
    let values = partition.measure(measure_idx);
    let col = partition.dim(dim);
    macro_rules! narrow {
        ($v:expr, $t:ty, $fused:ident) => {{
            match <$t>::try_from(value) {
                Ok(rhs) => kernels.$fused($v, values, op, rhs),
                // Literal outside the representation's range: matches all
                // rows or none (see `out_of_range_matches_all`).
                Err(_) => {
                    if crate::predicate::out_of_range_matches_all(op, value > 0) {
                        aggregate_all(partition, measure_idx)
                    } else {
                        AggState::default()
                    }
                }
            }
        }};
    }
    match col {
        DimensionColumn::UInt8(v) => narrow!(v, u8, fused_u8),
        DimensionColumn::UInt16(v) => narrow!(v, u16, fused_u16),
        DimensionColumn::Dict(v) => narrow!(v, u32, fused_u32),
        DimensionColumn::Int64(v) => kernels.fused_i64(v, values, op, value),
        // Integer literal against a float dimension: promote (exact up to
        // 2^53) and run the float fused kernel.
        DimensionColumn::Float64(v) => kernels.fused_f64(v, values, op, value as f64),
    }
}

/// [`aggregate_filtered_with`] for a float literal against a float64
/// dimension — the fused path behind compiled `CmpF64` constraints.
pub fn aggregate_filtered_f64_with(
    kernels: &KernelSet,
    partition: &Partition,
    measure_idx: usize,
    dim: usize,
    op: CmpOp,
    value: f64,
) -> AggState {
    let values = partition.measure(measure_idx);
    match partition.dim(dim) {
        DimensionColumn::Float64(v) => kernels.fused_f64(v, values, op, value),
        // CmpF64 only compiles against float columns; widen defensively so
        // a hand-built plan still aggregates by value.
        col => {
            let mut state = AggState::default();
            for i in 0..col.len() {
                if op.apply_f64(col.get_f64(i), value) {
                    state.sum += values[i];
                    state.count += 1;
                }
            }
            state
        }
    }
}

/// Per 64-row chunk: pack the comparison results into one register word
/// (branchless, autovectorizable), then feed only the matching rows into
/// the sum via `trailing_zeros`. The word never touches memory — that is
/// the fusion — and matching rows are added in ascending order, so the
/// sum is bit-identical to mask-then-aggregate. This is the **portable**
/// tier of the fused kernel; the SIMD tiers in [`crate::simd`] build the
/// word with explicit compare+movemask and reuse the identical
/// accumulation order.
pub(crate) fn fused_kernel<T: Copy + PartialOrd>(
    dims: &[T],
    values: &[f64],
    op: CmpOp,
    rhs: T,
) -> AggState {
    debug_assert_eq!(dims.len(), values.len());
    macro_rules! run {
        ($f:expr) => {{
            let f = $f;
            let mut sum = 0.0f64;
            let mut count = 0u64;
            let mut chunks = dims.chunks_exact(64);
            let mut base = 0usize;
            for chunk in chunks.by_ref() {
                let mut word = 0u64;
                for (bit, &x) in chunk.iter().enumerate() {
                    word |= (f(x) as u64) << bit;
                }
                count += u64::from(word.count_ones());
                if word == u64::MAX {
                    for &m in &values[base..base + 64] {
                        sum += m;
                    }
                } else {
                    while word != 0 {
                        sum += values[base + word.trailing_zeros() as usize];
                        word &= word - 1;
                    }
                }
                base += 64;
            }
            for (&x, &m) in chunks.remainder().iter().zip(&values[base..]) {
                if f(x) {
                    sum += m;
                    count += 1;
                }
            }
            AggState { sum, count }
        }};
    }
    match op {
        CmpOp::Eq => run!(|x| x == rhs),
        CmpOp::Ne => run!(|x| x != rhs),
        CmpOp::Lt => run!(|x| x < rhs),
        CmpOp::Le => run!(|x| x <= rhs),
        CmpOp::Gt => run!(|x| x > rhs),
        CmpOp::Ge => run!(|x| x >= rhs),
    }
}

/// Aggregate measure `measure_idx` over all rows of the partition.
pub fn aggregate_all(partition: &Partition, measure_idx: usize) -> AggState {
    let values = partition.measure(measure_idx);
    AggState { sum: values.iter().sum(), count: values.len() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CompiledPredicate;

    fn partition(measure: Vec<f64>) -> Partition {
        let n = measure.len();
        Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![measure],
        )
        .unwrap()
    }

    #[test]
    fn masked_sum_and_count() {
        let p = partition(vec![5.0, 1.0, 10.0, 20.0]);
        let mut mask = Bitmask::zeros(4);
        mask.set(0);
        mask.set(2);
        let s = aggregate_masked(&p, 0, &mask);
        assert_eq!(s.finalize(AggFunc::Sum), 15.0);
        assert_eq!(s.finalize(AggFunc::Count), 2.0);
        assert_eq!(s.finalize(AggFunc::Avg), 7.5);
    }

    #[test]
    fn empty_avg_is_nan() {
        let p = partition(vec![5.0]);
        let mask = Bitmask::zeros(1);
        let s = aggregate_masked(&p, 0, &mask);
        assert_eq!(s.finalize(AggFunc::Sum), 0.0);
        assert!(s.finalize(AggFunc::Avg).is_nan());
    }

    #[test]
    fn merge_is_associative_enough() {
        let mut a = AggState { sum: 1.0, count: 2 };
        a.merge(AggState { sum: 3.0, count: 4 });
        assert_eq!(a, AggState { sum: 4.0, count: 6 });
    }

    #[test]
    fn aggregate_all_matches_full_mask() {
        let p = partition(vec![1.0, 2.0, 3.0]);
        let all = aggregate_all(&p, 0);
        let masked = aggregate_masked(&p, 0, &Bitmask::ones(3));
        assert_eq!(all, masked);
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("CoUnT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("median"), None);
        assert_eq!(AggFunc::parse(""), None);
    }

    #[test]
    fn word_walk_handles_dense_sparse_and_tail_words() {
        // 130 rows: word 0 all-ones (dense path), word 1 mixed, word 2 a
        // two-bit tail.
        let n = 130;
        let p = partition((0..n).map(|i| i as f64).collect());
        let mut mask = Bitmask::zeros(n);
        for i in 0..64 {
            mask.set(i);
        }
        for i in (64..128).step_by(3) {
            mask.set(i);
        }
        mask.set(129);
        let got = aggregate_masked(&p, 0, &mask);
        let want = crate::reference::aggregate_masked_scalar(&p, 0, &mask);
        assert_eq!(got, want);
        assert_eq!(got.count as usize, mask.count_ones());
    }

    #[test]
    fn fused_filter_matches_mask_then_aggregate() {
        let n = 200usize;
        let dims = DimensionColumn::Int64((0..n as i64).map(|i| i % 17).collect());
        let measures: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 100.0).collect();
        let p = Partition::from_columns(vec![dims], vec![measures]).unwrap();
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            for value in [-1i64, 0, 5, 16, 17, 100] {
                let fused = aggregate_filtered(&p, 0, 0, op, value);
                let pred = CompiledPredicate::Cmp { dim: 0, op, value };
                let exact = crate::reference::aggregate_masked_scalar(&p, 0, &pred.evaluate(&p));
                assert_eq!(fused, exact, "op {op:?} value {value}");
            }
        }
    }

    #[test]
    fn fused_filter_out_of_range_literal_on_narrow_column() {
        let mut c = DimensionColumn::new(crate::types::DataType::UInt8);
        for v in [10i64, 20, 30] {
            c.push_int("x", v).unwrap();
        }
        let p = Partition::from_columns(vec![c], vec![vec![1.0, 2.0, 4.0]]).unwrap();
        let all = aggregate_filtered(&p, 0, 0, CmpOp::Le, 1000);
        assert_eq!(all, AggState { sum: 7.0, count: 3 });
        let none = aggregate_filtered(&p, 0, 0, CmpOp::Ge, 1000);
        assert_eq!(none, AggState::default());
        let below = aggregate_filtered(&p, 0, 0, CmpOp::Ne, -5);
        assert_eq!(below, AggState { sum: 7.0, count: 3 });
    }
}
