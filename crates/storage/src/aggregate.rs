//! SUM / COUNT / AVG aggregation over (masked) partitions — the inner loop
//! of the per-timestamp aggregation queries in Eq. (4) of the paper.

use crate::bitmask::Bitmask;
use crate::partition::Partition;
use std::fmt;

/// Aggregate function of a forecasting task. The paper's primary target is
/// `SUM`; `COUNT` and `AVG` are also supported (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    Sum,
    Count,
    Avg,
}

impl AggFunc {
    /// SQL spelling.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Avg => "AVG",
        }
    }

    /// Parse a (case-insensitive) SQL name.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "AVG" => Some(AggFunc::Avg),
            _ => None,
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running sum + count, combinable across partitions/threads, finalized
/// into any [`AggFunc`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggState {
    pub sum: f64,
    pub count: u64,
}

impl AggState {
    /// Merge another partial state into this one.
    pub fn merge(&mut self, other: AggState) {
        self.sum += other.sum;
        self.count += other.count;
    }

    /// Finalize into the requested aggregate. `AVG` of zero rows is `NaN`
    /// (there is no meaningful value), matching SQL's `NULL` semantics as
    /// closely as a float can.
    pub fn finalize(&self, func: AggFunc) -> f64 {
        match func {
            AggFunc::Sum => self.sum,
            AggFunc::Count => self.count as f64,
            AggFunc::Avg => {
                if self.count == 0 {
                    f64::NAN
                } else {
                    self.sum / self.count as f64
                }
            }
        }
    }
}

/// Aggregate measure `measure_idx` over the rows selected by `mask`.
pub fn aggregate_masked(partition: &Partition, measure_idx: usize, mask: &Bitmask) -> AggState {
    let values = partition.measure(measure_idx);
    debug_assert_eq!(values.len(), mask.len());
    let mut state = AggState::default();
    for i in mask.iter_ones() {
        state.sum += values[i];
        state.count += 1;
    }
    state
}

/// Aggregate measure `measure_idx` over all rows of the partition.
pub fn aggregate_all(partition: &Partition, measure_idx: usize) -> AggState {
    let values = partition.measure(measure_idx);
    AggState { sum: values.iter().sum(), count: values.len() as u64 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::DimensionColumn;

    fn partition(measure: Vec<f64>) -> Partition {
        let n = measure.len();
        Partition::from_columns(
            vec![DimensionColumn::Int64((0..n as i64).collect())],
            vec![measure],
        )
        .unwrap()
    }

    #[test]
    fn masked_sum_and_count() {
        let p = partition(vec![5.0, 1.0, 10.0, 20.0]);
        let mut mask = Bitmask::zeros(4);
        mask.set(0);
        mask.set(2);
        let s = aggregate_masked(&p, 0, &mask);
        assert_eq!(s.finalize(AggFunc::Sum), 15.0);
        assert_eq!(s.finalize(AggFunc::Count), 2.0);
        assert_eq!(s.finalize(AggFunc::Avg), 7.5);
    }

    #[test]
    fn empty_avg_is_nan() {
        let p = partition(vec![5.0]);
        let mask = Bitmask::zeros(1);
        let s = aggregate_masked(&p, 0, &mask);
        assert_eq!(s.finalize(AggFunc::Sum), 0.0);
        assert!(s.finalize(AggFunc::Avg).is_nan());
    }

    #[test]
    fn merge_is_associative_enough() {
        let mut a = AggState { sum: 1.0, count: 2 };
        a.merge(AggState { sum: 3.0, count: 4 });
        assert_eq!(a, AggState { sum: 4.0, count: 6 });
    }

    #[test]
    fn aggregate_all_matches_full_mask() {
        let p = partition(vec![1.0, 2.0, 3.0]);
        let all = aggregate_all(&p, 0);
        let masked = aggregate_masked(&p, 0, &Bitmask::ones(3));
        assert_eq!(all, masked);
    }

    #[test]
    fn parse_names() {
        assert_eq!(AggFunc::parse("sum"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::parse("CoUnT"), Some(AggFunc::Count));
        assert_eq!(AggFunc::parse("median"), None);
    }
}
