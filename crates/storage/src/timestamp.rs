//! Discrete time stamps with calendar support.
//!
//! The paper treats time as a discrete variable and writes literals as
//! `YYYYMMDD` integers (e.g. `USING (20200101, 20200331)`). Internally we
//! store a [`Timestamp`] as a day index (days since 1970-01-01) so that
//! arithmetic (`t + 1`, ranges, differences) is O(1); [`Date`] converts to
//! and from calendar form using Howard Hinnant's `days_from_civil`
//! algorithm.

use crate::error::StorageError;
use std::fmt;
use std::ops::{Add, Sub};

/// A discrete point on the table's time axis, stored as days since the Unix
/// epoch. `Timestamp` is `Copy`, totally ordered, and supports day
/// arithmetic; use [`Date`] / [`Timestamp::from_yyyymmdd`] for calendar
/// conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Timestamp(pub i64);

/// A Gregorian calendar date.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Date {
    pub year: i32,
    pub month: u32,
    pub day: u32,
}

impl Date {
    /// Construct a date, validating month/day ranges (including leap years).
    pub fn new(year: i32, month: u32, day: u32) -> Result<Self, StorageError> {
        if !(1..=12).contains(&month) || day == 0 || day > days_in_month(year, month) {
            return Err(StorageError::InvalidDate(format!("{year:04}-{month:02}-{day:02}")));
        }
        Ok(Date { year, month, day })
    }

    /// Days since 1970-01-01 (can be negative for earlier dates).
    pub fn to_days(self) -> i64 {
        days_from_civil(self.year, self.month, self.day)
    }

    /// Inverse of [`Date::to_days`].
    pub fn from_days(days: i64) -> Self {
        let (year, month, day) = civil_from_days(days);
        Date { year, month, day }
    }
}

impl Timestamp {
    /// Parse a `YYYYMMDD` integer literal, e.g. `20200301`.
    pub fn from_yyyymmdd(v: i64) -> Result<Self, StorageError> {
        if !(101..=99_991_231).contains(&v) {
            return Err(StorageError::InvalidDate(v.to_string()));
        }
        let year = (v / 10_000) as i32;
        let month = ((v / 100) % 100) as u32;
        let day = (v % 100) as u32;
        Ok(Timestamp(Date::new(year, month, day)?.to_days()))
    }

    /// Render back to a `YYYYMMDD` integer.
    pub fn to_yyyymmdd(self) -> i64 {
        let d = Date::from_days(self.0);
        d.year as i64 * 10_000 + d.month as i64 * 100 + d.day as i64
    }

    /// The calendar date of this timestamp.
    pub fn date(self) -> Date {
        Date::from_days(self.0)
    }

    /// Day-of-week with 0 = Monday … 6 = Sunday (useful for weekly
    /// seasonality in workload generators).
    pub fn weekday(self) -> u32 {
        // 1970-01-01 was a Thursday (index 3 with Monday = 0).
        (self.0 + 3).rem_euclid(7) as u32
    }

    /// Iterate `self..=end` one day at a time.
    pub fn range_inclusive(self, end: Timestamp) -> impl Iterator<Item = Timestamp> {
        (self.0..=end.0).map(Timestamp)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;
    fn add(self, days: i64) -> Timestamp {
        Timestamp(self.0 + days)
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;
    fn sub(self, days: i64) -> Timestamp {
        Timestamp(self.0 - days)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;
    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_yyyymmdd())
    }
}

fn is_leap(year: i32) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

fn days_in_month(year: i32, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Howard Hinnant's `days_from_civil`: days since 1970-01-01 for y-m-d.
fn days_from_civil(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = i64::from(m);
    let d = i64::from(d);
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Timestamp::from_yyyymmdd(19700101).unwrap(), Timestamp(0));
        assert_eq!(Timestamp(0).to_yyyymmdd(), 19700101);
    }

    #[test]
    fn paper_dates_round_trip() {
        for v in [20200101, 20200131, 20200301, 20200331, 20200229] {
            let t = Timestamp::from_yyyymmdd(v).unwrap();
            assert_eq!(t.to_yyyymmdd(), v, "round trip for {v}");
        }
    }

    #[test]
    fn rejects_invalid_dates() {
        assert!(Timestamp::from_yyyymmdd(20201301).is_err()); // month 13
        assert!(Timestamp::from_yyyymmdd(20200230).is_err()); // Feb 30
        assert!(Timestamp::from_yyyymmdd(20190229).is_err()); // not a leap year
        assert!(Timestamp::from_yyyymmdd(0).is_err());
        // Zero month/day fields are not shorthand for anything.
        assert!(Timestamp::from_yyyymmdd(20200001).is_err()); // month 0
        assert!(Timestamp::from_yyyymmdd(20200100).is_err()); // day 0
        assert!(Timestamp::from_yyyymmdd(20200132).is_err()); // day 32
        assert!(Timestamp::from_yyyymmdd(20200431).is_err()); // Apr 31
                                                              // Negative and out-of-range encodings.
        assert!(Timestamp::from_yyyymmdd(-20200101).is_err());
        assert!(Timestamp::from_yyyymmdd(100).is_err()); // below year 0001
        assert!(Timestamp::from_yyyymmdd(99_991_232).is_err()); // past the cap
        assert!(Timestamp::from_yyyymmdd(100_000_101).is_err()); // 6-digit year
                                                                 // The supported extremes stay valid and round-trip.
        assert_eq!(Timestamp::from_yyyymmdd(101).unwrap().to_yyyymmdd(), 101);
        assert_eq!(Timestamp::from_yyyymmdd(99_991_231).unwrap().to_yyyymmdd(), 99_991_231);
        // Leap-day acceptance right next to the rejected non-leap case.
        assert!(Timestamp::from_yyyymmdd(20200229).is_ok());
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(is_leap(2020));
        assert!(!is_leap(1900));
        assert!(!is_leap(2019));
    }

    #[test]
    fn arithmetic_crosses_month_and_year_boundaries() {
        let t = Timestamp::from_yyyymmdd(20200131).unwrap();
        assert_eq!((t + 1).to_yyyymmdd(), 20200201);
        let t = Timestamp::from_yyyymmdd(20201231).unwrap();
        assert_eq!((t + 1).to_yyyymmdd(), 20210101);
        let a = Timestamp::from_yyyymmdd(20200101).unwrap();
        let b = Timestamp::from_yyyymmdd(20200331).unwrap();
        assert_eq!(b - a, 90); // 91 data points inclusive, as in Fig. 2
    }

    #[test]
    fn weekday_is_consistent() {
        // 2020-03-01 was a Sunday.
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        assert_eq!(t.weekday(), 6);
        // 1970-01-01 was a Thursday.
        assert_eq!(Timestamp(0).weekday(), 3);
    }

    #[test]
    fn range_inclusive_counts_points() {
        let a = Timestamp::from_yyyymmdd(20200101).unwrap();
        let b = Timestamp::from_yyyymmdd(20200331).unwrap();
        assert_eq!(a.range_inclusive(b).count(), 91);
    }

    #[test]
    fn civil_round_trip_broad_range() {
        for z in (-200_000..200_000).step_by(97) {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }
}
