//! Runtime-dispatched SIMD scan kernels.
//!
//! Four kernel tiers implement the same scan primitives — the
//! compare-into-mask kernel behind [`crate::CompiledPredicate`] leaves,
//! the IN-list membership kernel behind compiled `IN` predicates, the
//! fused compare+aggregate kernel behind single-comparison exact scans,
//! and a reassociated masked-sum kernel behind the opt-in `fast_sum`
//! aggregation mode:
//!
//! * **`avx512`** — 512-bit compares writing mask registers straight
//!   into `Bitmask` words (64 `u8` rows are one load and one
//!   `vpcmpub` away from a finished mask word — no movemask), plus
//!   `vpshufb` byte-table IN-list membership and a gather probe into the
//!   [`crate::InLookup`] bitset for wider types. Requires
//!   `avx512f` + `avx512bw`.
//! * **`avx2`** — explicit 256-bit compare + movemask intrinsics: 64 rows
//!   of a `u8` column are two loads, two compares and two movemasks away
//!   from a finished mask word.
//! * **`sse2`** — the 128-bit fallback, always present on `x86_64`
//!   (`i64` comparisons need `pcmpgtq`, which SSE2 lacks, so that one
//!   slot stays on the portable kernel).
//! * **`portable`** — the word-at-a-time kernels of
//!   [`crate::predicate`] / [`crate::aggregate`]: branchless
//!   `word |= (cmp as u64) << bit` packing that autovectorizes on any
//!   architecture. This is the only tier on non-x86 targets.
//!
//! The active tier is chosen **once**, at first use, by
//! [`active`] — `is_x86_feature_detected!` runtime dispatch captured in a
//! [`KernelSet`] vtable of monomorphic function pointers that
//! `predicate.rs`, `aggregate.rs`, `scan.rs` and `flashp-sampling`'s
//! estimators all route through. Two environment variables override the
//! choice (read once, before the first query):
//!
//! * `FLASHP_FORCE_SCALAR_KERNELS=1` — disable SIMD dispatch entirely and
//!   run the portable word-at-a-time tier (CI runs the whole test suite
//!   this way so the portable tier stays covered on every PR);
//! * `FLASHP_KERNEL_TIER=avx512|avx2|sse2|portable` — pin a specific
//!   tier. An unrecognized name, or a tier this CPU cannot run, is
//!   **never** silent: selection prints one deterministic warning to
//!   stderr and falls back to the best supported tier (pinned by
//!   `resolve_tier`'s unit tests).
//!
//! Every mask and every **exact** aggregate is **bit-for-bit identical**
//! to the scalar reference oracle in [`crate::reference`]: masks match
//! bit by bit, and fused sums are produced by the exact same
//! ascending-row addition order (the SIMD tiers vectorize the
//! comparisons and the mask-word assembly, never the float accumulation
//! — reassociating the sum would change low-order bits). The one
//! deliberate exception is [`KernelSet::agg_masked_fast`], the opt-in
//! `fast_sum` kernel: it keeps the exact integer count but reassociates
//! the float sum into vector-lane partial accumulators, deterministic
//! per tier but only ulp-close to the exact order. The
//! `kernel_equivalence` property suite proves all of this for every
//! supported tier on every column type, including `f64` comparisons with
//! NaN and non-finite literals.

use crate::aggregate::AggState;
use crate::bitmask::Bitmask;
use crate::predicate::{CmpOp, InLookup};
use std::fmt;
use std::sync::OnceLock;

/// One of the scan-kernel implementation tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelTier {
    /// 512-bit compares into mask registers (`avx512f` + `avx512bw`).
    Avx512,
    /// 256-bit AVX2 compare + movemask kernels.
    Avx2,
    /// 128-bit SSE2 kernels (`i64` compares fall back to portable).
    Sse2,
    /// Word-at-a-time portable kernels (autovectorized).
    Portable,
}

impl KernelTier {
    /// All tiers, best first — the dispatch preference order.
    pub const ALL: [KernelTier; 4] =
        [KernelTier::Avx512, KernelTier::Avx2, KernelTier::Sse2, KernelTier::Portable];

    /// Lower-case tier name as reported by `EXPLAIN` (`simd=<name>`) and
    /// the bench reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelTier::Avx512 => "avx512",
            KernelTier::Avx2 => "avx2",
            KernelTier::Sse2 => "sse2",
            KernelTier::Portable => "portable",
        }
    }

    /// Parse a tier name as accepted by `FLASHP_KERNEL_TIER`: the
    /// [`KernelTier::name`] spellings, plus `scalar` as an alias for the
    /// portable tier.
    pub fn parse(s: &str) -> Option<KernelTier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "avx512" => Some(KernelTier::Avx512),
            "avx2" => Some(KernelTier::Avx2),
            "sse2" => Some(KernelTier::Sse2),
            "portable" | "scalar" => Some(KernelTier::Portable),
            _ => None,
        }
    }
}

impl fmt::Display for KernelTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A vtable of monomorphic scan-kernel entry points for one tier.
///
/// All mask-producing kernels require `mask.len() == data.len()` and
/// overwrite every mask word the data covers (the mask may arrive with
/// garbage words — see [`crate::MaskScratch`]). The fused kernels return
/// sums produced in ascending row order, bit-identical to
/// mask-then-aggregate on every tier.
#[derive(Clone, Copy)]
pub struct KernelSet {
    tier: KernelTier,
    cmp_u8: fn(&[u8], CmpOp, u8, &mut Bitmask),
    cmp_u16: fn(&[u16], CmpOp, u16, &mut Bitmask),
    cmp_u32: fn(&[u32], CmpOp, u32, &mut Bitmask),
    cmp_i64: fn(&[i64], CmpOp, i64, &mut Bitmask),
    cmp_f64: fn(&[f64], CmpOp, f64, &mut Bitmask),
    in_u8: fn(&[u8], &InLookup, &mut Bitmask),
    in_u16: fn(&[u16], &InLookup, &mut Bitmask),
    in_u32: fn(&[u32], &InLookup, &mut Bitmask),
    in_i64: fn(&[i64], &InLookup, &mut Bitmask),
    fused_u8: fn(&[u8], &[f64], CmpOp, u8) -> AggState,
    fused_u16: fn(&[u16], &[f64], CmpOp, u16) -> AggState,
    fused_u32: fn(&[u32], &[f64], CmpOp, u32) -> AggState,
    fused_i64: fn(&[i64], &[f64], CmpOp, i64) -> AggState,
    fused_f64: fn(&[f64], &[f64], CmpOp, f64) -> AggState,
    agg_masked_fast: fn(&[f64], &Bitmask) -> AggState,
}

impl fmt::Debug for KernelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KernelSet").field("tier", &self.tier).finish_non_exhaustive()
    }
}

impl KernelSet {
    /// The tier these kernels implement.
    pub fn tier(&self) -> KernelTier {
        self.tier
    }

    /// `col op rhs` into `mask` for a `u8` column.
    #[inline]
    pub fn cmp_u8(&self, data: &[u8], op: CmpOp, rhs: u8, mask: &mut Bitmask) {
        (self.cmp_u8)(data, op, rhs, mask)
    }

    /// `col op rhs` into `mask` for a `u16` column.
    #[inline]
    pub fn cmp_u16(&self, data: &[u16], op: CmpOp, rhs: u16, mask: &mut Bitmask) {
        (self.cmp_u16)(data, op, rhs, mask)
    }

    /// `col op rhs` into `mask` for a dictionary-code (`u32`) column.
    #[inline]
    pub fn cmp_u32(&self, data: &[u32], op: CmpOp, rhs: u32, mask: &mut Bitmask) {
        (self.cmp_u32)(data, op, rhs, mask)
    }

    /// `col op rhs` into `mask` for an `i64` column.
    #[inline]
    pub fn cmp_i64(&self, data: &[i64], op: CmpOp, rhs: i64, mask: &mut Bitmask) {
        (self.cmp_i64)(data, op, rhs, mask)
    }

    /// `col op rhs` into `mask` for an `f64` column, with IEEE semantics
    /// identical to Rust's scalar float comparisons: ordered compares and
    /// `==` are `false` against NaN, `!=` is `true`.
    #[inline]
    pub fn cmp_f64(&self, data: &[f64], op: CmpOp, rhs: f64, mask: &mut Bitmask) {
        (self.cmp_f64)(data, op, rhs, mask)
    }

    /// `col IN (…)` membership into `mask` for a `u8` column through the
    /// compile-time [`InLookup`] bitset.
    #[inline]
    pub fn in_u8(&self, data: &[u8], lookup: &InLookup, mask: &mut Bitmask) {
        (self.in_u8)(data, lookup, mask)
    }

    /// IN-list membership for a `u16` column.
    #[inline]
    pub fn in_u16(&self, data: &[u16], lookup: &InLookup, mask: &mut Bitmask) {
        (self.in_u16)(data, lookup, mask)
    }

    /// IN-list membership for a dictionary-code (`u32`) column.
    #[inline]
    pub fn in_u32(&self, data: &[u32], lookup: &InLookup, mask: &mut Bitmask) {
        (self.in_u32)(data, lookup, mask)
    }

    /// IN-list membership for an `i64` column.
    #[inline]
    pub fn in_i64(&self, data: &[i64], lookup: &InLookup, mask: &mut Bitmask) {
        (self.in_i64)(data, lookup, mask)
    }

    /// Fused `filter(dim op rhs) → sum/count(values)` for a `u8` column;
    /// no mask is materialized.
    #[inline]
    pub fn fused_u8(&self, dims: &[u8], values: &[f64], op: CmpOp, rhs: u8) -> AggState {
        (self.fused_u8)(dims, values, op, rhs)
    }

    /// Fused filter+aggregate for a `u16` column.
    #[inline]
    pub fn fused_u16(&self, dims: &[u16], values: &[f64], op: CmpOp, rhs: u16) -> AggState {
        (self.fused_u16)(dims, values, op, rhs)
    }

    /// Fused filter+aggregate for a dictionary-code (`u32`) column.
    #[inline]
    pub fn fused_u32(&self, dims: &[u32], values: &[f64], op: CmpOp, rhs: u32) -> AggState {
        (self.fused_u32)(dims, values, op, rhs)
    }

    /// Fused filter+aggregate for an `i64` column.
    #[inline]
    pub fn fused_i64(&self, dims: &[i64], values: &[f64], op: CmpOp, rhs: i64) -> AggState {
        (self.fused_i64)(dims, values, op, rhs)
    }

    /// Fused filter+aggregate for an `f64` dimension column, with the
    /// same IEEE NaN semantics as [`KernelSet::cmp_f64`] and the exact
    /// ascending-row accumulation order of the other fused slots.
    #[inline]
    pub fn fused_f64(&self, dims: &[f64], values: &[f64], op: CmpOp, rhs: f64) -> AggState {
        (self.fused_f64)(dims, values, op, rhs)
    }

    /// Masked sum/count with **reassociated** float accumulation — the
    /// opt-in `fast_sum` kernel. The count is exact (a popcount); the sum
    /// uses vector-lane partial accumulators, so it is deterministic for
    /// a given tier but only ulp-close to the exact ascending-row order
    /// of [`crate::aggregate::aggregate_masked`]. The portable and SSE2
    /// tiers alias the exact walk (bit-identical there).
    #[inline]
    pub fn agg_masked_fast(&self, values: &[f64], mask: &Bitmask) -> AggState {
        (self.agg_masked_fast)(values, mask)
    }

    /// The portable word-at-a-time tier (always available).
    pub fn portable() -> KernelSet {
        KernelSet {
            tier: KernelTier::Portable,
            cmp_u8: portable::cmp_u8,
            cmp_u16: portable::cmp_u16,
            cmp_u32: portable::cmp_u32,
            cmp_i64: portable::cmp_i64,
            cmp_f64: portable::cmp_f64,
            in_u8: portable::in_u8,
            in_u16: portable::in_u16,
            in_u32: portable::in_u32,
            in_i64: portable::in_i64,
            fused_u8: portable::fused_u8,
            fused_u16: portable::fused_u16,
            fused_u32: portable::fused_u32,
            fused_i64: portable::fused_i64,
            fused_f64: portable::fused_f64,
            agg_masked_fast: portable::agg_masked_fast,
        }
    }

    /// The kernels for `tier`, or `None` when this machine cannot run it.
    pub fn for_tier(tier: KernelTier) -> Option<KernelSet> {
        match tier {
            KernelTier::Portable => Some(KernelSet::portable()),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Sse2 if std::arch::is_x86_feature_detected!("sse2") => {
                Some(KernelSet {
                    tier: KernelTier::Sse2,
                    cmp_u8: x86::cmp_u8_sse2,
                    cmp_u16: x86::cmp_u16_sse2,
                    cmp_u32: x86::cmp_u32_sse2,
                    // SSE2 has no 64-bit integer compare (`pcmpgtq` is
                    // SSE4.2); the portable kernel serves that slot.
                    cmp_i64: portable::cmp_i64,
                    cmp_f64: x86::cmp_f64_sse2,
                    // No `pshufb` before SSSE3: membership stays on the
                    // portable bitset probe.
                    in_u8: portable::in_u8,
                    in_u16: portable::in_u16,
                    in_u32: portable::in_u32,
                    in_i64: portable::in_i64,
                    fused_u8: x86::fused_u8_sse2,
                    fused_u16: x86::fused_u16_sse2,
                    fused_u32: x86::fused_u32_sse2,
                    fused_i64: portable::fused_i64,
                    fused_f64: x86::fused_f64_sse2,
                    // 2-lane reassociation buys nothing over the exact
                    // walk; keep fast == exact on this tier.
                    agg_masked_fast: portable::agg_masked_fast,
                })
            }
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx2 if std::arch::is_x86_feature_detected!("avx2") => Some(KernelSet {
                tier: KernelTier::Avx2,
                cmp_u8: x86::cmp_u8_avx2,
                cmp_u16: x86::cmp_u16_avx2,
                cmp_u32: x86::cmp_u32_avx2,
                cmp_i64: x86::cmp_i64_avx2,
                cmp_f64: x86::cmp_f64_avx2,
                in_u8: x86::in_u8_avx2,
                // Wider types would need AVX2 gathers whose bounds
                // handling costs more than the bitset probe saves; the
                // portable kernel keeps those slots.
                in_u16: portable::in_u16,
                in_u32: portable::in_u32,
                in_i64: portable::in_i64,
                fused_u8: x86::fused_u8_avx2,
                fused_u16: x86::fused_u16_avx2,
                fused_u32: x86::fused_u32_avx2,
                fused_i64: x86::fused_i64_avx2,
                fused_f64: x86::fused_f64_avx2,
                agg_masked_fast: x86::agg_masked_fast_avx2,
            }),
            #[cfg(target_arch = "x86_64")]
            KernelTier::Avx512
                if std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw") =>
            {
                Some(KernelSet {
                    tier: KernelTier::Avx512,
                    cmp_u8: x86::cmp_u8_avx512,
                    cmp_u16: x86::cmp_u16_avx512,
                    cmp_u32: x86::cmp_u32_avx512,
                    cmp_i64: x86::cmp_i64_avx512,
                    cmp_f64: x86::cmp_f64_avx512,
                    in_u8: x86::in_u8_avx512,
                    in_u16: x86::in_u16_avx512,
                    in_u32: x86::in_u32_avx512,
                    in_i64: x86::in_i64_avx512,
                    fused_u8: x86::fused_u8_avx512,
                    fused_u16: x86::fused_u16_avx512,
                    fused_u32: x86::fused_u32_avx512,
                    fused_i64: x86::fused_i64_avx512,
                    fused_f64: x86::fused_f64_avx512,
                    agg_masked_fast: x86::agg_masked_fast_avx512,
                })
            }
            #[allow(unreachable_patterns)]
            _ => None,
        }
    }

    /// Every tier this machine can run, best first (the portable tier is
    /// always last and always present) — the equivalence tests and bench
    /// harness iterate this.
    pub fn supported() -> Vec<KernelSet> {
        KernelTier::ALL.iter().filter_map(|&t| KernelSet::for_tier(t)).collect()
    }
}

/// The process-wide kernel set, selected once at first use.
static ACTIVE: OnceLock<KernelSet> = OnceLock::new();

/// The dispatched kernel set every scan and estimation routes through.
///
/// Selected once: environment overrides first
/// (`FLASHP_FORCE_SCALAR_KERNELS`, `FLASHP_KERNEL_TIER`), then the best
/// tier the CPU supports.
pub fn active() -> &'static KernelSet {
    ACTIVE.get_or_init(select)
}

/// Tier of the dispatched kernel set (reported by `EXPLAIN` as
/// `simd=<tier>` and recorded in the bench reports).
pub fn active_tier() -> KernelTier {
    active().tier()
}

/// Pure tier-selection logic behind [`active`], separated from the
/// environment and the warning sink so both are unit-testable: given the
/// two override variables (as `Option`s) and the tiers this machine
/// supports (best first), return the tier to run and, for a pin that
/// could not be honored, the deterministic warning to print.
///
/// A pin that names an unknown tier, or a real tier this CPU cannot run,
/// must never degrade *silently* — the caller prints the warning once —
/// and must still leave the process on the best tier it has, so a typo'd
/// pin costs a line on stderr, not an unexplained benchmark cliff.
fn resolve_tier(
    force_scalar: Option<&str>,
    pin: Option<&str>,
    supported: &[KernelTier],
) -> (KernelTier, Option<String>) {
    let best = supported.first().copied().unwrap_or(KernelTier::Portable);
    if force_scalar.map(|v| !v.is_empty() && v != "0").unwrap_or(false) {
        return (KernelTier::Portable, None);
    }
    let Some(name) = pin else {
        return (best, None);
    };
    match KernelTier::parse(name) {
        None => (
            best,
            Some(format!(
                "FLASHP_KERNEL_TIER: unrecognized tier {name:?} \
                 (valid: avx512|avx2|sse2|portable); using {best}"
            )),
        ),
        Some(t) if supported.contains(&t) => (t, None),
        Some(t) => (
            best,
            Some(format!(
                "FLASHP_KERNEL_TIER: tier '{t}' is not supported by this CPU; using {best}"
            )),
        ),
    }
}

fn select() -> KernelSet {
    let supported: Vec<KernelTier> = KernelSet::supported().iter().map(KernelSet::tier).collect();
    let force = std::env::var("FLASHP_FORCE_SCALAR_KERNELS").ok();
    let pin = std::env::var("FLASHP_KERNEL_TIER").ok();
    let (tier, warning) = resolve_tier(force.as_deref(), pin.as_deref(), &supported);
    if let Some(w) = warning {
        eprintln!("flashp: {w}");
    }
    KernelSet::for_tier(tier).unwrap_or_else(KernelSet::portable)
}

/// Scalar comparison used for the `len % 64` tail rows of every SIMD
/// kernel (and by the portable fallbacks' tests). For floats this is
/// Rust's own IEEE semantics, which is exactly what the vector predicates
/// were chosen to match.
#[inline]
fn scalar_bool<T: Copy + PartialOrd>(op: CmpOp, x: T, rhs: T) -> bool {
    match op {
        CmpOp::Eq => x == rhs,
        CmpOp::Ne => x != rhs,
        CmpOp::Lt => x < rhs,
        CmpOp::Le => x <= rhs,
        CmpOp::Gt => x > rhs,
        CmpOp::Ge => x >= rhs,
    }
}

/// Write the final partial mask word (rows `64·(len/64)..len`) with the
/// scalar comparison; bits at or beyond `len` stay zero, preserving the
/// mask tail invariant.
fn scalar_tail<T: Copy + PartialOrd>(data: &[T], op: CmpOp, rhs: T, words: &mut [u64]) {
    let full = data.len() / 64;
    let rem = &data[full * 64..];
    if rem.is_empty() {
        return;
    }
    let mut w = 0u64;
    for (bit, &x) in rem.iter().enumerate() {
        w |= (scalar_bool(op, x, rhs) as u64) << bit;
    }
    words[full] = w;
}

/// Fold one finished 64-row mask word into the running fused aggregate,
/// in exactly the order the portable fused kernel uses: count first, then
/// an all-ones fast path or an ascending `trailing_zeros` walk — so the
/// float sum is bit-identical across tiers.
#[inline]
fn accumulate_word(word: u64, values: &[f64], sum: &mut f64, count: &mut u64) {
    debug_assert_eq!(values.len(), 64);
    *count += u64::from(word.count_ones());
    if word == u64::MAX {
        for &m in values {
            *sum += m;
        }
    } else {
        let mut w = word;
        while w != 0 {
            *sum += values[w.trailing_zeros() as usize];
            w &= w - 1;
        }
    }
}

/// Scalar accumulation of the `len % 64` tail rows of a fused kernel,
/// identical to the portable fused kernel's remainder loop.
fn fused_tail<T: Copy + PartialOrd>(
    dims: &[T],
    values: &[f64],
    op: CmpOp,
    rhs: T,
    state: &mut AggState,
) {
    let full = dims.len() / 64;
    for (&x, &m) in dims[full * 64..].iter().zip(&values[full * 64..]) {
        if scalar_bool(op, x, rhs) {
            state.sum += m;
            state.count += 1;
        }
    }
}

/// Exact masked aggregation — ascending-row addition order, bit-identical
/// to [`crate::aggregate::aggregate_masked`]. Serves as the `fast` slot
/// on tiers where reassociation buys nothing (portable, SSE2) and as the
/// oracle the fast kernels' tests compare against.
fn agg_masked_exact(values: &[f64], mask: &Bitmask) -> AggState {
    debug_assert_eq!(values.len(), mask.len());
    let mut sum = 0.0f64;
    let mut count = 0u64;
    mask.for_each_one(|i| {
        sum += values[i];
        count += 1;
    });
    AggState { sum, count }
}

/// Write the final partial mask word of an IN-membership kernel with the
/// scalar bitset probe; bits at or beyond `len` stay zero.
fn in_tail<T: Copy + Into<i64>>(data: &[T], lookup: &InLookup, words: &mut [u64]) {
    let full = data.len() / 64;
    let rem = &data[full * 64..];
    if rem.is_empty() {
        return;
    }
    let mut w = 0u64;
    for (bit, &x) in rem.iter().enumerate() {
        w |= (lookup.contains(x.into()) as u64) << bit;
    }
    words[full] = w;
}

/// 256-bit byte-indexed membership table for the `vpshufb` u8 IN kernels:
/// bit `b & 7` of byte `b >> 3` says whether byte value `b` is in the
/// lookup. Built per kernel call (256 probes — noise next to a scan).
#[cfg(target_arch = "x86_64")]
fn byte_bit_table(lookup: &InLookup) -> [u8; 32] {
    let mut table = [0u8; 32];
    for b in 0..=255u8 {
        if lookup.contains(i64::from(b)) {
            table[(b >> 3) as usize] |= 1 << (b & 7);
        }
    }
    table
}

/// The portable tier: monomorphic entry points over the word-at-a-time
/// kernels in [`crate::predicate`] and [`crate::aggregate`].
mod portable {
    use super::*;

    macro_rules! portable_pair {
        ($cmp:ident, $fused:ident, $ty:ty) => {
            pub(super) fn $cmp(data: &[$ty], op: CmpOp, rhs: $ty, mask: &mut Bitmask) {
                crate::predicate::cmp_kernel(data, op, rhs, mask)
            }
            pub(super) fn $fused(dims: &[$ty], values: &[f64], op: CmpOp, rhs: $ty) -> AggState {
                crate::aggregate::fused_kernel(dims, values, op, rhs)
            }
        };
    }

    portable_pair!(cmp_u8, fused_u8, u8);
    portable_pair!(cmp_u16, fused_u16, u16);
    portable_pair!(cmp_u32, fused_u32, u32);
    portable_pair!(cmp_i64, fused_i64, i64);

    pub(super) fn cmp_f64(data: &[f64], op: CmpOp, rhs: f64, mask: &mut Bitmask) {
        crate::predicate::cmp_kernel(data, op, rhs, mask)
    }

    pub(super) fn fused_f64(dims: &[f64], values: &[f64], op: CmpOp, rhs: f64) -> AggState {
        crate::aggregate::fused_kernel(dims, values, op, rhs)
    }

    macro_rules! portable_in {
        ($name:ident, $ty:ty) => {
            pub(super) fn $name(data: &[$ty], lookup: &InLookup, mask: &mut Bitmask) {
                crate::predicate::in_lookup_kernel(data, lookup, mask)
            }
        };
    }

    portable_in!(in_u8, u8);
    portable_in!(in_u16, u16);
    portable_in!(in_u32, u32);
    portable_in!(in_i64, i64);

    pub(super) fn agg_masked_fast(values: &[f64], mask: &Bitmask) -> AggState {
        agg_masked_exact(values, mask)
    }
}

/// Explicit x86-64 SIMD kernels (AVX2 and SSE2 tiers).
///
/// Every integer comparison reduces, after operand normalization, to one
/// of three vector primitives — `x == rhs`, `x > rhs`, `rhs > x` — plus
/// an optional word-level complement (`Ne = !Eq`, `Le = !Gt`,
/// `Ge = !Lt`). The complement is applied to the finished 64-bit mask
/// word, never to the tail (which is computed scalar with the real
/// operator), so tail bits beyond `len` stay zero. Unsigned columns are
/// biased by XOR with the type's sign bit so the signed vector compare
/// orders them correctly. Floats never use the complement trick — it is
/// wrong under NaN — and instead select the exact IEEE predicate per
/// operator.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::*;
    use core::arch::x86_64::*;

    /// `x == rhs`.
    const EQ: u8 = 0;
    /// `x > rhs` (after unsigned bias where needed).
    const GT_XR: u8 = 1;
    /// `rhs > x`.
    const GT_RX: u8 = 2;

    /// Reduce an operator to a vector primitive plus a word complement.
    fn decompose(op: CmpOp) -> (u8, bool) {
        match op {
            CmpOp::Eq => (EQ, false),
            CmpOp::Ne => (EQ, true),
            CmpOp::Gt => (GT_XR, false),
            CmpOp::Le => (GT_XR, true),
            CmpOp::Lt => (GT_RX, false),
            CmpOp::Ge => (GT_RX, true),
        }
    }

    // ---------------------------------------------------------------
    // AVX2: one 64-row mask word per `word64_*` call.
    // ---------------------------------------------------------------

    /// 64 `u8` rows → one mask word: two 32-lane compares + movemasks.
    ///
    /// # Safety
    /// `p` must be valid for reads of 64 `u8`s; requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn word64_u8_avx2<const MODE: u8>(
        p: *const u8,
        rhs_v: __m256i,
        rhs_b: __m256i,
        bias: __m256i,
    ) -> u64 {
        let a = _mm256_loadu_si256(p.cast());
        let b = _mm256_loadu_si256(p.add(32).cast());
        let (ma, mb) = match MODE {
            EQ => (_mm256_cmpeq_epi8(a, rhs_v), _mm256_cmpeq_epi8(b, rhs_v)),
            GT_XR => (
                _mm256_cmpgt_epi8(_mm256_xor_si256(a, bias), rhs_b),
                _mm256_cmpgt_epi8(_mm256_xor_si256(b, bias), rhs_b),
            ),
            _ => (
                _mm256_cmpgt_epi8(rhs_b, _mm256_xor_si256(a, bias)),
                _mm256_cmpgt_epi8(rhs_b, _mm256_xor_si256(b, bias)),
            ),
        };
        let lo = _mm256_movemask_epi8(ma) as u32 as u64;
        let hi = _mm256_movemask_epi8(mb) as u32 as u64;
        lo | (hi << 32)
    }

    /// 64 `u16` rows → one mask word. `packs_epi16` interleaves the
    /// 128-bit lanes as `[a_lo, b_lo, a_hi, b_hi]`; the `(0,2,1,3)`
    /// qword permute restores row order before the byte movemask.
    ///
    /// # Safety
    /// `p` must be valid for reads of 64 `u16`s; requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn word64_u16_avx2<const MODE: u8>(
        p: *const u16,
        rhs_v: __m256i,
        rhs_b: __m256i,
        bias: __m256i,
    ) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 2 {
            let a = _mm256_loadu_si256(p.add(k * 32).cast());
            let b = _mm256_loadu_si256(p.add(k * 32 + 16).cast());
            let (ma, mb) = match MODE {
                EQ => (_mm256_cmpeq_epi16(a, rhs_v), _mm256_cmpeq_epi16(b, rhs_v)),
                GT_XR => (
                    _mm256_cmpgt_epi16(_mm256_xor_si256(a, bias), rhs_b),
                    _mm256_cmpgt_epi16(_mm256_xor_si256(b, bias), rhs_b),
                ),
                _ => (
                    _mm256_cmpgt_epi16(rhs_b, _mm256_xor_si256(a, bias)),
                    _mm256_cmpgt_epi16(rhs_b, _mm256_xor_si256(b, bias)),
                ),
            };
            let packed = _mm256_permute4x64_epi64::<0b11011000>(_mm256_packs_epi16(ma, mb));
            out |= (_mm256_movemask_epi8(packed) as u32 as u64) << (k * 32);
            k += 1;
        }
        out
    }

    /// 64 `u32` (dictionary-code) rows → one mask word via 8-lane
    /// compares and `movemask_ps`.
    ///
    /// # Safety
    /// `p` must be valid for reads of 64 `u32`s; requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn word64_u32_avx2<const MODE: u8>(
        p: *const u32,
        rhs_v: __m256i,
        rhs_b: __m256i,
        bias: __m256i,
    ) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 8 {
            let v = _mm256_loadu_si256(p.add(k * 8).cast());
            let m = match MODE {
                EQ => _mm256_cmpeq_epi32(v, rhs_v),
                GT_XR => _mm256_cmpgt_epi32(_mm256_xor_si256(v, bias), rhs_b),
                _ => _mm256_cmpgt_epi32(rhs_b, _mm256_xor_si256(v, bias)),
            };
            out |= (_mm256_movemask_ps(_mm256_castsi256_ps(m)) as u32 as u64) << (k * 8);
            k += 1;
        }
        out
    }

    /// 64 `i64` rows → one mask word via 4-lane signed compares
    /// (`pcmpgtq`/`pcmpeqq`, no bias needed) and `movemask_pd`.
    ///
    /// # Safety
    /// `p` must be valid for reads of 64 `i64`s; requires AVX2.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn word64_i64_avx2<const MODE: u8>(
        p: *const i64,
        rhs_v: __m256i,
        _rhs_b: __m256i,
        _bias: __m256i,
    ) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 16 {
            let v = _mm256_loadu_si256(p.add(k * 4).cast());
            let m = match MODE {
                EQ => _mm256_cmpeq_epi64(v, rhs_v),
                GT_XR => _mm256_cmpgt_epi64(v, rhs_v),
                _ => _mm256_cmpgt_epi64(rhs_v, v),
            };
            out |= (_mm256_movemask_pd(_mm256_castsi256_pd(m)) as u64) << (k * 4);
            k += 1;
        }
        out
    }

    /// Generate the per-type AVX2 `cmp` + `fused` kernel pair from its
    /// `word64` builder and broadcast setup.
    macro_rules! avx2_int_kernels {
        ($ty:ty, $word64:ident, $cmp_words:ident, $fused_words:ident,
         $cmp_pub:ident, $fused_pub:ident, $set1:ident, $bias:expr) => {
            /// # Safety
            /// Requires AVX2; `words` must cover `data.len() / 64` full
            /// mask words.
            #[target_feature(enable = "avx2")]
            unsafe fn $cmp_words<const MODE: u8>(
                data: &[$ty],
                rhs: $ty,
                inv: u64,
                words: &mut [u64],
            ) {
                let rhs_v = $set1(rhs as _);
                let bias = $bias;
                let rhs_b = _mm256_xor_si256(rhs_v, bias);
                for (wi, chunk) in data.chunks_exact(64).enumerate() {
                    words[wi] = $word64::<MODE>(chunk.as_ptr(), rhs_v, rhs_b, bias) ^ inv;
                }
            }

            /// # Safety
            /// Requires AVX2; `values.len() >= dims.len()`.
            #[target_feature(enable = "avx2")]
            unsafe fn $fused_words<const MODE: u8>(
                dims: &[$ty],
                values: &[f64],
                rhs: $ty,
                inv: u64,
            ) -> AggState {
                let rhs_v = $set1(rhs as _);
                let bias = $bias;
                let rhs_b = _mm256_xor_si256(rhs_v, bias);
                let mut sum = 0.0f64;
                let mut count = 0u64;
                let mut base = 0usize;
                for chunk in dims.chunks_exact(64) {
                    let word = $word64::<MODE>(chunk.as_ptr(), rhs_v, rhs_b, bias) ^ inv;
                    accumulate_word(word, &values[base..base + 64], &mut sum, &mut count);
                    base += 64;
                }
                AggState { sum, count }
            }

            pub(super) fn $cmp_pub(data: &[$ty], op: CmpOp, rhs: $ty, mask: &mut Bitmask) {
                debug_assert_eq!(data.len(), mask.len());
                let (mode, complement) = decompose(op);
                let inv = if complement { u64::MAX } else { 0 };
                let words = mask.words_mut();
                // SAFETY: this function is only installed in a KernelSet
                // after `is_x86_feature_detected!("avx2")` succeeded.
                unsafe {
                    match mode {
                        EQ => $cmp_words::<EQ>(data, rhs, inv, words),
                        GT_XR => $cmp_words::<GT_XR>(data, rhs, inv, words),
                        _ => $cmp_words::<GT_RX>(data, rhs, inv, words),
                    }
                }
                scalar_tail(data, op, rhs, words);
            }

            pub(super) fn $fused_pub(
                dims: &[$ty],
                values: &[f64],
                op: CmpOp,
                rhs: $ty,
            ) -> AggState {
                debug_assert_eq!(dims.len(), values.len());
                let (mode, complement) = decompose(op);
                let inv = if complement { u64::MAX } else { 0 };
                // SAFETY: as above — AVX2 was detected at dispatch time.
                let mut state = unsafe {
                    match mode {
                        EQ => $fused_words::<EQ>(dims, values, rhs, inv),
                        GT_XR => $fused_words::<GT_XR>(dims, values, rhs, inv),
                        _ => $fused_words::<GT_RX>(dims, values, rhs, inv),
                    }
                };
                fused_tail(dims, values, op, rhs, &mut state);
                state
            }
        };
    }

    avx2_int_kernels!(
        u8,
        word64_u8_avx2,
        cmp_words_u8_avx2,
        fused_words_u8_avx2,
        cmp_u8_avx2,
        fused_u8_avx2,
        _mm256_set1_epi8,
        _mm256_set1_epi8(i8::MIN)
    );
    avx2_int_kernels!(
        u16,
        word64_u16_avx2,
        cmp_words_u16_avx2,
        fused_words_u16_avx2,
        cmp_u16_avx2,
        fused_u16_avx2,
        _mm256_set1_epi16,
        _mm256_set1_epi16(i16::MIN)
    );
    avx2_int_kernels!(
        u32,
        word64_u32_avx2,
        cmp_words_u32_avx2,
        fused_words_u32_avx2,
        cmp_u32_avx2,
        fused_u32_avx2,
        _mm256_set1_epi32,
        _mm256_set1_epi32(i32::MIN)
    );
    avx2_int_kernels!(
        i64,
        word64_i64_avx2,
        cmp_words_i64_avx2,
        fused_words_i64_avx2,
        cmp_i64_avx2,
        fused_i64_avx2,
        _mm256_set1_epi64x,
        _mm256_setzero_si256()
    );

    /// # Safety
    /// Requires AVX2; `words` must cover `data.len() / 64` full words.
    #[target_feature(enable = "avx2")]
    unsafe fn cmp_f64_words_avx2<const IMM: i32>(data: &[f64], rhs: f64, words: &mut [u64]) {
        let rhs_v = _mm256_set1_pd(rhs);
        for (wi, chunk) in data.chunks_exact(64).enumerate() {
            let p = chunk.as_ptr();
            let mut w = 0u64;
            let mut k = 0usize;
            while k < 16 {
                let v = _mm256_loadu_pd(p.add(k * 4));
                let m = _mm256_cmp_pd::<IMM>(v, rhs_v);
                w |= (_mm256_movemask_pd(m) as u64) << (k * 4);
                k += 1;
            }
            words[wi] = w;
        }
    }

    pub(super) fn cmp_f64_avx2(data: &[f64], op: CmpOp, rhs: f64, mask: &mut Bitmask) {
        debug_assert_eq!(data.len(), mask.len());
        let words = mask.words_mut();
        // SAFETY: AVX2 was detected at dispatch time. The IEEE predicate
        // per operator matches Rust scalar float comparison exactly
        // (ordered + quiet, except `!=` which is unordered).
        unsafe {
            match op {
                CmpOp::Eq => cmp_f64_words_avx2::<_CMP_EQ_OQ>(data, rhs, words),
                CmpOp::Ne => cmp_f64_words_avx2::<_CMP_NEQ_UQ>(data, rhs, words),
                CmpOp::Lt => cmp_f64_words_avx2::<_CMP_LT_OQ>(data, rhs, words),
                CmpOp::Le => cmp_f64_words_avx2::<_CMP_LE_OQ>(data, rhs, words),
                CmpOp::Gt => cmp_f64_words_avx2::<_CMP_GT_OQ>(data, rhs, words),
                CmpOp::Ge => cmp_f64_words_avx2::<_CMP_GE_OQ>(data, rhs, words),
            }
        }
        scalar_tail(data, op, rhs, words);
    }

    // ---------------------------------------------------------------
    // SSE2: same structure at 128 bits.
    // ---------------------------------------------------------------

    /// # Safety
    /// `p` must be valid for reads of 64 `u8`s; requires SSE2.
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn word64_u8_sse2<const MODE: u8>(
        p: *const u8,
        rhs_v: __m128i,
        rhs_b: __m128i,
        bias: __m128i,
    ) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 4 {
            let v = _mm_loadu_si128(p.add(k * 16).cast());
            let m = match MODE {
                EQ => _mm_cmpeq_epi8(v, rhs_v),
                GT_XR => _mm_cmpgt_epi8(_mm_xor_si128(v, bias), rhs_b),
                _ => _mm_cmpgt_epi8(rhs_b, _mm_xor_si128(v, bias)),
            };
            out |= (_mm_movemask_epi8(m) as u32 as u64) << (k * 16);
            k += 1;
        }
        out
    }

    /// # Safety
    /// `p` must be valid for reads of 64 `u16`s; requires SSE2.
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn word64_u16_sse2<const MODE: u8>(
        p: *const u16,
        rhs_v: __m128i,
        rhs_b: __m128i,
        bias: __m128i,
    ) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 4 {
            let a = _mm_loadu_si128(p.add(k * 16).cast());
            let b = _mm_loadu_si128(p.add(k * 16 + 8).cast());
            let (ma, mb) = match MODE {
                EQ => (_mm_cmpeq_epi16(a, rhs_v), _mm_cmpeq_epi16(b, rhs_v)),
                GT_XR => (
                    _mm_cmpgt_epi16(_mm_xor_si128(a, bias), rhs_b),
                    _mm_cmpgt_epi16(_mm_xor_si128(b, bias), rhs_b),
                ),
                _ => (
                    _mm_cmpgt_epi16(rhs_b, _mm_xor_si128(a, bias)),
                    _mm_cmpgt_epi16(rhs_b, _mm_xor_si128(b, bias)),
                ),
            };
            // 128-bit packs keeps row order: [a0..a7, b0..b7].
            let packed = _mm_packs_epi16(ma, mb);
            out |= (_mm_movemask_epi8(packed) as u32 as u64) << (k * 16);
            k += 1;
        }
        out
    }

    /// # Safety
    /// `p` must be valid for reads of 64 `u32`s; requires SSE2.
    #[target_feature(enable = "sse2")]
    #[inline]
    unsafe fn word64_u32_sse2<const MODE: u8>(
        p: *const u32,
        rhs_v: __m128i,
        rhs_b: __m128i,
        bias: __m128i,
    ) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 16 {
            let v = _mm_loadu_si128(p.add(k * 4).cast());
            let m = match MODE {
                EQ => _mm_cmpeq_epi32(v, rhs_v),
                GT_XR => _mm_cmpgt_epi32(_mm_xor_si128(v, bias), rhs_b),
                _ => _mm_cmpgt_epi32(rhs_b, _mm_xor_si128(v, bias)),
            };
            out |= (_mm_movemask_ps(_mm_castsi128_ps(m)) as u32 as u64) << (k * 4);
            k += 1;
        }
        out
    }

    /// Generate the per-type SSE2 `cmp` + `fused` kernel pair.
    macro_rules! sse2_int_kernels {
        ($ty:ty, $word64:ident, $cmp_words:ident, $fused_words:ident,
         $cmp_pub:ident, $fused_pub:ident, $set1:ident, $bias:expr) => {
            /// # Safety
            /// Requires SSE2; `words` must cover `data.len() / 64` words.
            #[target_feature(enable = "sse2")]
            unsafe fn $cmp_words<const MODE: u8>(
                data: &[$ty],
                rhs: $ty,
                inv: u64,
                words: &mut [u64],
            ) {
                let rhs_v = $set1(rhs as _);
                let bias = $bias;
                let rhs_b = _mm_xor_si128(rhs_v, bias);
                for (wi, chunk) in data.chunks_exact(64).enumerate() {
                    words[wi] = $word64::<MODE>(chunk.as_ptr(), rhs_v, rhs_b, bias) ^ inv;
                }
            }

            /// # Safety
            /// Requires SSE2; `values.len() >= dims.len()`.
            #[target_feature(enable = "sse2")]
            unsafe fn $fused_words<const MODE: u8>(
                dims: &[$ty],
                values: &[f64],
                rhs: $ty,
                inv: u64,
            ) -> AggState {
                let rhs_v = $set1(rhs as _);
                let bias = $bias;
                let rhs_b = _mm_xor_si128(rhs_v, bias);
                let mut sum = 0.0f64;
                let mut count = 0u64;
                let mut base = 0usize;
                for chunk in dims.chunks_exact(64) {
                    let word = $word64::<MODE>(chunk.as_ptr(), rhs_v, rhs_b, bias) ^ inv;
                    accumulate_word(word, &values[base..base + 64], &mut sum, &mut count);
                    base += 64;
                }
                AggState { sum, count }
            }

            pub(super) fn $cmp_pub(data: &[$ty], op: CmpOp, rhs: $ty, mask: &mut Bitmask) {
                debug_assert_eq!(data.len(), mask.len());
                let (mode, complement) = decompose(op);
                let inv = if complement { u64::MAX } else { 0 };
                let words = mask.words_mut();
                // SAFETY: SSE2 is part of the x86_64 baseline and was
                // re-checked at dispatch time.
                unsafe {
                    match mode {
                        EQ => $cmp_words::<EQ>(data, rhs, inv, words),
                        GT_XR => $cmp_words::<GT_XR>(data, rhs, inv, words),
                        _ => $cmp_words::<GT_RX>(data, rhs, inv, words),
                    }
                }
                scalar_tail(data, op, rhs, words);
            }

            pub(super) fn $fused_pub(
                dims: &[$ty],
                values: &[f64],
                op: CmpOp,
                rhs: $ty,
            ) -> AggState {
                debug_assert_eq!(dims.len(), values.len());
                let (mode, complement) = decompose(op);
                let inv = if complement { u64::MAX } else { 0 };
                // SAFETY: as above.
                let mut state = unsafe {
                    match mode {
                        EQ => $fused_words::<EQ>(dims, values, rhs, inv),
                        GT_XR => $fused_words::<GT_XR>(dims, values, rhs, inv),
                        _ => $fused_words::<GT_RX>(dims, values, rhs, inv),
                    }
                };
                fused_tail(dims, values, op, rhs, &mut state);
                state
            }
        };
    }

    sse2_int_kernels!(
        u8,
        word64_u8_sse2,
        cmp_words_u8_sse2,
        fused_words_u8_sse2,
        cmp_u8_sse2,
        fused_u8_sse2,
        _mm_set1_epi8,
        _mm_set1_epi8(i8::MIN)
    );
    sse2_int_kernels!(
        u16,
        word64_u16_sse2,
        cmp_words_u16_sse2,
        fused_words_u16_sse2,
        cmp_u16_sse2,
        fused_u16_sse2,
        _mm_set1_epi16,
        _mm_set1_epi16(i16::MIN)
    );
    sse2_int_kernels!(
        u32,
        word64_u32_sse2,
        cmp_words_u32_sse2,
        fused_words_u32_sse2,
        cmp_u32_sse2,
        fused_u32_sse2,
        _mm_set1_epi32,
        _mm_set1_epi32(i32::MIN)
    );

    /// SSE2 float predicate index (the legacy `cmp*pd` instructions, no
    /// immediate-encoded predicate as in AVX).
    const F_EQ: u8 = 0;
    const F_NE: u8 = 1;
    const F_LT: u8 = 2;
    const F_LE: u8 = 3;
    const F_GT: u8 = 4;
    const F_GE: u8 = 5;

    /// # Safety
    /// Requires SSE2; `words` must cover `data.len() / 64` full words.
    #[target_feature(enable = "sse2")]
    unsafe fn cmp_f64_words_sse2<const OP: u8>(data: &[f64], rhs: f64, words: &mut [u64]) {
        let rhs_v = _mm_set1_pd(rhs);
        for (wi, chunk) in data.chunks_exact(64).enumerate() {
            let p = chunk.as_ptr();
            let mut w = 0u64;
            let mut k = 0usize;
            while k < 32 {
                let v = _mm_loadu_pd(p.add(k * 2));
                let m = match OP {
                    F_EQ => _mm_cmpeq_pd(v, rhs_v),
                    F_NE => _mm_cmpneq_pd(v, rhs_v),
                    F_LT => _mm_cmplt_pd(v, rhs_v),
                    F_LE => _mm_cmple_pd(v, rhs_v),
                    F_GT => _mm_cmpgt_pd(v, rhs_v),
                    _ => _mm_cmpge_pd(v, rhs_v),
                };
                w |= (_mm_movemask_pd(m) as u64) << (k * 2);
                k += 1;
            }
            words[wi] = w;
        }
    }

    pub(super) fn cmp_f64_sse2(data: &[f64], op: CmpOp, rhs: f64, mask: &mut Bitmask) {
        debug_assert_eq!(data.len(), mask.len());
        let words = mask.words_mut();
        // SAFETY: SSE2 is part of the x86_64 baseline. `cmpneq_pd` is
        // unordered (true on NaN), the rest ordered (false on NaN) —
        // matching Rust scalar float comparison per operator.
        unsafe {
            match op {
                CmpOp::Eq => cmp_f64_words_sse2::<F_EQ>(data, rhs, words),
                CmpOp::Ne => cmp_f64_words_sse2::<F_NE>(data, rhs, words),
                CmpOp::Lt => cmp_f64_words_sse2::<F_LT>(data, rhs, words),
                CmpOp::Le => cmp_f64_words_sse2::<F_LE>(data, rhs, words),
                CmpOp::Gt => cmp_f64_words_sse2::<F_GT>(data, rhs, words),
                CmpOp::Ge => cmp_f64_words_sse2::<F_GE>(data, rhs, words),
            }
        }
        scalar_tail(data, op, rhs, words);
    }

    // ---------------------------------------------------------------
    // f64 fused filter+aggregate (AVX2 / SSE2): vectorized IEEE compare
    // builds the 64-row word, the shared `accumulate_word` keeps the
    // float sum in exact ascending-row order.
    // ---------------------------------------------------------------

    /// # Safety
    /// Requires AVX2; `values.len() >= dims.len()`.
    #[target_feature(enable = "avx2")]
    unsafe fn fused_f64_words_avx2<const IMM: i32>(
        dims: &[f64],
        values: &[f64],
        rhs: f64,
    ) -> AggState {
        let rhs_v = _mm256_set1_pd(rhs);
        let mut sum = 0.0f64;
        let mut count = 0u64;
        let mut base = 0usize;
        for chunk in dims.chunks_exact(64) {
            let p = chunk.as_ptr();
            let mut w = 0u64;
            let mut k = 0usize;
            while k < 16 {
                let m = _mm256_cmp_pd::<IMM>(_mm256_loadu_pd(p.add(k * 4)), rhs_v);
                w |= (_mm256_movemask_pd(m) as u64) << (k * 4);
                k += 1;
            }
            accumulate_word(w, &values[base..base + 64], &mut sum, &mut count);
            base += 64;
        }
        AggState { sum, count }
    }

    pub(super) fn fused_f64_avx2(dims: &[f64], values: &[f64], op: CmpOp, rhs: f64) -> AggState {
        debug_assert_eq!(dims.len(), values.len());
        // SAFETY: AVX2 was detected at dispatch time; predicates as in
        // `cmp_f64_avx2`.
        let mut state = unsafe {
            match op {
                CmpOp::Eq => fused_f64_words_avx2::<_CMP_EQ_OQ>(dims, values, rhs),
                CmpOp::Ne => fused_f64_words_avx2::<_CMP_NEQ_UQ>(dims, values, rhs),
                CmpOp::Lt => fused_f64_words_avx2::<_CMP_LT_OQ>(dims, values, rhs),
                CmpOp::Le => fused_f64_words_avx2::<_CMP_LE_OQ>(dims, values, rhs),
                CmpOp::Gt => fused_f64_words_avx2::<_CMP_GT_OQ>(dims, values, rhs),
                CmpOp::Ge => fused_f64_words_avx2::<_CMP_GE_OQ>(dims, values, rhs),
            }
        };
        fused_tail(dims, values, op, rhs, &mut state);
        state
    }

    /// # Safety
    /// Requires SSE2; `values.len() >= dims.len()`.
    #[target_feature(enable = "sse2")]
    unsafe fn fused_f64_words_sse2<const OP: u8>(
        dims: &[f64],
        values: &[f64],
        rhs: f64,
    ) -> AggState {
        let rhs_v = _mm_set1_pd(rhs);
        let mut sum = 0.0f64;
        let mut count = 0u64;
        let mut base = 0usize;
        for chunk in dims.chunks_exact(64) {
            let p = chunk.as_ptr();
            let mut w = 0u64;
            let mut k = 0usize;
            while k < 32 {
                let v = _mm_loadu_pd(p.add(k * 2));
                let m = match OP {
                    F_EQ => _mm_cmpeq_pd(v, rhs_v),
                    F_NE => _mm_cmpneq_pd(v, rhs_v),
                    F_LT => _mm_cmplt_pd(v, rhs_v),
                    F_LE => _mm_cmple_pd(v, rhs_v),
                    F_GT => _mm_cmpgt_pd(v, rhs_v),
                    _ => _mm_cmpge_pd(v, rhs_v),
                };
                w |= (_mm_movemask_pd(m) as u64) << (k * 2);
                k += 1;
            }
            accumulate_word(w, &values[base..base + 64], &mut sum, &mut count);
            base += 64;
        }
        AggState { sum, count }
    }

    pub(super) fn fused_f64_sse2(dims: &[f64], values: &[f64], op: CmpOp, rhs: f64) -> AggState {
        debug_assert_eq!(dims.len(), values.len());
        // SAFETY: SSE2 baseline; predicates as in `cmp_f64_sse2`.
        let mut state = unsafe {
            match op {
                CmpOp::Eq => fused_f64_words_sse2::<F_EQ>(dims, values, rhs),
                CmpOp::Ne => fused_f64_words_sse2::<F_NE>(dims, values, rhs),
                CmpOp::Lt => fused_f64_words_sse2::<F_LT>(dims, values, rhs),
                CmpOp::Le => fused_f64_words_sse2::<F_LE>(dims, values, rhs),
                CmpOp::Gt => fused_f64_words_sse2::<F_GT>(dims, values, rhs),
                CmpOp::Ge => fused_f64_words_sse2::<F_GE>(dims, values, rhs),
            }
        };
        fused_tail(dims, values, op, rhs, &mut state);
        state
    }

    // ---------------------------------------------------------------
    // u8 IN-list membership (AVX2): `vpshufb` over a 256-entry bit table.
    // Each byte `b` fetches table byte `b >> 3` (two 16-byte halves,
    // blended on bit 4 of the index) and tests bit `b & 7`.
    // ---------------------------------------------------------------

    /// # Safety
    /// Requires AVX2; `words` must cover `data.len() / 64` full words.
    #[target_feature(enable = "avx2")]
    unsafe fn in_words_u8_avx2(data: &[u8], table: &[u8; 32], words: &mut [u64]) {
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().cast()));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(table.as_ptr().add(16).cast()));
        #[rustfmt::skip]
        let bit_of = _mm256_setr_epi8(
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
        );
        for (wi, chunk) in data.chunks_exact(64).enumerate() {
            let p = chunk.as_ptr();
            let mut out = 0u64;
            let mut k = 0usize;
            while k < 2 {
                let v = _mm256_loadu_si256(p.add(k * 32).cast());
                // idx5 = (b >> 3) & 0x1F — which of the 32 table bytes.
                let idx5 = _mm256_and_si256(_mm256_srli_epi16::<3>(v), _mm256_set1_epi8(0x1F));
                let idx4 = _mm256_and_si256(idx5, _mm256_set1_epi8(0x0F));
                let t_lo = _mm256_shuffle_epi8(lo, idx4);
                let t_hi = _mm256_shuffle_epi8(hi, idx4);
                // Bit 4 of idx5 → the byte sign bit `blendv` keys on.
                let sel = _mm256_slli_epi16::<3>(idx5);
                let t = _mm256_blendv_epi8(t_lo, t_hi, sel);
                let bitsel = _mm256_shuffle_epi8(bit_of, _mm256_and_si256(v, _mm256_set1_epi8(7)));
                let m = _mm256_cmpeq_epi8(_mm256_and_si256(t, bitsel), bitsel);
                out |= (_mm256_movemask_epi8(m) as u32 as u64) << (k * 32);
                k += 1;
            }
            words[wi] = out;
        }
    }

    pub(super) fn in_u8_avx2(data: &[u8], lookup: &InLookup, mask: &mut Bitmask) {
        debug_assert_eq!(data.len(), mask.len());
        let table = byte_bit_table(lookup);
        let words = mask.words_mut();
        // SAFETY: AVX2 was detected at dispatch time.
        unsafe { in_words_u8_avx2(data, &table, words) };
        in_tail(data, lookup, words);
    }

    // ---------------------------------------------------------------
    // fast_sum masked aggregation (AVX2): a nibble of the mask word
    // selects a 4-lane keep mask, matching rows accumulate into 4 lane
    // partials — deterministic, but reassociated vs the exact order.
    // ---------------------------------------------------------------

    /// # Safety
    /// Requires AVX2; `words` must cover `values.len()` rows with the
    /// mask-tail invariant (bits at/beyond the end zero).
    #[target_feature(enable = "avx2")]
    unsafe fn agg_masked_words_avx2(values: &[f64], words: &[u64]) -> AggState {
        let mut nib_keep = [_mm256_setzero_si256(); 16];
        let mut n = 0usize;
        while n < 16 {
            nib_keep[n] = _mm256_setr_epi64x(
                if n & 1 != 0 { -1 } else { 0 },
                if n & 2 != 0 { -1 } else { 0 },
                if n & 4 != 0 { -1 } else { 0 },
                if n & 8 != 0 { -1 } else { 0 },
            );
            n += 1;
        }
        let mut acc = _mm256_setzero_pd();
        let mut count = 0u64;
        let full = values.len() / 64;
        let mut wi = 0usize;
        while wi < full {
            let w = words[wi];
            count += u64::from(w.count_ones());
            if w != 0 {
                let p = values.as_ptr().add(wi * 64);
                let mut k = 0usize;
                while k < 16 {
                    let nib = ((w >> (k * 4)) & 0xF) as usize;
                    if nib != 0 {
                        let keep = _mm256_castsi256_pd(nib_keep[nib]);
                        acc =
                            _mm256_add_pd(acc, _mm256_and_pd(keep, _mm256_loadu_pd(p.add(k * 4))));
                    }
                    k += 1;
                }
            }
            wi += 1;
        }
        // Fixed-order horizontal reduction: (l0+l2) + (l1+l3).
        let pair = _mm_add_pd(_mm256_castpd256_pd128(acc), _mm256_extractf128_pd::<1>(acc));
        let mut sum = _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
        if full < words.len() {
            let mut w = words[full];
            count += u64::from(w.count_ones());
            let base = full * 64;
            while w != 0 {
                sum += values[base + w.trailing_zeros() as usize];
                w &= w - 1;
            }
        }
        AggState { sum, count }
    }

    pub(super) fn agg_masked_fast_avx2(values: &[f64], mask: &Bitmask) -> AggState {
        debug_assert_eq!(values.len(), mask.len());
        // SAFETY: AVX2 was detected at dispatch time.
        unsafe { agg_masked_words_avx2(values, mask.words()) }
    }

    // ---------------------------------------------------------------
    // AVX-512: compares write mask registers straight into `Bitmask`
    // words — 64 u8 rows are one `vpcmpub` (no movemask, no sign bias:
    // the EVEX compares exist in unsigned forms). The `F_*` operator
    // indices of the SSE2 float section are reused as const parameters.
    // ---------------------------------------------------------------

    /// # Safety
    /// `p` must be valid for reads of 64 `u8`s; requires AVX-512BW.
    #[target_feature(enable = "avx512f,avx512bw")]
    #[inline]
    unsafe fn word64_u8_avx512<const OP: u8>(p: *const u8, rhs: __m512i) -> u64 {
        let v = _mm512_loadu_si512(p.cast());
        match OP {
            F_EQ => _mm512_cmpeq_epu8_mask(v, rhs),
            F_NE => _mm512_cmpneq_epu8_mask(v, rhs),
            F_LT => _mm512_cmplt_epu8_mask(v, rhs),
            F_LE => _mm512_cmple_epu8_mask(v, rhs),
            F_GT => _mm512_cmpgt_epu8_mask(v, rhs),
            _ => _mm512_cmpge_epu8_mask(v, rhs),
        }
    }

    /// # Safety
    /// `p` must be valid for reads of 64 `u16`s; requires AVX-512BW.
    #[target_feature(enable = "avx512f,avx512bw")]
    #[inline]
    unsafe fn word64_u16_avx512<const OP: u8>(p: *const u16, rhs: __m512i) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 2 {
            let v = _mm512_loadu_si512(p.add(k * 32).cast());
            let m: __mmask32 = match OP {
                F_EQ => _mm512_cmpeq_epu16_mask(v, rhs),
                F_NE => _mm512_cmpneq_epu16_mask(v, rhs),
                F_LT => _mm512_cmplt_epu16_mask(v, rhs),
                F_LE => _mm512_cmple_epu16_mask(v, rhs),
                F_GT => _mm512_cmpgt_epu16_mask(v, rhs),
                _ => _mm512_cmpge_epu16_mask(v, rhs),
            };
            out |= (m as u64) << (k * 32);
            k += 1;
        }
        out
    }

    /// # Safety
    /// `p` must be valid for reads of 64 `u32`s; requires AVX-512F.
    #[target_feature(enable = "avx512f,avx512bw")]
    #[inline]
    unsafe fn word64_u32_avx512<const OP: u8>(p: *const u32, rhs: __m512i) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 4 {
            let v = _mm512_loadu_si512(p.add(k * 16).cast());
            let m: __mmask16 = match OP {
                F_EQ => _mm512_cmpeq_epu32_mask(v, rhs),
                F_NE => _mm512_cmpneq_epu32_mask(v, rhs),
                F_LT => _mm512_cmplt_epu32_mask(v, rhs),
                F_LE => _mm512_cmple_epu32_mask(v, rhs),
                F_GT => _mm512_cmpgt_epu32_mask(v, rhs),
                _ => _mm512_cmpge_epu32_mask(v, rhs),
            };
            out |= (m as u64) << (k * 16);
            k += 1;
        }
        out
    }

    /// # Safety
    /// `p` must be valid for reads of 64 `i64`s; requires AVX-512F.
    #[target_feature(enable = "avx512f,avx512bw")]
    #[inline]
    unsafe fn word64_i64_avx512<const OP: u8>(p: *const i64, rhs: __m512i) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 8 {
            let v = _mm512_loadu_si512(p.add(k * 8).cast());
            let m: __mmask8 = match OP {
                F_EQ => _mm512_cmpeq_epi64_mask(v, rhs),
                F_NE => _mm512_cmpneq_epi64_mask(v, rhs),
                F_LT => _mm512_cmplt_epi64_mask(v, rhs),
                F_LE => _mm512_cmple_epi64_mask(v, rhs),
                F_GT => _mm512_cmpgt_epi64_mask(v, rhs),
                _ => _mm512_cmpge_epi64_mask(v, rhs),
            };
            out |= (m as u64) << (k * 8);
            k += 1;
        }
        out
    }

    /// Generate the per-type AVX-512 `cmp` + `fused` kernel pair from its
    /// `word64` builder and broadcast.
    macro_rules! avx512_int_kernels {
        ($ty:ty, $word64:ident, $cmp_words:ident, $fused_words:ident,
         $cmp_pub:ident, $fused_pub:ident, $set1:ident) => {
            /// # Safety
            /// Requires AVX-512F/BW; `words` must cover `data.len() / 64`
            /// full mask words.
            #[target_feature(enable = "avx512f,avx512bw")]
            unsafe fn $cmp_words<const OP: u8>(data: &[$ty], rhs: $ty, words: &mut [u64]) {
                let rhs_v = $set1(rhs as _);
                for (wi, chunk) in data.chunks_exact(64).enumerate() {
                    words[wi] = $word64::<OP>(chunk.as_ptr(), rhs_v);
                }
            }

            /// # Safety
            /// Requires AVX-512F/BW; `values.len() >= dims.len()`.
            #[target_feature(enable = "avx512f,avx512bw")]
            unsafe fn $fused_words<const OP: u8>(
                dims: &[$ty],
                values: &[f64],
                rhs: $ty,
            ) -> AggState {
                let rhs_v = $set1(rhs as _);
                let mut sum = 0.0f64;
                let mut count = 0u64;
                let mut base = 0usize;
                for chunk in dims.chunks_exact(64) {
                    let word = $word64::<OP>(chunk.as_ptr(), rhs_v);
                    accumulate_word(word, &values[base..base + 64], &mut sum, &mut count);
                    base += 64;
                }
                AggState { sum, count }
            }

            pub(super) fn $cmp_pub(data: &[$ty], op: CmpOp, rhs: $ty, mask: &mut Bitmask) {
                debug_assert_eq!(data.len(), mask.len());
                let words = mask.words_mut();
                // SAFETY: this function is only installed in a KernelSet
                // after avx512f + avx512bw detection succeeded.
                unsafe {
                    match op {
                        CmpOp::Eq => $cmp_words::<F_EQ>(data, rhs, words),
                        CmpOp::Ne => $cmp_words::<F_NE>(data, rhs, words),
                        CmpOp::Lt => $cmp_words::<F_LT>(data, rhs, words),
                        CmpOp::Le => $cmp_words::<F_LE>(data, rhs, words),
                        CmpOp::Gt => $cmp_words::<F_GT>(data, rhs, words),
                        CmpOp::Ge => $cmp_words::<F_GE>(data, rhs, words),
                    }
                }
                scalar_tail(data, op, rhs, words);
            }

            pub(super) fn $fused_pub(
                dims: &[$ty],
                values: &[f64],
                op: CmpOp,
                rhs: $ty,
            ) -> AggState {
                debug_assert_eq!(dims.len(), values.len());
                // SAFETY: as above — AVX-512 was detected at dispatch time.
                let mut state = unsafe {
                    match op {
                        CmpOp::Eq => $fused_words::<F_EQ>(dims, values, rhs),
                        CmpOp::Ne => $fused_words::<F_NE>(dims, values, rhs),
                        CmpOp::Lt => $fused_words::<F_LT>(dims, values, rhs),
                        CmpOp::Le => $fused_words::<F_LE>(dims, values, rhs),
                        CmpOp::Gt => $fused_words::<F_GT>(dims, values, rhs),
                        CmpOp::Ge => $fused_words::<F_GE>(dims, values, rhs),
                    }
                };
                fused_tail(dims, values, op, rhs, &mut state);
                state
            }
        };
    }

    avx512_int_kernels!(
        u8,
        word64_u8_avx512,
        cmp_words_u8_avx512,
        fused_words_u8_avx512,
        cmp_u8_avx512,
        fused_u8_avx512,
        _mm512_set1_epi8
    );
    avx512_int_kernels!(
        u16,
        word64_u16_avx512,
        cmp_words_u16_avx512,
        fused_words_u16_avx512,
        cmp_u16_avx512,
        fused_u16_avx512,
        _mm512_set1_epi16
    );
    avx512_int_kernels!(
        u32,
        word64_u32_avx512,
        cmp_words_u32_avx512,
        fused_words_u32_avx512,
        cmp_u32_avx512,
        fused_u32_avx512,
        _mm512_set1_epi32
    );
    avx512_int_kernels!(
        i64,
        word64_i64_avx512,
        cmp_words_i64_avx512,
        fused_words_i64_avx512,
        cmp_i64_avx512,
        fused_i64_avx512,
        _mm512_set1_epi64
    );

    /// # Safety
    /// `p` must be valid for reads of 64 `f64`s; requires AVX-512F.
    #[target_feature(enable = "avx512f,avx512bw")]
    #[inline]
    unsafe fn word64_f64_avx512<const IMM: i32>(p: *const f64, rhs: __m512d) -> u64 {
        let mut out = 0u64;
        let mut k = 0usize;
        while k < 8 {
            let m = _mm512_cmp_pd_mask::<IMM>(_mm512_loadu_pd(p.add(k * 8)), rhs);
            out |= (m as u64) << (k * 8);
            k += 1;
        }
        out
    }

    /// # Safety
    /// Requires AVX-512F; `words` must cover `data.len() / 64` words.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn cmp_f64_words_avx512<const IMM: i32>(data: &[f64], rhs: f64, words: &mut [u64]) {
        let rhs_v = _mm512_set1_pd(rhs);
        for (wi, chunk) in data.chunks_exact(64).enumerate() {
            words[wi] = word64_f64_avx512::<IMM>(chunk.as_ptr(), rhs_v);
        }
    }

    pub(super) fn cmp_f64_avx512(data: &[f64], op: CmpOp, rhs: f64, mask: &mut Bitmask) {
        debug_assert_eq!(data.len(), mask.len());
        let words = mask.words_mut();
        // SAFETY: AVX-512 was detected at dispatch time; IEEE predicates
        // per operator as in `cmp_f64_avx2`.
        unsafe {
            match op {
                CmpOp::Eq => cmp_f64_words_avx512::<_CMP_EQ_OQ>(data, rhs, words),
                CmpOp::Ne => cmp_f64_words_avx512::<_CMP_NEQ_UQ>(data, rhs, words),
                CmpOp::Lt => cmp_f64_words_avx512::<_CMP_LT_OQ>(data, rhs, words),
                CmpOp::Le => cmp_f64_words_avx512::<_CMP_LE_OQ>(data, rhs, words),
                CmpOp::Gt => cmp_f64_words_avx512::<_CMP_GT_OQ>(data, rhs, words),
                CmpOp::Ge => cmp_f64_words_avx512::<_CMP_GE_OQ>(data, rhs, words),
            }
        }
        scalar_tail(data, op, rhs, words);
    }

    /// # Safety
    /// Requires AVX-512F; `values.len() >= dims.len()`.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn fused_f64_words_avx512<const IMM: i32>(
        dims: &[f64],
        values: &[f64],
        rhs: f64,
    ) -> AggState {
        let rhs_v = _mm512_set1_pd(rhs);
        let mut sum = 0.0f64;
        let mut count = 0u64;
        let mut base = 0usize;
        for chunk in dims.chunks_exact(64) {
            let word = word64_f64_avx512::<IMM>(chunk.as_ptr(), rhs_v);
            accumulate_word(word, &values[base..base + 64], &mut sum, &mut count);
            base += 64;
        }
        AggState { sum, count }
    }

    pub(super) fn fused_f64_avx512(dims: &[f64], values: &[f64], op: CmpOp, rhs: f64) -> AggState {
        debug_assert_eq!(dims.len(), values.len());
        // SAFETY: AVX-512 was detected at dispatch time.
        let mut state = unsafe {
            match op {
                CmpOp::Eq => fused_f64_words_avx512::<_CMP_EQ_OQ>(dims, values, rhs),
                CmpOp::Ne => fused_f64_words_avx512::<_CMP_NEQ_UQ>(dims, values, rhs),
                CmpOp::Lt => fused_f64_words_avx512::<_CMP_LT_OQ>(dims, values, rhs),
                CmpOp::Le => fused_f64_words_avx512::<_CMP_LE_OQ>(dims, values, rhs),
                CmpOp::Gt => fused_f64_words_avx512::<_CMP_GT_OQ>(dims, values, rhs),
                CmpOp::Ge => fused_f64_words_avx512::<_CMP_GE_OQ>(dims, values, rhs),
            }
        };
        fused_tail(dims, values, op, rhs, &mut state);
        state
    }

    // ---------------------------------------------------------------
    // IN-list membership (AVX-512): `vpshufb` bit table for u8 (as the
    // AVX2 kernel, but one 64-row word per iteration and mask-register
    // membership), gather probe into the InLookup bitset for wider
    // types.
    // ---------------------------------------------------------------

    /// # Safety
    /// Requires AVX-512BW; `words` must cover `data.len() / 64` words.
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn in_words_u8_avx512(data: &[u8], table: &[u8; 32], words: &mut [u64]) {
        let lo = _mm512_broadcast_i32x4(_mm_loadu_si128(table.as_ptr().cast()));
        let hi = _mm512_broadcast_i32x4(_mm_loadu_si128(table.as_ptr().add(16).cast()));
        #[rustfmt::skip]
        let bit_of = _mm512_broadcast_i32x4(_mm_setr_epi8(
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
        ));
        for (wi, chunk) in data.chunks_exact(64).enumerate() {
            let v = _mm512_loadu_si512(chunk.as_ptr().cast());
            let idx5 = _mm512_and_si512(_mm512_srli_epi16::<3>(v), _mm512_set1_epi8(0x1F));
            let idx4 = _mm512_and_si512(idx5, _mm512_set1_epi8(0x0F));
            let t_lo = _mm512_shuffle_epi8(lo, idx4);
            let t_hi = _mm512_shuffle_epi8(hi, idx4);
            let use_hi = _mm512_test_epi8_mask(idx5, _mm512_set1_epi8(0x10));
            let t = _mm512_mask_blend_epi8(use_hi, t_lo, t_hi);
            let bitsel = _mm512_shuffle_epi8(bit_of, _mm512_and_si512(v, _mm512_set1_epi8(7)));
            // `bitsel` is a single bit per byte, so nonzero-AND ⇔ member.
            words[wi] = _mm512_test_epi8_mask(t, bitsel);
        }
    }

    pub(super) fn in_u8_avx512(data: &[u8], lookup: &InLookup, mask: &mut Bitmask) {
        debug_assert_eq!(data.len(), mask.len());
        let table = byte_bit_table(lookup);
        let words = mask.words_mut();
        // SAFETY: AVX-512 was detected at dispatch time.
        unsafe { in_words_u8_avx512(data, &table, words) };
        in_tail(data, lookup, words);
    }

    /// # Safety
    /// `p` must be valid for reads of 8 `u16`s; requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn load8_u16(p: *const u16) -> __m512i {
        _mm512_cvtepu16_epi64(_mm_loadu_si128(p.cast()))
    }

    /// # Safety
    /// `p` must be valid for reads of 8 `u32`s; requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn load8_u32(p: *const u32) -> __m512i {
        _mm512_cvtepu32_epi64(_mm256_loadu_si256(p.cast()))
    }

    /// # Safety
    /// `p` must be valid for reads of 8 `i64`s; requires AVX-512F.
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn load8_i64(p: *const i64) -> __m512i {
        _mm512_loadu_si512(p.cast())
    }

    /// Generate an AVX-512 gather-probe IN kernel: 8 rows at a time are
    /// widened to i64 lanes, rebased against the lookup's offset, range
    /// checked unsigned (exactly `InLookup::contains`'s wrapping-sub
    /// trick, vectorized), and probe their bitset word via a gather. The
    /// word index is clamped into bounds so the unmasked gather never
    /// reads past the bitset; out-of-range lanes are stripped from the
    /// final mask instead.
    macro_rules! avx512_in_probe {
        ($ty:ty, $load8:ident, $in_words:ident, $in_pub:ident) => {
            /// # Safety
            /// Requires AVX-512F; `words` must cover `data.len() / 64`
            /// words.
            #[target_feature(enable = "avx512f,avx512bw")]
            unsafe fn $in_words(data: &[$ty], lookup: &InLookup, words: &mut [u64]) {
                let bits = lookup.bits();
                let offset = _mm512_set1_epi64(lookup.offset());
                let span = _mm512_set1_epi64(bits.len() as i64 * 64);
                let last = _mm512_set1_epi64(bits.len() as i64 - 1);
                let base = bits.as_ptr() as *const i64;
                for (wi, chunk) in data.chunks_exact(64).enumerate() {
                    let p = chunk.as_ptr();
                    let mut out = 0u64;
                    let mut k = 0usize;
                    while k < 8 {
                        let idx = _mm512_sub_epi64($load8(p.add(k * 8)), offset);
                        let in_range = _mm512_cmplt_epu64_mask(idx, span);
                        let widx = _mm512_min_epu64(_mm512_srli_epi64::<6>(idx), last);
                        let word = _mm512_i64gather_epi64::<8>(widx, base);
                        let bit =
                            _mm512_srlv_epi64(word, _mm512_and_si512(idx, _mm512_set1_epi64(63)));
                        let m = in_range & _mm512_test_epi64_mask(bit, _mm512_set1_epi64(1));
                        out |= (m as u64) << (k * 8);
                        k += 1;
                    }
                    words[wi] = out;
                }
            }

            pub(super) fn $in_pub(data: &[$ty], lookup: &InLookup, mask: &mut Bitmask) {
                debug_assert_eq!(data.len(), mask.len());
                let words = mask.words_mut();
                // SAFETY: AVX-512 was detected at dispatch time.
                unsafe { $in_words(data, lookup, words) };
                in_tail(data, lookup, words);
            }
        };
    }

    avx512_in_probe!(u16, load8_u16, in_words_u16_avx512, in_u16_avx512);
    avx512_in_probe!(u32, load8_u32, in_words_u32_avx512, in_u32_avx512);
    avx512_in_probe!(i64, load8_i64, in_words_i64_avx512, in_i64_avx512);

    // ---------------------------------------------------------------
    // fast_sum masked aggregation (AVX-512): each mask-word byte drives
    // a maskz load straight into lane partials. Two independent
    // accumulators (even/odd bytes of the mask word) break the
    // loop-carried add-latency chain — the reassociation order is still
    // fixed, so the result stays deterministic for this tier.
    // ---------------------------------------------------------------

    /// # Safety
    /// Requires AVX-512F; `words` must cover `values.len()` rows with
    /// the mask-tail invariant (bits at/beyond the end zero).
    #[target_feature(enable = "avx512f,avx512bw")]
    unsafe fn agg_masked_words_avx512(values: &[f64], words: &[u64]) -> AggState {
        let mut acc0 = _mm512_setzero_pd();
        let mut acc1 = _mm512_setzero_pd();
        let mut count = 0u64;
        let full = values.len() / 64;
        let mut wi = 0usize;
        while wi < full {
            let w = words[wi];
            count += u64::from(w.count_ones());
            if w != 0 {
                let p = values.as_ptr().add(wi * 64);
                let mut k = 0usize;
                while k < 8 {
                    let m0 = ((w >> (k * 8)) & 0xFF) as __mmask8;
                    let m1 = ((w >> ((k + 1) * 8)) & 0xFF) as __mmask8;
                    acc0 = _mm512_add_pd(acc0, _mm512_maskz_loadu_pd(m0, p.add(k * 8)));
                    acc1 = _mm512_add_pd(acc1, _mm512_maskz_loadu_pd(m1, p.add((k + 1) * 8)));
                    k += 2;
                }
            }
            wi += 1;
        }
        let mut sum = _mm512_reduce_add_pd(_mm512_add_pd(acc0, acc1));
        if full < words.len() {
            let mut w = words[full];
            count += u64::from(w.count_ones());
            let base = full * 64;
            while w != 0 {
                sum += values[base + w.trailing_zeros() as usize];
                w &= w - 1;
            }
        }
        AggState { sum, count }
    }

    pub(super) fn agg_masked_fast_avx512(values: &[f64], mask: &Bitmask) -> AggState {
        debug_assert_eq!(values.len(), mask.len());
        // SAFETY: AVX-512 was detected at dispatch time.
        unsafe { agg_masked_words_avx512(values, mask.words()) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

    /// Reference mask via the scalar comparison, one row at a time.
    fn scalar_mask<T: Copy + PartialOrd>(data: &[T], op: CmpOp, rhs: T) -> Bitmask {
        Bitmask::from_fn(data.len(), |i| scalar_bool(op, data[i], rhs))
    }

    #[test]
    fn portable_tier_always_supported_and_last() {
        let sets = KernelSet::supported();
        assert!(!sets.is_empty());
        assert_eq!(sets.last().unwrap().tier(), KernelTier::Portable);
        assert!(KernelSet::for_tier(KernelTier::Portable).is_some());
    }

    #[test]
    fn active_is_stable() {
        assert_eq!(active().tier(), active_tier());
    }

    /// Guard for the CI `portable-kernels` job: when
    /// `FLASHP_FORCE_SCALAR_KERNELS` is set, dispatch **must** land on
    /// the portable tier — otherwise that job silently re-runs the SIMD
    /// suite and the forced-off path loses its only CI coverage.
    #[test]
    fn force_scalar_env_actually_forces_portable() {
        let forced = std::env::var("FLASHP_FORCE_SCALAR_KERNELS")
            .map(|v| !v.is_empty() && v != "0")
            .unwrap_or(false);
        if forced {
            assert_eq!(active_tier(), KernelTier::Portable);
        }
    }

    #[test]
    fn tier_names_round_trip() {
        for t in KernelTier::ALL {
            assert_eq!(t.to_string(), t.name());
        }
    }

    #[test]
    fn every_tier_matches_scalar_on_every_type_and_op() {
        // 130 rows: two full words + a tail; values span the full type
        // range including the rhs boundary.
        let n = 130usize;
        let u8s: Vec<u8> = (0..n).map(|i| (i * 37 % 256) as u8).collect();
        let u16s: Vec<u16> = (0..n).map(|i| (i * 997 % 65_536) as u16).collect();
        let u32s: Vec<u32> = (0..n).map(|i| (i as u32).wrapping_mul(2_654_435_761)).collect();
        let i64s: Vec<i64> = (0..n)
            .map(|i| if i % 13 == 0 { i64::MIN + i as i64 } else { i as i64 * 7 - 300 })
            .collect();
        let f64s: Vec<f64> = (0..n).map(|i| (i as f64) * 0.125 - 4.0).collect();
        let values: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 10.0).collect();
        for ks in KernelSet::supported() {
            for op in OPS {
                macro_rules! check {
                    ($data:expr, $rhs:expr, $cmp:ident, $fused:ident) => {{
                        let mut mask = Bitmask::zeros(n);
                        ks.$cmp($data, op, $rhs, &mut mask);
                        let want = scalar_mask($data, op, $rhs);
                        assert_eq!(mask, want, "{} {op:?}", ks.tier());
                        let fused = ks.$fused($data, &values, op, $rhs);
                        let mut want_state = AggState::default();
                        want.for_each_one(|i| {
                            want_state.sum += values[i];
                            want_state.count += 1;
                        });
                        assert_eq!(fused, want_state, "{} fused {op:?}", ks.tier());
                    }};
                }
                check!(&u8s, 77u8, cmp_u8, fused_u8);
                check!(&u16s, 30_000u16, cmp_u16, fused_u16);
                check!(&u32s, u32::MAX / 3, cmp_u32, fused_u32);
                check!(&i64s, -5i64, cmp_i64, fused_i64);
                check!(&f64s, 0.5f64, cmp_f64, fused_f64);
            }
        }
    }

    #[test]
    fn f64_kernels_honor_nan_semantics() {
        let specials =
            [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -0.0, 0.0, f64::MAX, f64::MIN, 1.5e-308];
        let n = 70usize;
        let data: Vec<f64> = (0..n)
            .map(|i| specials[i % specials.len()] * if i % 2 == 0 { 1.0 } else { 0.5 })
            .collect();
        let values: Vec<f64> = (0..n).map(|i| i as f64 - 30.0).collect();
        for ks in KernelSet::supported() {
            for op in OPS {
                for rhs in [0.0, f64::NAN, f64::INFINITY, -0.0] {
                    let mut mask = Bitmask::zeros(n);
                    ks.cmp_f64(&data, op, rhs, &mut mask);
                    let want = scalar_mask(&data, op, rhs);
                    assert_eq!(mask, want, "{} f64 {op:?} rhs {rhs}", ks.tier());
                    // The fused slot must select exactly the same rows and
                    // accumulate them in ascending order (bit-exact sum).
                    let fused = ks.fused_f64(&data, &values, op, rhs);
                    let mut want_state = AggState::default();
                    want.for_each_one(|i| {
                        want_state.sum += values[i];
                        want_state.count += 1;
                    });
                    assert_eq!(fused, want_state, "{} fused_f64 {op:?} rhs {rhs}", ks.tier());
                }
            }
        }
    }

    #[test]
    fn in_kernels_match_scalar_contains_on_every_tier() {
        // Lookup shapes: dense low u8 domain, sparse wide-ish span, and a
        // negative offset; lengths cover empty, sub-word, word-exact,
        // word+tail, and %8 boundaries.
        let lookup_sets: [&[i64]; 4] =
            [&[0, 1, 2, 3, 9, 200, 255], &[5], &[-300, -250, 511, 700], &[i64::MIN, 40, i64::MAX]];
        for set in lookup_sets {
            let Some(lookup) = InLookup::build(set) else {
                // Span too wide to materialize (the i64 extremes set):
                // evaluation falls back to binary search before reaching
                // the kernels, nothing to probe here.
                continue;
            };
            for n in [0usize, 7, 64, 71, 128, 130] {
                let u8s: Vec<u8> = (0..n).map(|i| (i * 29 % 256) as u8).collect();
                let u16s: Vec<u16> = (0..n).map(|i| (i * 97 % 800) as u16).collect();
                let u32s: Vec<u32> = (0..n).map(|i| (i * 13 % 900) as u32).collect();
                let i64s: Vec<i64> = (0..n)
                    .map(|i| match i % 11 {
                        0 => i64::MIN,
                        1 => i64::MAX,
                        _ => i as i64 * 17 - 400,
                    })
                    .collect();
                for ks in KernelSet::supported() {
                    macro_rules! check_in {
                        ($data:expr, $in_kernel:ident) => {{
                            let mut mask = Bitmask::zeros(n);
                            ks.$in_kernel($data, &lookup, &mut mask);
                            let want =
                                Bitmask::from_fn(n, |i| lookup.contains(i64::from($data[i])));
                            assert_eq!(
                                mask,
                                want,
                                "{} {} n={n} set={set:?}",
                                ks.tier(),
                                stringify!($in_kernel)
                            );
                        }};
                    }
                    check_in!(&u8s, in_u8);
                    check_in!(&u16s, in_u16);
                    check_in!(&u32s, in_u32);
                    check_in!(&i64s, in_i64);
                }
            }
        }
    }

    #[test]
    fn fast_agg_counts_exactly_and_masks_out_poison() {
        // NaN and ±∞ in *deselected* rows must never contaminate the sum.
        let n = 130usize;
        let values: Vec<f64> = (0..n)
            .map(|i| match i % 9 {
                0 => f64::NAN,
                1 => f64::INFINITY,
                2 => f64::NEG_INFINITY,
                _ => i as f64 * 0.25 - 10.0,
            })
            .collect();
        let mask = Bitmask::from_fn(n, |i| i % 9 > 2 && i % 5 != 0);
        let mut exact = AggState::default();
        mask.for_each_one(|i| {
            exact.sum += values[i];
            exact.count += 1;
        });
        for ks in KernelSet::supported() {
            let fast = ks.agg_masked_fast(&values, &mask);
            assert_eq!(fast.count, exact.count, "{}", ks.tier());
            assert!(fast.sum.is_finite(), "{}: deselected specials leaked in", ks.tier());
            let bound = exact.count as f64 * f64::EPSILON * 60.0 * exact.count as f64;
            assert!(
                (fast.sum - exact.sum).abs() <= bound,
                "{}: fast {} vs exact {}",
                ks.tier(),
                fast.sum,
                exact.sum
            );
            // Deterministic: same inputs, same bits.
            assert_eq!(fast.sum.to_bits(), ks.agg_masked_fast(&values, &mask).sum.to_bits());
        }
        // The portable slot aliases the exact ascending walk.
        assert_eq!(
            KernelSet::portable().agg_masked_fast(&values, &mask).sum.to_bits(),
            exact.sum.to_bits()
        );
    }

    #[test]
    fn resolve_tier_pins_and_warns_deterministically() {
        let all = [KernelTier::Avx512, KernelTier::Avx2, KernelTier::Sse2, KernelTier::Portable];
        let no_avx512 = [KernelTier::Avx2, KernelTier::Sse2, KernelTier::Portable];

        // No pin: best supported tier, silent.
        assert_eq!(resolve_tier(None, None, &all), (KernelTier::Avx512, None));
        // Valid supported pin: honored, silent.
        assert_eq!(resolve_tier(None, Some("sse2"), &all), (KernelTier::Sse2, None));
        assert_eq!(resolve_tier(None, Some(" AVX2 "), &all), (KernelTier::Avx2, None));
        assert_eq!(resolve_tier(None, Some("scalar"), &all), (KernelTier::Portable, None));

        // Unknown tier name: falls back to the best tier and says so —
        // never a silent portable downgrade.
        let (tier, warn) = resolve_tier(None, Some("avx1024"), &no_avx512);
        assert_eq!(tier, KernelTier::Avx2);
        let warn = warn.expect("unknown tier must warn");
        assert!(warn.contains("unrecognized tier \"avx1024\""), "{warn}");
        assert!(warn.contains("using avx2"), "{warn}");
        // Deterministic: the identical inputs produce the identical text.
        assert_eq!(resolve_tier(None, Some("avx1024"), &no_avx512).1.as_deref(), Some(&*warn));

        // Known but unsupported tier: explicit message naming both tiers.
        let (tier, warn) = resolve_tier(None, Some("avx512"), &no_avx512);
        assert_eq!(tier, KernelTier::Avx2);
        let warn = warn.expect("unsupported tier must warn");
        assert!(warn.contains("'avx512' is not supported"), "{warn}");
        assert!(warn.contains("using avx2"), "{warn}");

        // Force-scalar wins over any pin, silently (it is an explicit
        // off-switch, not a misconfiguration).
        assert_eq!(resolve_tier(Some("1"), Some("avx512"), &all), (KernelTier::Portable, None));
        assert_eq!(resolve_tier(Some("0"), Some("sse2"), &all), (KernelTier::Sse2, None));
    }

    #[test]
    fn empty_and_exact_word_lengths() {
        for ks in KernelSet::supported() {
            for n in [0usize, 64, 128] {
                let data: Vec<u8> = (0..n).map(|i| i as u8).collect();
                let mut mask = Bitmask::zeros(n);
                ks.cmp_u8(&data, CmpOp::Ne, 3, &mut mask);
                assert_eq!(mask, scalar_mask(&data, CmpOp::Ne, 3), "{} n={n}", ks.tier());
            }
        }
    }
}
