//! Table schemas: ordered dimensions and measures plus the implicit time
//! column, mirroring the paper's
//! `(a(1), …, a(da); m(1), …, m(dm); t)` layout.

use crate::error::StorageError;
use crate::types::DataType;
use std::collections::HashMap;
use std::sync::Arc;

/// Definition of a dimension column `a(i)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimensionDef {
    pub name: String,
    pub dtype: DataType,
}

/// Definition of a measure column `m(j)`. Measures are always `f64`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeasureDef {
    pub name: String,
}

/// Immutable table schema. Cheap to clone (wrap in [`Arc`] via
/// [`Schema::into_shared`]) because every partition and sample references
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    dimensions: Vec<DimensionDef>,
    measures: Vec<MeasureDef>,
    dim_index: HashMap<String, usize>,
    measure_index: HashMap<String, usize>,
}

/// Shared handle to a schema.
pub type SchemaRef = Arc<Schema>;

impl Schema {
    /// Build a schema from dimension `(name, type)` pairs and measure names.
    /// Column names are case-sensitive and must be unique across both lists.
    pub fn new<D, M>(dimensions: D, measures: M) -> Result<Self, StorageError>
    where
        D: IntoIterator<Item = (String, DataType)>,
        M: IntoIterator<Item = String>,
    {
        let dimensions: Vec<DimensionDef> =
            dimensions.into_iter().map(|(name, dtype)| DimensionDef { name, dtype }).collect();
        let measures: Vec<MeasureDef> =
            measures.into_iter().map(|name| MeasureDef { name }).collect();

        let mut dim_index = HashMap::with_capacity(dimensions.len());
        for (i, d) in dimensions.iter().enumerate() {
            if dim_index.insert(d.name.clone(), i).is_some() {
                return Err(StorageError::UnknownColumn(format!(
                    "duplicate dimension name {}",
                    d.name
                )));
            }
        }
        let mut measure_index = HashMap::with_capacity(measures.len());
        for (i, m) in measures.iter().enumerate() {
            if dim_index.contains_key(&m.name) || measure_index.insert(m.name.clone(), i).is_some()
            {
                return Err(StorageError::UnknownColumn(format!(
                    "duplicate column name {}",
                    m.name
                )));
            }
        }
        Ok(Schema { dimensions, measures, dim_index, measure_index })
    }

    /// Convenience constructor from `&str` slices.
    pub fn from_names(
        dimensions: &[(&str, DataType)],
        measures: &[&str],
    ) -> Result<Self, StorageError> {
        Schema::new(
            dimensions.iter().map(|(n, t)| (n.to_string(), *t)),
            measures.iter().map(|n| n.to_string()),
        )
    }

    /// Wrap into an [`Arc`] for sharing across partitions and samples.
    pub fn into_shared(self) -> SchemaRef {
        Arc::new(self)
    }

    pub fn dimensions(&self) -> &[DimensionDef] {
        &self.dimensions
    }

    pub fn measures(&self) -> &[MeasureDef] {
        &self.measures
    }

    pub fn num_dimensions(&self) -> usize {
        self.dimensions.len()
    }

    pub fn num_measures(&self) -> usize {
        self.measures.len()
    }

    /// Index of the dimension named `name`.
    pub fn dimension_index(&self, name: &str) -> Result<usize, StorageError> {
        self.dim_index
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Index of the measure named `name`.
    pub fn measure_index(&self, name: &str) -> Result<usize, StorageError> {
        self.measure_index
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Definition of dimension `idx`.
    pub fn dimension(&self, idx: usize) -> Result<&DimensionDef, StorageError> {
        self.dimensions
            .get(idx)
            .ok_or(StorageError::ColumnIndexOutOfRange { index: idx, len: self.dimensions.len() })
    }

    /// Definition of measure `idx`.
    pub fn measure(&self, idx: usize) -> Result<&MeasureDef, StorageError> {
        self.measures
            .get(idx)
            .ok_or(StorageError::ColumnIndexOutOfRange { index: idx, len: self.measures.len() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn figure1_schema() -> Schema {
        // The running example of Fig. 1.
        Schema::from_names(
            &[
                ("Age", DataType::UInt8),
                ("Gender", DataType::Categorical),
                ("Location", DataType::Categorical),
            ],
            &["Impression", "ViewTime"],
        )
        .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = figure1_schema();
        assert_eq!(s.dimension_index("Age").unwrap(), 0);
        assert_eq!(s.dimension_index("Location").unwrap(), 2);
        assert_eq!(s.measure_index("ViewTime").unwrap(), 1);
        assert!(s.dimension_index("Impression").is_err());
        assert!(s.measure_index("Age").is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(Schema::from_names(&[("Age", DataType::UInt8), ("Age", DataType::Int64)], &["m"],)
            .is_err());
        assert!(Schema::from_names(&[("x", DataType::UInt8)], &["x"]).is_err());
    }

    #[test]
    fn counts() {
        let s = figure1_schema();
        assert_eq!(s.num_dimensions(), 3);
        assert_eq!(s.num_measures(), 2);
        assert_eq!(s.dimension(1).unwrap().name, "Gender");
        assert!(s.dimension(9).is_err());
    }
}
