//! Time partitions: all rows observed at one timestamp.

use crate::column::{Dictionary, DimensionColumn};
use crate::error::StorageError;
use crate::schema::Schema;
use crate::stats::ZoneMaps;
use crate::types::Value;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide monotone source for [`Partition::id`]. Ids are never
/// reused, so an id held by a dropped partition can never alias a live
/// one.
static NEXT_PARTITION_ID: AtomicU64 = AtomicU64::new(1);

fn next_partition_id() -> u64 {
    NEXT_PARTITION_ID.fetch_add(1, Ordering::Relaxed)
}

/// The rows of one time partition in columnar form: one
/// [`DimensionColumn`] per dimension and one dense `f64` vector per
/// measure. Partitions are immutable once inserted into a table except via
/// [`Partition::push_row`], which the table uses for row-level ingestion.
#[derive(Debug)]
pub struct Partition {
    /// Process-unique structural identity; see [`Partition::id`].
    id: u64,
    dims: Vec<DimensionColumn>,
    measures: Vec<Vec<f64>>,
    num_rows: usize,
    zone_maps: ZoneMaps,
}

/// Clones take a **fresh** identity: every clone site either mutates the
/// copy next (the table's copy-on-write `Arc::make_mut` paths) or hands it
/// to an independent table, so sharing the source's id would let a cache
/// keyed on partition identity serve stale data.
impl Clone for Partition {
    fn clone(&self) -> Self {
        Partition {
            id: next_partition_id(),
            dims: self.dims.clone(),
            measures: self.measures.clone(),
            num_rows: self.num_rows,
            zone_maps: self.zone_maps.clone(),
        }
    }
}

impl Default for Partition {
    fn default() -> Self {
        Partition {
            id: next_partition_id(),
            dims: Vec::new(),
            measures: Vec::new(),
            num_rows: 0,
            zone_maps: ZoneMaps::default(),
        }
    }
}

impl Partition {
    /// An empty partition shaped like `schema`.
    pub fn empty(schema: &Schema) -> Self {
        Partition {
            id: next_partition_id(),
            dims: schema.dimensions().iter().map(|d| DimensionColumn::new(d.dtype)).collect(),
            measures: vec![Vec::new(); schema.num_measures()],
            num_rows: 0,
            zone_maps: ZoneMaps::empty(schema.num_dimensions()),
        }
    }

    /// Process-unique structural identity of this partition object.
    ///
    /// A fresh id is drawn on every construction *and every clone*, and
    /// ids are never reused, so two observations of the same id always
    /// refer to the same physical columns. Rows may still be appended in
    /// place (`push_row`/`extend`) while the id stays — but only on
    /// partitions not yet shared with a published table version (the
    /// table's append paths go through `Arc::make_mut`, which clones — and
    /// re-ids — any partition a reader could still hold). Caches that key
    /// on identity must therefore only observe partitions through
    /// immutable snapshots, which is exactly how query execution sees
    /// them.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Assemble a partition from pre-built columns. All columns must have
    /// equal length.
    pub fn from_columns(
        dims: Vec<DimensionColumn>,
        measures: Vec<Vec<f64>>,
    ) -> Result<Self, StorageError> {
        let num_rows = dims
            .first()
            .map(|c| c.len())
            .or_else(|| measures.first().map(|m| m.len()))
            .unwrap_or(0);
        for c in &dims {
            if c.len() != num_rows {
                return Err(StorageError::LengthMismatch { expected: num_rows, got: c.len() });
            }
        }
        for m in &measures {
            if m.len() != num_rows {
                return Err(StorageError::LengthMismatch { expected: num_rows, got: m.len() });
            }
        }
        let zone_maps = ZoneMaps::compute(&dims);
        Ok(Partition { id: next_partition_id(), dims, measures, num_rows, zone_maps })
    }

    /// Number of rows in this partition (the paper's per-timestamp `N`).
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Dimension column `idx`.
    pub fn dim(&self, idx: usize) -> &DimensionColumn {
        &self.dims[idx]
    }

    /// All dimension columns.
    pub fn dims(&self) -> &[DimensionColumn] {
        &self.dims
    }

    /// Measure column `idx` (`m(idx)` in the paper).
    pub fn measure(&self, idx: usize) -> &[f64] {
        &self.measures[idx]
    }

    /// All measure columns.
    pub fn measures(&self) -> &[Vec<f64>] {
        &self.measures
    }

    /// Zone maps (per-dimension min/max) for partition pruning.
    pub fn zone_maps(&self) -> &ZoneMaps {
        &self.zone_maps
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.dims.iter().map(|c| c.byte_size()).sum::<usize>()
            + self.measures.len() * self.num_rows * 8
    }

    /// Append every row of `other` column-wise — the merge step when a
    /// batch of late-arriving rows lands on a day that already has a
    /// partition. Column counts and types must match; zone maps extend by
    /// merging the two partitions' ranges.
    pub fn extend(&mut self, other: &Partition) -> Result<(), StorageError> {
        if other.dims.len() != self.dims.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.dims.len(),
                got: other.dims.len(),
            });
        }
        if other.measures.len() != self.measures.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.measures.len(),
                got: other.measures.len(),
            });
        }
        // Validate every column type before mutating anything, so a
        // mismatch cannot leave the partition with ragged columns.
        for (i, (a, b)) in self.dims.iter().zip(&other.dims).enumerate() {
            if a.dtype() != b.dtype() {
                return Err(StorageError::TypeMismatch {
                    column: format!("dim{i}"),
                    expected: "matching column type",
                    got: format!("{} appended to {}", b.dtype(), a.dtype()),
                });
            }
        }
        for (i, (a, b)) in self.dims.iter_mut().zip(&other.dims).enumerate() {
            a.extend_from(&format!("dim{i}"), b)?;
        }
        for (a, b) in self.measures.iter_mut().zip(&other.measures) {
            a.extend_from_slice(b);
        }
        self.num_rows += other.num_rows;
        self.zone_maps.merge(&other.zone_maps);
        Ok(())
    }

    /// Append one row. `dims` must match the schema's dimension order and
    /// `measures` its measure order; categorical values are interned into
    /// `dicts`.
    pub fn push_row(
        &mut self,
        schema: &Schema,
        dicts: &mut [Option<Dictionary>],
        dims: &[Value],
        measures: &[f64],
    ) -> Result<(), StorageError> {
        if dims.len() != schema.num_dimensions() {
            return Err(StorageError::LengthMismatch {
                expected: schema.num_dimensions(),
                got: dims.len(),
            });
        }
        if measures.len() != schema.num_measures() {
            return Err(StorageError::LengthMismatch {
                expected: schema.num_measures(),
                got: measures.len(),
            });
        }
        for (i, (col, value)) in self.dims.iter_mut().zip(dims).enumerate() {
            let name = &schema.dimensions()[i].name;
            match value {
                Value::Int(v) => col.push_int(name, *v)?,
                Value::Float(v) => col.push_float(name, *v)?,
                Value::Str(s) => {
                    let dict = dicts[i].get_or_insert_with(Dictionary::new);
                    let code = dict.intern(s);
                    col.push_code(name, code)?;
                }
            }
        }
        for (col, v) in self.measures.iter_mut().zip(measures) {
            col.push(*v);
        }
        self.num_rows += 1;
        self.zone_maps.observe_row(&self.dims, self.num_rows - 1);
        Ok(())
    }
}

/// Bulk columnar builder for a partition — the fast path used by data
/// generators and samplers. Rows are appended column-at-a-time or
/// row-at-a-time with pre-interned codes.
#[derive(Debug)]
pub struct PartitionBuilder {
    dims: Vec<DimensionColumn>,
    measures: Vec<Vec<f64>>,
    num_rows: usize,
}

impl PartitionBuilder {
    /// New builder shaped like `schema`, pre-allocating `capacity` rows.
    pub fn with_capacity(schema: &Schema, capacity: usize) -> Self {
        PartitionBuilder {
            dims: schema
                .dimensions()
                .iter()
                .map(|d| DimensionColumn::with_capacity(d.dtype, capacity))
                .collect(),
            measures: vec![Vec::with_capacity(capacity); schema.num_measures()],
            num_rows: 0,
        }
    }

    /// Append one row of raw numeric dimension values (dictionary codes for
    /// categorical columns) and measures. The caller is responsible for
    /// having interned any categorical codes beforehand.
    pub fn push_raw_row(
        &mut self,
        dim_values: &[i64],
        measures: &[f64],
    ) -> Result<(), StorageError> {
        if dim_values.len() != self.dims.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.dims.len(),
                got: dim_values.len(),
            });
        }
        if measures.len() != self.measures.len() {
            return Err(StorageError::LengthMismatch {
                expected: self.measures.len(),
                got: measures.len(),
            });
        }
        for (col, &v) in self.dims.iter_mut().zip(dim_values) {
            match col {
                DimensionColumn::Dict(_) => {
                    let code = u32::try_from(v).map_err(|_| StorageError::TypeMismatch {
                        column: "<raw>".to_string(),
                        expected: "u32 code",
                        got: v.to_string(),
                    })?;
                    col.push_code("<raw>", code)?;
                }
                // Raw float rows travel as the `get_i64` bit pattern, so
                // sampler re-materialization round-trips bit-exactly (NaN
                // payloads and -0.0 included).
                DimensionColumn::Float64(_) => col.push_float("<raw>", f64::from_bits(v as u64))?,
                _ => col.push_int("<raw>", v)?,
            }
        }
        for (col, &v) in self.measures.iter_mut().zip(measures) {
            col.push(v);
        }
        self.num_rows += 1;
        Ok(())
    }

    /// Rows appended so far.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Finish, computing zone maps.
    pub fn finish(self) -> Partition {
        let zone_maps = ZoneMaps::compute(&self.dims);
        Partition {
            id: next_partition_id(),
            dims: self.dims,
            measures: self.measures,
            num_rows: self.num_rows,
            zone_maps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::DataType;

    fn schema() -> Schema {
        Schema::from_names(
            &[("Age", DataType::UInt8), ("Gender", DataType::Categorical)],
            &["Impression", "ViewTime"],
        )
        .unwrap()
    }

    #[test]
    fn push_row_interns_and_counts() {
        let s = schema();
        let mut dicts: Vec<Option<Dictionary>> = vec![None, None];
        let mut p = Partition::empty(&s);
        p.push_row(&s, &mut dicts, &[Value::Int(30), Value::from("F")], &[5.0, 1.6]).unwrap();
        p.push_row(&s, &mut dicts, &[Value::Int(60), Value::from("M")], &[1.0, 1.8]).unwrap();
        p.push_row(&s, &mut dicts, &[Value::Int(20), Value::from("F")], &[10.0, 3.2]).unwrap();
        assert_eq!(p.num_rows(), 3);
        assert_eq!(p.measure(0), &[5.0, 1.0, 10.0]);
        // "F" interned once.
        assert_eq!(dicts[1].as_ref().unwrap().len(), 2);
        assert_eq!(p.dim(1).get_i64(0), p.dim(1).get_i64(2));
    }

    #[test]
    fn push_row_validates_arity() {
        let s = schema();
        let mut dicts: Vec<Option<Dictionary>> = vec![None, None];
        let mut p = Partition::empty(&s);
        assert!(p.push_row(&s, &mut dicts, &[Value::Int(30)], &[5.0, 1.6]).is_err());
        assert!(p.push_row(&s, &mut dicts, &[Value::Int(30), Value::from("F")], &[5.0]).is_err());
    }

    #[test]
    fn builder_bulk_path() {
        let s = schema();
        let mut b = PartitionBuilder::with_capacity(&s, 4);
        b.push_raw_row(&[30, 0], &[5.0, 1.6]).unwrap();
        b.push_raw_row(&[60, 1], &[1.0, 1.8]).unwrap();
        let p = b.finish();
        assert_eq!(p.num_rows(), 2);
        assert_eq!(p.zone_maps().range(0), Some((30, 60)));
    }

    #[test]
    fn float_dimensions_round_trip_the_raw_row_path() {
        let s = Schema::from_names(&[("score", DataType::Float64)], &["m"]).unwrap();
        let mut direct = Partition::empty(&s);
        let mut dicts: Vec<Option<Dictionary>> = vec![None];
        for v in [1.5, -0.0, f64::NAN, f64::NEG_INFINITY] {
            direct.push_row(&s, &mut dicts, &[Value::Float(v)], &[1.0]).unwrap();
        }
        // The sampler absorb path: rows travel as get_i64 bit patterns
        // through PartitionBuilder::push_raw_row and come back identical.
        let mut b = PartitionBuilder::with_capacity(&s, 4);
        for i in 0..direct.num_rows() {
            b.push_raw_row(&[direct.dim(0).get_i64(i)], &[1.0]).unwrap();
        }
        let rebuilt = b.finish();
        for i in 0..direct.num_rows() {
            assert_eq!(rebuilt.dim(0).get_f64(i).to_bits(), direct.dim(0).get_f64(i).to_bits());
        }
        // Zone maps see float values, not bit patterns.
        assert_eq!(rebuilt.zone_maps().float_range(0), Some((f64::NEG_INFINITY, 1.5, true)));
    }

    #[test]
    fn from_columns_validates_lengths() {
        let dims = vec![DimensionColumn::Int64(vec![1, 2, 3])];
        let bad = vec![vec![1.0, 2.0]];
        assert!(Partition::from_columns(dims.clone(), bad).is_err());
        let ok = vec![vec![1.0, 2.0, 3.0]];
        let p = Partition::from_columns(dims, ok).unwrap();
        assert_eq!(p.num_rows(), 3);
    }
}
