//! Minimal scoped-thread parallel map used for partition scans and sample
//! builds. The paper runs aggregation on a distributed OLAP engine
//! (Hologres); here partitions are processed by a pool of scoped threads,
//! which preserves the per-partition independence the system relies on.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of worker threads to use: `FLASHP_THREADS` env var if set,
/// otherwise the machine's available parallelism.
///
/// Resolved **once per process** and cached: callers that build a
/// [`crate::ScanOptions`] or an engine configuration per query no longer
/// re-read the environment each time, and every subsystem (scans, the
/// catalog build work queue, parallel `apply_delta`) sizes its one pool
/// from the same number — an engine passes its configured
/// `config.threads` down instead of letting each layer re-derive its
/// own, which is what used to oversubscribe nested parallel sections.
pub fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        if let Ok(v) = std::env::var("FLASHP_THREADS") {
            if let Ok(n) = v.parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    })
}

/// Apply `f` to every element of `items` in parallel, preserving order of
/// results. Work is distributed dynamically (atomic work-stealing index) so
/// skewed partition sizes do not stall the scan.
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_with(items, threads, || (), |(), item| f(item))
}

/// [`parallel_map`] with per-worker mutable state: each worker thread calls
/// `init` once and hands `f` a `&mut` to its state for every item it
/// processes. This is how scan and estimation loops reuse one
/// [`crate::MaskScratch`] (and its mask buffers) across all partitions a
/// worker touches, instead of allocating per partition.
pub fn parallel_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(n);
    if threads == 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }

    let mut results: Vec<Option<R>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let next = AtomicUsize::new(0);
    // Hand each worker a disjoint set of result slots via raw chunk pointers:
    // instead we collect (index, value) pairs per worker and merge, which
    // avoids unsafe at the cost of one extra move per item.
    let mut collected: Vec<Vec<(usize, R)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let f = &f;
            let init = &init;
            handles.push(scope.spawn(move || {
                let mut state = init();
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    local.push((i, f(&mut state, &items[i])));
                }
                local
            }));
        }
        for h in handles {
            collected.push(h.join().expect("worker thread panicked"));
        }
    });
    for batch in collected {
        for (i, r) in batch {
            results[i] = Some(r);
        }
    }
    results.into_iter().map(|r| r.expect("every index processed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = parallel_map(&items, 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_and_empty() {
        let items: Vec<u64> = vec![];
        assert!(parallel_map(&items, 4, |x| *x).is_empty());
        let items = vec![7u64];
        assert_eq!(parallel_map(&items, 8, |x| *x + 1), vec![8]);
    }

    #[test]
    fn skewed_work_completes() {
        // One heavy item plus many light ones; dynamic scheduling must not
        // deadlock or drop results.
        let items: Vec<usize> = (0..64).collect();
        let out =
            parallel_map(
                &items,
                8,
                |&x| {
                    if x == 0 {
                        (0..100_000u64).sum::<u64>() as usize
                    } else {
                        x
                    }
                },
            );
        assert_eq!(out.len(), 64);
        assert_eq!(out[1], 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        // Each worker's state counts how many items it processed; the
        // counts must sum to the item count (every item handled once by
        // exactly one worker-owned state).
        use std::sync::atomic::{AtomicUsize, Ordering};
        let items: Vec<u64> = (0..500).collect();
        let total = AtomicUsize::new(0);
        let out = parallel_map_with(
            &items,
            4,
            || 0usize,
            |seen, &x| {
                *seen += 1;
                total.fetch_max(*seen, Ordering::Relaxed);
                x + 1
            },
        );
        assert_eq!(out, (1..=500).collect::<Vec<u64>>());
        // At least one worker processed more than one item, proving state
        // persistence across items (500 items over 4 workers).
        assert!(total.load(Ordering::Relaxed) > 1);
    }
}
