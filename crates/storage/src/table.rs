//! The time series of relation `T` — partitions keyed by timestamp plus
//! table-level dictionaries and schema.

use crate::aggregate::{aggregate_masked, AggFunc, AggState};
use crate::column::Dictionary;
use crate::error::StorageError;
use crate::partition::Partition;
use crate::predicate::{CompiledPredicate, MaskScratch, Predicate};
use crate::schema::SchemaRef;
use crate::timestamp::Timestamp;
use crate::types::Value;
use std::collections::BTreeMap;

/// A time series of relational data: the input of the FlashP pipeline
/// (Fig. 1 of the paper). Rows live in per-timestamp [`Partition`]s;
/// categorical dictionaries are shared table-wide so a predicate binds to
/// the same codes in every partition and in every sample drawn from the
/// table.
#[derive(Debug)]
pub struct TimeSeriesTable {
    schema: SchemaRef,
    dicts: Vec<Option<Dictionary>>,
    partitions: BTreeMap<Timestamp, Partition>,
}

impl TimeSeriesTable {
    /// Create an empty table with the given schema.
    pub fn new(schema: SchemaRef) -> Self {
        let dims = schema.num_dimensions();
        TimeSeriesTable {
            schema,
            dicts: (0..dims).map(|_| None).collect(),
            partitions: BTreeMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Table-level dictionaries, indexed by dimension (non-categorical
    /// dimensions are `None`).
    pub fn dictionaries(&self) -> &[Option<Dictionary>] {
        &self.dicts
    }

    /// Intern a categorical value for dimension `dim` and return its code —
    /// used by bulk generators that build partitions columnar-fashion.
    pub fn intern(&mut self, dim: usize, value: &str) -> Result<u32, StorageError> {
        let def = self.schema.dimension(dim)?;
        if def.dtype != crate::types::DataType::Categorical {
            return Err(StorageError::TypeMismatch {
                column: def.name.clone(),
                expected: "categorical",
                got: value.to_string(),
            });
        }
        Ok(self.dicts[dim].get_or_insert_with(Dictionary::new).intern(value))
    }

    /// Insert (or replace) the partition at `t`.
    pub fn insert_partition(&mut self, t: Timestamp, partition: Partition) {
        self.partitions.insert(t, partition);
    }

    /// Append a single row at timestamp `t`, creating the partition if
    /// needed. This is the slow, convenient ingestion path.
    pub fn append_row(
        &mut self,
        t: Timestamp,
        dims: &[Value],
        measures: &[f64],
    ) -> Result<(), StorageError> {
        let schema = self.schema.clone();
        let partition = self.partitions.entry(t).or_insert_with(|| Partition::empty(&schema));
        partition.push_row(&schema, &mut self.dicts, dims, measures)
    }

    /// The partition at `t`, if any.
    pub fn partition(&self, t: Timestamp) -> Option<&Partition> {
        self.partitions.get(&t)
    }

    /// Iterate `(timestamp, partition)` in time order.
    pub fn partitions(&self) -> impl Iterator<Item = (Timestamp, &Partition)> {
        self.partitions.iter().map(|(t, p)| (*t, p))
    }

    /// Iterate partitions restricted to `[start, end]` inclusive.
    pub fn partitions_in(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> impl Iterator<Item = (Timestamp, &Partition)> {
        self.partitions.range(start..=end).map(|(t, p)| (*t, p))
    }

    /// Number of partitions (distinct timestamps).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of rows across all partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.values().map(Partition::num_rows).sum()
    }

    /// Earliest and latest timestamps, if the table is non-empty.
    pub fn time_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        let first = *self.partitions.keys().next()?;
        let last = *self.partitions.keys().next_back()?;
        Some((first, last))
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.partitions.values().map(Partition::byte_size).sum()
    }

    /// Bind a predicate to this table (resolve names and dictionary codes).
    pub fn compile_predicate(&self, pred: &Predicate) -> Result<CompiledPredicate, StorageError> {
        pred.compile(&self.schema, &self.dicts)
    }

    /// Exact aggregate of `measure_idx` under `pred` at one timestamp —
    /// one query of the batch in Eq. (4).
    pub fn aggregate_at(
        &self,
        t: Timestamp,
        measure_idx: usize,
        pred: &CompiledPredicate,
        func: AggFunc,
    ) -> Result<f64, StorageError> {
        let p = self.partitions.get(&t).ok_or(StorageError::NoSuchPartition(t.0))?;
        Ok(eval_partition(p, measure_idx, pred).finalize(func))
    }

    /// Fraction of rows at `t` matching `pred` (the paper's *selectivity*).
    pub fn selectivity_at(
        &self,
        t: Timestamp,
        pred: &CompiledPredicate,
    ) -> Result<f64, StorageError> {
        let p = self.partitions.get(&t).ok_or(StorageError::NoSuchPartition(t.0))?;
        if p.num_rows() == 0 {
            return Ok(0.0);
        }
        Ok(pred.evaluate(p).count_ones() as f64 / p.num_rows() as f64)
    }
}

/// Evaluate one partition: zone-map prune, then mask + aggregate.
pub(crate) fn eval_partition(
    partition: &Partition,
    measure_idx: usize,
    pred: &CompiledPredicate,
) -> AggState {
    eval_partition_with(partition, measure_idx, pred, &mut MaskScratch::new())
}

/// [`eval_partition`] drawing mask buffers from `scratch` so range scans
/// reuse allocations across partitions. Single-comparison predicates and
/// constants skip mask materialization entirely via the fused kernels.
pub(crate) fn eval_partition_with(
    partition: &Partition,
    measure_idx: usize,
    pred: &CompiledPredicate,
    scratch: &mut MaskScratch,
) -> AggState {
    if !pred.may_match(partition.zone_maps()) {
        return AggState::default();
    }
    match pred {
        CompiledPredicate::Const(false) => AggState::default(),
        CompiledPredicate::Const(true) => crate::aggregate::aggregate_all(partition, measure_idx),
        CompiledPredicate::Cmp { dim, op, value } => {
            crate::aggregate::aggregate_filtered(partition, measure_idx, *dim, *op, *value)
        }
        _ => {
            let mask = pred.evaluate_into(partition, scratch);
            let state = aggregate_masked(partition, measure_idx, &mask);
            scratch.release(mask);
            state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn figure1_table() -> TimeSeriesTable {
        let schema = Schema::from_names(
            &[
                ("Age", DataType::UInt8),
                ("Gender", DataType::Categorical),
                ("Location", DataType::Categorical),
            ],
            &["Impression", "ViewTime"],
        )
        .unwrap()
        .into_shared();
        let mut table = TimeSeriesTable::new(schema);
        let d1 = Timestamp::from_yyyymmdd(20200301).unwrap();
        let d2 = Timestamp::from_yyyymmdd(20200302).unwrap();
        let rows = [
            (30, "F", "WA", 5.0, 1.6, d1),
            (60, "M", "WA", 1.0, 1.8, d1),
            (20, "F", "NY", 10.0, 3.2, d1),
            (40, "M", "NY", 20.0, 6.3, d2),
        ];
        for (age, g, loc, imp, vt, t) in rows {
            table
                .append_row(t, &[Value::Int(age), Value::from(g), Value::from(loc)], &[imp, vt])
                .unwrap();
        }
        table
    }

    #[test]
    fn figure2_aggregation() {
        // SELECT SUM(Impression) WHERE Age <= 30 AND Gender = 'F' AND t = 20200301
        let table = figure1_table();
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        let compiled = table.compile_predicate(&pred).unwrap();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        let m = table.aggregate_at(t, 0, &compiled, AggFunc::Sum).unwrap();
        assert_eq!(m, 15.0);
        // Day 2 has no matching rows.
        let t2 = Timestamp::from_yyyymmdd(20200302).unwrap();
        assert_eq!(table.aggregate_at(t2, 0, &compiled, AggFunc::Sum).unwrap(), 0.0);
    }

    #[test]
    fn count_and_avg() {
        let table = figure1_table();
        let pred = table.compile_predicate(&Predicate::True).unwrap();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        assert_eq!(table.aggregate_at(t, 0, &pred, AggFunc::Count).unwrap(), 3.0);
        assert!((table.aggregate_at(t, 1, &pred, AggFunc::Avg).unwrap() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn selectivity() {
        let table = figure1_table();
        let pred = table.compile_predicate(&Predicate::eq("Gender", "F")).unwrap();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        assert!((table.selectivity_at(t, &pred).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_and_sizes() {
        let table = figure1_table();
        let (lo, hi) = table.time_bounds().unwrap();
        assert_eq!(lo.to_yyyymmdd(), 20200301);
        assert_eq!(hi.to_yyyymmdd(), 20200302);
        assert_eq!(table.num_partitions(), 2);
        assert_eq!(table.num_rows(), 4);
        assert!(table.byte_size() > 0);
    }

    #[test]
    fn missing_partition_errors() {
        let table = figure1_table();
        let pred = table.compile_predicate(&Predicate::True).unwrap();
        let t = Timestamp::from_yyyymmdd(20210101).unwrap();
        assert!(table.aggregate_at(t, 0, &pred, AggFunc::Sum).is_err());
    }

    #[test]
    fn intern_rejects_numeric_dims() {
        let mut table = figure1_table();
        assert!(table.intern(0, "x").is_err());
        let code = table.intern(1, "F").unwrap();
        // Already interned by append_row — must return the same code.
        assert_eq!(table.dictionaries()[1].as_ref().unwrap().lookup("F"), Some(code));
    }
}
