//! The time series of relation `T` — partitions keyed by timestamp plus
//! table-level dictionaries and schema.

use crate::aggregate::{aggregate_masked, AggFunc, AggState};
use crate::column::Dictionary;
use crate::error::StorageError;
use crate::partition::Partition;
use crate::predicate::{CompiledPredicate, MaskScratch, Predicate};
use crate::scan::SumMode;
use crate::schema::SchemaRef;
use crate::timestamp::Timestamp;
use crate::types::Value;
use std::collections::BTreeMap;
use std::sync::Arc;

/// A time series of relational data: the input of the FlashP pipeline
/// (Fig. 1 of the paper). Rows live in per-timestamp [`Partition`]s;
/// categorical dictionaries are shared table-wide so a predicate binds to
/// the same codes in every partition and in every sample drawn from the
/// table.
///
/// Partitions are held behind [`Arc`]s, so cloning a table is cheap —
/// O(#partitions) pointer copies, no row data — and mutation after a
/// clone is copy-on-write at partition granularity. This is what makes
/// versioned live ingest possible: the engine clones the active table,
/// appends a batch (touching only the affected days), and publishes the
/// clone as a new immutable version while readers keep scanning the old
/// one.
#[derive(Debug, Clone)]
pub struct TimeSeriesTable {
    schema: SchemaRef,
    dicts: Vec<Option<Dictionary>>,
    partitions: BTreeMap<Timestamp, Arc<Partition>>,
}

impl TimeSeriesTable {
    /// Create an empty table with the given schema.
    pub fn new(schema: SchemaRef) -> Self {
        let dims = schema.num_dimensions();
        TimeSeriesTable {
            schema,
            dicts: (0..dims).map(|_| None).collect(),
            partitions: BTreeMap::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// Table-level dictionaries, indexed by dimension (non-categorical
    /// dimensions are `None`).
    pub fn dictionaries(&self) -> &[Option<Dictionary>] {
        &self.dicts
    }

    /// Intern a categorical value for dimension `dim` and return its code —
    /// used by bulk generators that build partitions columnar-fashion.
    pub fn intern(&mut self, dim: usize, value: &str) -> Result<u32, StorageError> {
        let def = self.schema.dimension(dim)?;
        if def.dtype != crate::types::DataType::Categorical {
            return Err(StorageError::TypeMismatch {
                column: def.name.clone(),
                expected: "categorical",
                got: value.to_string(),
            });
        }
        Ok(self.dicts[dim].get_or_insert_with(Dictionary::new).intern(value))
    }

    /// Insert (or replace) the partition at `t`.
    pub fn insert_partition(&mut self, t: Timestamp, partition: Partition) {
        self.partitions.insert(t, Arc::new(partition));
    }

    /// Append a single row at timestamp `t`, creating the partition if
    /// needed. This is the slow, convenient ingestion path.
    pub fn append_row(
        &mut self,
        t: Timestamp,
        dims: &[Value],
        measures: &[f64],
    ) -> Result<(), StorageError> {
        let schema = self.schema.clone();
        let partition =
            self.partitions.entry(t).or_insert_with(|| Arc::new(Partition::empty(&schema)));
        Arc::make_mut(partition).push_row(&schema, &mut self.dicts, dims, measures)
    }

    /// Append a batch of rows at timestamp `t`, creating the partition if
    /// needed. Categorical values are interned into the table's
    /// dictionaries. Returns the number of rows appended. Copy-on-write:
    /// if the partition is shared with an older table version (a clone),
    /// it is cloned once before the batch lands; older versions never
    /// observe the new rows.
    pub fn append_rows<'a>(
        &mut self,
        t: Timestamp,
        rows: impl IntoIterator<Item = (&'a [Value], &'a [f64])>,
    ) -> Result<usize, StorageError> {
        let schema = self.schema.clone();
        let partition =
            self.partitions.entry(t).or_insert_with(|| Arc::new(Partition::empty(&schema)));
        let partition = Arc::make_mut(partition);
        let mut appended = 0;
        for (dims, measures) in rows {
            partition.push_row(&schema, &mut self.dicts, dims, measures)?;
            appended += 1;
        }
        Ok(appended)
    }

    /// Append a pre-built columnar partition of rows at timestamp `t` —
    /// the fast ingest path for late-arriving days and streamed batches.
    /// If a partition already exists at `t`, the new rows are concatenated
    /// after the existing ones (copy-on-write when the existing partition
    /// is shared with an older table version); otherwise the partition is
    /// inserted as-is. Dictionary codes in categorical columns must have
    /// been interned against this table (see [`TimeSeriesTable::intern`]).
    /// Returns the number of rows appended.
    pub fn append_partition(
        &mut self,
        t: Timestamp,
        partition: Partition,
    ) -> Result<usize, StorageError> {
        self.check_partition_shape(&partition)?;
        let appended = partition.num_rows();
        match self.partitions.entry(t) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(Arc::new(partition));
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                Arc::make_mut(slot.get_mut()).extend(&partition)?;
            }
        }
        Ok(appended)
    }

    /// Validate that a partition's columns match this table's schema in
    /// count and type.
    fn check_partition_shape(&self, partition: &Partition) -> Result<(), StorageError> {
        if partition.dims().len() != self.schema.num_dimensions() {
            return Err(StorageError::LengthMismatch {
                expected: self.schema.num_dimensions(),
                got: partition.dims().len(),
            });
        }
        if partition.measures().len() != self.schema.num_measures() {
            return Err(StorageError::LengthMismatch {
                expected: self.schema.num_measures(),
                got: partition.measures().len(),
            });
        }
        for (def, col) in self.schema.dimensions().iter().zip(partition.dims()) {
            if col.dtype() != def.dtype {
                return Err(StorageError::TypeMismatch {
                    column: def.name.clone(),
                    expected: "schema column type",
                    got: col.dtype().to_string(),
                });
            }
        }
        Ok(())
    }

    /// The partition at `t`, if any.
    pub fn partition(&self, t: Timestamp) -> Option<&Partition> {
        self.partitions.get(&t).map(|p| p.as_ref())
    }

    /// Iterate `(timestamp, partition)` in time order.
    pub fn partitions(&self) -> impl Iterator<Item = (Timestamp, &Partition)> {
        self.partitions.iter().map(|(t, p)| (*t, p.as_ref()))
    }

    /// Iterate partitions restricted to `[start, end]` inclusive.
    pub fn partitions_in(
        &self,
        start: Timestamp,
        end: Timestamp,
    ) -> impl Iterator<Item = (Timestamp, &Partition)> {
        self.partitions.range(start..=end).map(|(t, p)| (*t, p.as_ref()))
    }

    /// Number of partitions (distinct timestamps).
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of rows across all partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.values().map(|p| p.num_rows()).sum()
    }

    /// Earliest and latest timestamps, if the table is non-empty.
    pub fn time_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        let first = *self.partitions.keys().next()?;
        let last = *self.partitions.keys().next_back()?;
        Some((first, last))
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.partitions.values().map(|p| p.byte_size()).sum()
    }

    /// Bind a predicate to this table (resolve names and dictionary codes).
    pub fn compile_predicate(&self, pred: &Predicate) -> Result<CompiledPredicate, StorageError> {
        pred.compile(&self.schema, &self.dicts)
    }

    /// Exact aggregate of `measure_idx` under `pred` at one timestamp —
    /// one query of the batch in Eq. (4).
    pub fn aggregate_at(
        &self,
        t: Timestamp,
        measure_idx: usize,
        pred: &CompiledPredicate,
        func: AggFunc,
    ) -> Result<f64, StorageError> {
        let p = self.partitions.get(&t).ok_or(StorageError::NoSuchPartition(t.0))?;
        Ok(eval_partition(p, measure_idx, pred).finalize(func))
    }

    /// Fraction of rows at `t` matching `pred` (the paper's *selectivity*).
    pub fn selectivity_at(
        &self,
        t: Timestamp,
        pred: &CompiledPredicate,
    ) -> Result<f64, StorageError> {
        let p = self.partitions.get(&t).ok_or(StorageError::NoSuchPartition(t.0))?;
        if p.num_rows() == 0 {
            return Ok(0.0);
        }
        Ok(pred.evaluate(p).count_ones() as f64 / p.num_rows() as f64)
    }
}

/// Evaluate one partition: zone-map prune, then mask + aggregate.
pub(crate) fn eval_partition(
    partition: &Partition,
    measure_idx: usize,
    pred: &CompiledPredicate,
) -> AggState {
    eval_partition_with(partition, measure_idx, pred, &mut MaskScratch::new(), SumMode::Exact)
}

/// Evaluate one partition (zone-map prune, then mask + aggregate),
/// drawing mask buffers from `scratch` so range scans reuse allocations
/// across partitions. Single-comparison predicates and constants skip
/// mask materialization entirely via the fused kernels.
///
/// `sum` selects the accumulation contract: [`SumMode::Exact`] keeps every
/// float sum in ascending row order (bit-identical to the scalar
/// reference); [`SumMode::Fast`] routes masked aggregation through the
/// tier's reassociated `agg_masked_fast` slot — counts stay exact, sums
/// are deterministic per tier but may differ from exact by accumulated
/// rounding.
pub fn eval_partition_with(
    partition: &Partition,
    measure_idx: usize,
    pred: &CompiledPredicate,
    scratch: &mut MaskScratch,
    sum: SumMode,
) -> AggState {
    if !pred.may_match(partition.zone_maps()) {
        return AggState::default();
    }
    match (pred, sum) {
        (CompiledPredicate::Const(false), _) => AggState::default(),
        // All-rows aggregation is one ascending pass either way.
        (CompiledPredicate::Const(true), _) => {
            crate::aggregate::aggregate_all(partition, measure_idx)
        }
        (CompiledPredicate::Cmp { dim, op, value }, SumMode::Exact) => {
            crate::aggregate::aggregate_filtered(partition, measure_idx, *dim, *op, *value)
        }
        (CompiledPredicate::CmpF64 { dim, op, value }, SumMode::Exact) => {
            crate::aggregate::aggregate_filtered_f64_with(
                crate::simd::active(),
                partition,
                measure_idx,
                *dim,
                *op,
                *value,
            )
        }
        (_, SumMode::Exact) => {
            let mask = pred.evaluate_into(partition, scratch);
            let state = aggregate_masked(partition, measure_idx, &mask);
            scratch.release(mask);
            state
        }
        // Fast mode: always compare-into-mask, then the reassociated
        // masked-sum kernel (the fused slots exist to preserve exact
        // ascending accumulation, which fast mode explicitly trades away).
        (_, SumMode::Fast) => {
            let kernels = crate::simd::active();
            let mask = pred.evaluate_into(partition, scratch);
            let state = kernels.agg_masked_fast(partition.measure(measure_idx), &mask);
            scratch.release(mask);
            state
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionBuilder;
    use crate::predicate::CmpOp;
    use crate::schema::Schema;
    use crate::types::DataType;

    fn figure1_table() -> TimeSeriesTable {
        let schema = Schema::from_names(
            &[
                ("Age", DataType::UInt8),
                ("Gender", DataType::Categorical),
                ("Location", DataType::Categorical),
            ],
            &["Impression", "ViewTime"],
        )
        .unwrap()
        .into_shared();
        let mut table = TimeSeriesTable::new(schema);
        let d1 = Timestamp::from_yyyymmdd(20200301).unwrap();
        let d2 = Timestamp::from_yyyymmdd(20200302).unwrap();
        let rows = [
            (30, "F", "WA", 5.0, 1.6, d1),
            (60, "M", "WA", 1.0, 1.8, d1),
            (20, "F", "NY", 10.0, 3.2, d1),
            (40, "M", "NY", 20.0, 6.3, d2),
        ];
        for (age, g, loc, imp, vt, t) in rows {
            table
                .append_row(t, &[Value::Int(age), Value::from(g), Value::from(loc)], &[imp, vt])
                .unwrap();
        }
        table
    }

    #[test]
    fn figure2_aggregation() {
        // SELECT SUM(Impression) WHERE Age <= 30 AND Gender = 'F' AND t = 20200301
        let table = figure1_table();
        let pred = Predicate::cmp("Age", CmpOp::Le, 30).and(Predicate::eq("Gender", "F"));
        let compiled = table.compile_predicate(&pred).unwrap();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        let m = table.aggregate_at(t, 0, &compiled, AggFunc::Sum).unwrap();
        assert_eq!(m, 15.0);
        // Day 2 has no matching rows.
        let t2 = Timestamp::from_yyyymmdd(20200302).unwrap();
        assert_eq!(table.aggregate_at(t2, 0, &compiled, AggFunc::Sum).unwrap(), 0.0);
    }

    #[test]
    fn count_and_avg() {
        let table = figure1_table();
        let pred = table.compile_predicate(&Predicate::True).unwrap();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        assert_eq!(table.aggregate_at(t, 0, &pred, AggFunc::Count).unwrap(), 3.0);
        assert!((table.aggregate_at(t, 1, &pred, AggFunc::Avg).unwrap() - 2.2).abs() < 1e-12);
    }

    #[test]
    fn selectivity() {
        let table = figure1_table();
        let pred = table.compile_predicate(&Predicate::eq("Gender", "F")).unwrap();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        assert!((table.selectivity_at(t, &pred).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn bounds_and_sizes() {
        let table = figure1_table();
        let (lo, hi) = table.time_bounds().unwrap();
        assert_eq!(lo.to_yyyymmdd(), 20200301);
        assert_eq!(hi.to_yyyymmdd(), 20200302);
        assert_eq!(table.num_partitions(), 2);
        assert_eq!(table.num_rows(), 4);
        assert!(table.byte_size() > 0);
    }

    #[test]
    fn missing_partition_errors() {
        let table = figure1_table();
        let pred = table.compile_predicate(&Predicate::True).unwrap();
        let t = Timestamp::from_yyyymmdd(20210101).unwrap();
        assert!(table.aggregate_at(t, 0, &pred, AggFunc::Sum).is_err());
    }

    #[test]
    fn append_rows_batches_into_one_partition() {
        let mut table = figure1_table();
        let t = Timestamp::from_yyyymmdd(20200302).unwrap();
        let rows = [
            (vec![Value::Int(25), Value::from("F"), Value::from("WA")], vec![3.0, 1.0]),
            (vec![Value::Int(35), Value::from("M"), Value::from("NY")], vec![4.0, 2.0]),
        ];
        let appended =
            table.append_rows(t, rows.iter().map(|(d, m)| (d.as_slice(), m.as_slice()))).unwrap();
        assert_eq!(appended, 2);
        assert_eq!(table.partition(t).unwrap().num_rows(), 3);
        assert_eq!(table.num_rows(), 6);
    }

    #[test]
    fn append_partition_merges_and_inserts() {
        let mut table = figure1_table();
        let schema = table.schema().clone();
        // Codes for the categorical dims must come from the table's dicts.
        let f = table.intern(1, "F").unwrap();
        let wa = table.intern(2, "WA").unwrap();
        let mut b = PartitionBuilder::with_capacity(&schema, 2);
        b.push_raw_row(&[22, f as i64, wa as i64], &[7.0, 2.0]).unwrap();
        b.push_raw_row(&[23, f as i64, wa as i64], &[8.0, 3.0]).unwrap();
        // Merge into the existing 20200301 partition…
        let t1 = Timestamp::from_yyyymmdd(20200301).unwrap();
        assert_eq!(table.append_partition(t1, b.finish()).unwrap(), 2);
        let p = table.partition(t1).unwrap();
        assert_eq!(p.num_rows(), 5);
        assert_eq!(p.zone_maps().range(0), Some((20, 60)), "zone maps merged");
        // …and insert a brand-new day.
        let mut b = PartitionBuilder::with_capacity(&schema, 1);
        b.push_raw_row(&[50, f as i64, wa as i64], &[9.0, 4.0]).unwrap();
        let t3 = Timestamp::from_yyyymmdd(20200303).unwrap();
        assert_eq!(table.append_partition(t3, b.finish()).unwrap(), 1);
        assert_eq!(table.num_partitions(), 3);
        // Aggregates see the merged rows.
        let pred = table.compile_predicate(&Predicate::eq("Gender", "F")).unwrap();
        assert_eq!(table.aggregate_at(t1, 0, &pred, AggFunc::Sum).unwrap(), 30.0);
    }

    #[test]
    fn append_partition_rejects_mismatched_shape() {
        let mut table = figure1_table();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        let bad = Partition::from_columns(
            vec![crate::column::DimensionColumn::Int64(vec![1])],
            vec![vec![1.0]],
        )
        .unwrap();
        assert!(table.append_partition(t, bad).is_err());
    }

    #[test]
    fn cloned_table_is_copy_on_write() {
        let table = figure1_table();
        let snapshot = table.clone();
        let mut live = table;
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        live.append_row(t, &[Value::Int(99), Value::from("F"), Value::from("WA")], &[100.0, 1.0])
            .unwrap();
        // The clone still sees the old contents; the mutated table sees
        // the new row. Untouched partitions stay physically shared.
        assert_eq!(snapshot.partition(t).unwrap().num_rows(), 3);
        assert_eq!(live.partition(t).unwrap().num_rows(), 4);
        let t2 = Timestamp::from_yyyymmdd(20200302).unwrap();
        assert!(std::ptr::eq(snapshot.partition(t2).unwrap(), live.partition(t2).unwrap()));
        // New dictionary entries in the live table don't leak backwards.
        let mut live2 = snapshot.clone();
        live2
            .append_row(t, &[Value::Int(1), Value::from("X"), Value::from("ZZ")], &[1.0, 1.0])
            .unwrap();
        assert_eq!(snapshot.dictionaries()[1].as_ref().unwrap().lookup("X"), None);
        assert!(live2.dictionaries()[1].as_ref().unwrap().lookup("X").is_some());
    }

    #[test]
    fn intern_rejects_numeric_dims() {
        let mut table = figure1_table();
        assert!(table.intern(0, "x").is_err());
        let code = table.intern(1, "F").unwrap();
        // Already interned by append_row — must return the same code.
        assert_eq!(table.dictionaries()[1].as_ref().unwrap().lookup("F"), Some(code));
    }
}
