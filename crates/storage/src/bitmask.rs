//! Packed row-selection bitmasks produced by predicate evaluation.

/// A fixed-length bitmask over the rows of one partition, packed 64 rows per
/// word. Predicate evaluation produces one of these; aggregation then
/// iterates only the selected rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

impl Bitmask {
    /// All-zero mask over `len` rows.
    pub fn zeros(len: usize) -> Self {
        Bitmask { words: vec![0; len.div_ceil(64)], len }
    }

    /// All-one mask over `len` rows.
    pub fn ones(len: usize) -> Self {
        let mut m = Bitmask { words: vec![u64::MAX; len.div_ceil(64)], len };
        m.clear_tail();
        m
    }

    /// Number of rows covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the mask covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set row `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Test row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of selected rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if at least one row is selected. Unlike `count_ones() != 0`
    /// this exits on the first non-zero word, so it is the cheap emptiness
    /// test for AND short-circuiting.
    pub fn any_set(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Packed words for the crate's kernel readers (64 rows each, low bit
    /// = lowest row index); bits at or beyond `len` in the last word are
    /// always zero.
    #[inline]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed words for the crate's kernel writers (64 rows each,
    /// low bit = lowest row index). Callers must keep the bits at or
    /// beyond `len` in the last word zero.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Reshape this mask to `len` all-zero rows, reusing the existing word
    /// allocation. This is the reuse hook behind `MaskScratch`.
    pub fn reset_zeros(&mut self, len: usize) {
        self.words.clear();
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Reshape to `len` rows *without* clearing reused words — for the
    /// crate's kernels, which overwrite every word anyway (a full-buffer
    /// memset on the hot path would be pure waste). The words are garbage
    /// (tail invariant included) until written, which is why this and
    /// [`Bitmask::words_mut`] stay crate-private.
    pub(crate) fn reset_for_overwrite(&mut self, len: usize) {
        self.words.resize(len.div_ceil(64), 0);
        self.len = len;
    }

    /// Clear every row.
    pub fn fill_zeros(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Set every row, keeping the tail invariant.
    pub fn fill_ones(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.clear_tail();
    }

    /// In-place intersection. Panics if lengths differ.
    pub fn and_inplace(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "bitmask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union. Panics if lengths differ.
    pub fn or_inplace(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "bitmask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn not_inplace(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Build a mask by evaluating `pred` on each row index.
    pub fn from_fn(len: usize, mut pred: impl FnMut(usize) -> bool) -> Self {
        let mut m = Bitmask::zeros(len);
        for i in 0..len {
            if pred(i) {
                m.set(i);
            }
        }
        m
    }

    /// Visit each selected row index in ascending order, word-at-a-time:
    /// all-zero words cost one compare, all-one words take a straight
    /// 64-index run (in bounds because tail bits beyond `len` are kept
    /// zero, so the last word is never all-ones unless complete), and
    /// mixed words gather set bits via `trailing_zeros`. This is the one
    /// shared walk behind masked aggregation and sample estimation.
    #[inline]
    pub fn for_each_one(&self, mut f: impl FnMut(usize)) {
        for (wi, &word) in self.words.iter().enumerate() {
            if word == 0 {
                continue;
            }
            let base = wi * 64;
            if word == u64::MAX {
                for i in base..base + 64 {
                    f(i);
                }
            } else {
                let mut w = word;
                while w != 0 {
                    f(base + w.trailing_zeros() as usize);
                    w &= w - 1;
                }
            }
        }
    }

    /// Iterate indices of selected rows in ascending order.
    pub fn iter_ones(&self) -> OnesIter<'_> {
        OnesIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
            len: self.len,
        }
    }

    /// Zero any bits beyond `len` in the last word (they must stay zero for
    /// `count_ones` and `not` to be correct).
    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

/// Iterator over set-bit indices of a [`Bitmask`].
pub struct OnesIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
    len: usize,
}

impl Iterator for OnesIter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1; // clear lowest set bit
                let idx = self.word_idx * 64 + bit;
                debug_assert!(idx < self.len);
                return Some(idx);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ones_and_zeros() {
        assert_eq!(Bitmask::ones(130).count_ones(), 130);
        assert_eq!(Bitmask::zeros(130).count_ones(), 0);
        assert_eq!(Bitmask::ones(0).count_ones(), 0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = Bitmask::zeros(100);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(99);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(99));
        assert!(!m.get(1) && !m.get(65));
        assert_eq!(m.count_ones(), 4);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 63, 64, 99]);
    }

    #[test]
    fn any_set_and_reuse() {
        let mut m = Bitmask::zeros(130);
        assert!(!m.any_set());
        m.set(129);
        assert!(m.any_set());
        m.reset_zeros(70);
        assert_eq!(m.len(), 70);
        assert!(!m.any_set());
        m.fill_ones();
        assert_eq!(m.count_ones(), 70);
        m.fill_zeros();
        assert!(!m.any_set());
        // Dirty reuse: fill_ones/fill_zeros must leave no stale bits even
        // after reshaping without a clear.
        m.fill_ones();
        m.reset_for_overwrite(100);
        m.fill_ones();
        assert_eq!(m.count_ones(), 100);
    }

    #[test]
    fn for_each_one_matches_iter_ones() {
        let m = Bitmask::from_fn(200, |i| i % 3 == 0 || (64..128).contains(&i));
        let mut visited = Vec::new();
        m.for_each_one(|i| visited.push(i));
        assert_eq!(visited, m.iter_ones().collect::<Vec<_>>());
    }

    #[test]
    fn not_respects_tail() {
        let mut m = Bitmask::zeros(70);
        m.not_inplace();
        assert_eq!(m.count_ones(), 70);
        m.not_inplace();
        assert_eq!(m.count_ones(), 0);
    }

    #[test]
    fn and_or() {
        let mut a = Bitmask::from_fn(10, |i| i % 2 == 0);
        let b = Bitmask::from_fn(10, |i| i % 3 == 0);
        let mut o = a.clone();
        o.or_inplace(&b);
        a.and_inplace(&b);
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![0, 6]);
        assert_eq!(o.iter_ones().collect::<Vec<_>>(), vec![0, 2, 3, 4, 6, 8, 9]);
    }

    proptest! {
        #[test]
        fn iter_matches_get(bits in proptest::collection::vec(any::<bool>(), 0..300)) {
            let m = Bitmask::from_fn(bits.len(), |i| bits[i]);
            let from_iter: Vec<usize> = m.iter_ones().collect();
            let expected: Vec<usize> =
                bits.iter().enumerate().filter(|(_, b)| **b).map(|(i, _)| i).collect();
            prop_assert_eq!(from_iter, expected);
            prop_assert_eq!(m.count_ones(), bits.iter().filter(|b| **b).count());
        }

        #[test]
        fn demorgan(bits_a in proptest::collection::vec(any::<bool>(), 0..200),
                    seed in any::<u64>()) {
            let n = bits_a.len();
            let bits_b: Vec<bool> =
                (0..n).map(|i| (seed.wrapping_mul(i as u64 + 1) >> 7) & 1 == 1).collect();
            let a = Bitmask::from_fn(n, |i| bits_a[i]);
            let b = Bitmask::from_fn(n, |i| bits_b[i]);
            // !(a & b) == !a | !b
            let mut lhs = a.clone();
            lhs.and_inplace(&b);
            lhs.not_inplace();
            let mut na = a.clone();
            na.not_inplace();
            let mut nb = b.clone();
            nb.not_inplace();
            na.or_inplace(&nb);
            prop_assert_eq!(lhs, na);
        }
    }
}
