//! Error type shared by the storage layer.

use std::fmt;

/// Errors raised by storage operations (schema violations, unknown columns,
/// type mismatches, malformed timestamps).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A column name was not found in the schema.
    UnknownColumn(String),
    /// A column index was out of range for the schema.
    ColumnIndexOutOfRange { index: usize, len: usize },
    /// A value's type does not match the column's declared type.
    TypeMismatch { column: String, expected: &'static str, got: String },
    /// A row batch had mismatched column lengths.
    LengthMismatch { expected: usize, got: usize },
    /// A date literal could not be parsed (e.g. month 13).
    InvalidDate(String),
    /// The requested partition does not exist.
    NoSuchPartition(i64),
    /// A comparison operator is not supported on this column type
    /// (e.g. `<` on a dictionary-encoded categorical column).
    UnsupportedOperation(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownColumn(name) => write!(f, "unknown column: {name}"),
            StorageError::ColumnIndexOutOfRange { index, len } => {
                write!(f, "column index {index} out of range (schema has {len})")
            }
            StorageError::TypeMismatch { column, expected, got } => {
                write!(f, "type mismatch on column {column}: expected {expected}, got {got}")
            }
            StorageError::LengthMismatch { expected, got } => {
                write!(f, "column length mismatch: expected {expected}, got {got}")
            }
            StorageError::InvalidDate(s) => write!(f, "invalid date literal: {s}"),
            StorageError::NoSuchPartition(t) => write!(f, "no partition for timestamp {t}"),
            StorageError::UnsupportedOperation(msg) => write!(f, "unsupported operation: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StorageError::UnknownColumn("Age".into());
        assert!(e.to_string().contains("Age"));
        let e = StorageError::TypeMismatch {
            column: "Gender".into(),
            expected: "categorical",
            got: "Int(3)".into(),
        };
        assert!(e.to_string().contains("Gender"));
        assert!(e.to_string().contains("categorical"));
    }
}
