//! Kernel-equivalence properties: **every** kernel tier — the portable
//! word-at-a-time kernels plus each SIMD tier this machine supports
//! (SSE2, AVX2) — must be bit-for-bit (masks) and sum-exact (aggregates)
//! identical to the scalar reference implementations in
//! `flashp_storage::reference`, over random schemas, column types, row
//! counts (including `len % 64` and SIMD-lane `len % 4` tails), masks,
//! and predicate trees. The `f64` comparison kernels are additionally
//! proven against the scalar oracle under NaN, ±∞, −0.0 and extreme
//! literals.

use flashp_storage::reference::{aggregate_masked_scalar, eval_cmp_f64_scalar, evaluate_scalar};
use flashp_storage::{
    aggregate_filtered_f64_with, aggregate_filtered_with, AggFunc, Bitmask, CmpOp,
    CompiledPredicate, DataType, Dictionary, DimensionColumn, KernelSet, MaskScratch, Partition,
    Predicate, Schema, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DTYPES: [DataType; 5] =
    [DataType::UInt8, DataType::UInt16, DataType::Int64, DataType::Categorical, DataType::Float64];

const OPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

/// Dictionary value pool for categorical dimensions; predicates may also
/// reference strings outside this pool (unseen values).
const CAT_POOL: [&str; 6] = ["a", "b", "c", "d", "e", "f"];

struct Fixture {
    schema: Schema,
    dicts: Vec<Option<Dictionary>>,
    partition: Partition,
}

/// Random schema (1–3 dimensions of random types, 1 measure) and a random
/// partition. Row counts concentrate on word-boundary (`% 64`) and
/// SIMD-lane (`% 4`, `% 8`, `% 32`) neighborhoods so every tier's tail
/// path is exercised every run.
fn random_fixture(rng: &mut StdRng) -> Fixture {
    let num_dims = rng.gen_range(1..=3usize);
    let dtypes: Vec<DataType> =
        (0..num_dims).map(|_| DTYPES[rng.gen_range(0..DTYPES.len())]).collect();
    let names = ["d0", "d1", "d2"];
    let dims_def: Vec<(&str, DataType)> =
        dtypes.iter().enumerate().map(|(i, &t)| (names[i], t)).collect();
    let schema = Schema::from_names(&dims_def, &["m"]).unwrap();

    let n = match rng.gen_range(0..8u32) {
        0 => rng.gen_range(0..4usize),      // tiny, incl. empty
        1 => 64 * rng.gen_range(1..3usize), // exact word multiples
        2 => 64 * rng.gen_range(1..3usize) + rng.gen_range(1..64usize), // word tails
        3 => 64 * rng.gen_range(1..3usize) + rng.gen_range(1..4usize), // %4 lane tails
        4 => 32 * rng.gen_range(1..6usize) + rng.gen_range(0..8usize), // %8/%32 lane tails
        _ => rng.gen_range(1..200usize),
    };

    let mut dicts: Vec<Option<Dictionary>> = Vec::new();
    let mut columns: Vec<DimensionColumn> = Vec::new();
    for &dtype in &dtypes {
        match dtype {
            DataType::UInt8 => {
                columns.push(DimensionColumn::UInt8(
                    (0..n).map(|_| rng.gen_range(0..=255u8)).collect(),
                ));
                dicts.push(None);
            }
            DataType::UInt16 => {
                // Narrow value range so comparisons and IN-lists match rows.
                columns.push(DimensionColumn::UInt16(
                    (0..n).map(|_| rng.gen_range(0..300u16)).collect(),
                ));
                dicts.push(None);
            }
            DataType::Int64 => {
                // Mix small values with i64 extremes.
                columns.push(DimensionColumn::Int64(
                    (0..n)
                        .map(|_| match rng.gen_range(0..10u32) {
                            0 => i64::MIN,
                            1 => i64::MAX,
                            _ => rng.gen_range(-50..50i64),
                        })
                        .collect(),
                ));
                dicts.push(None);
            }
            DataType::Categorical => {
                let mut dict = Dictionary::new();
                let codes: Vec<u32> = (0..n)
                    .map(|_| dict.intern(CAT_POOL[rng.gen_range(0..CAT_POOL.len())]))
                    .collect();
                columns.push(DimensionColumn::Dict(codes));
                dicts.push(Some(dict));
            }
            DataType::Float64 => {
                // Seed IEEE specials among the ordinary values so every
                // comparison op meets NaN/±∞/−0.0/subnormal rows.
                columns.push(DimensionColumn::Float64(
                    (0..n)
                        .map(|_| match rng.gen_range(0..10u32) {
                            0 => f64::NAN,
                            1 => f64::INFINITY,
                            2 => f64::NEG_INFINITY,
                            3 => -0.0,
                            4 => 5e-324,
                            _ => rng.gen_range(-50.0..50.0),
                        })
                        .collect(),
                ));
                dicts.push(None);
            }
        }
    }
    let measure: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
    let partition = Partition::from_columns(columns, vec![measure]).unwrap();
    Fixture { schema, dicts, partition }
}

/// Random literal for a numeric dimension, deliberately spanning in-range,
/// boundary, and out-of-representation values.
fn random_literal(rng: &mut StdRng) -> i64 {
    match rng.gen_range(0..8u32) {
        0 => -1,
        1 => 256,    // just beyond u8
        2 => 65_536, // just beyond u16
        3 => i64::MIN,
        4 => i64::MAX,
        _ => rng.gen_range(-60..310),
    }
}

/// Random float literal for a float64 dimension: IEEE specials mixed with
/// in-range values.
fn random_float_literal(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..10u32) {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        3 => -0.0,
        4 => 5e-324,
        5 => f64::MAX,
        _ => rng.gen_range(-60.0..60.0),
    }
}

/// Random predicate tree over the fixture's dimensions.
fn random_predicate(rng: &mut StdRng, schema: &Schema, depth: usize) -> Predicate {
    let num_dims = schema.num_dimensions();
    let leaf = depth == 0 || rng.gen_range(0..3u32) == 0;
    if leaf {
        let dim = rng.gen_range(0..num_dims);
        let def = &schema.dimensions()[dim];
        let categorical = def.dtype == DataType::Categorical;
        let float = def.dtype == DataType::Float64;
        match rng.gen_range(0..3u32) {
            0 if categorical => {
                // Eq/Ne on a pool value or an unseen string.
                let s = if rng.gen_range(0..4u32) == 0 {
                    "unseen"
                } else {
                    CAT_POOL[rng.gen_range(0..CAT_POOL.len())]
                };
                let op = if rng.gen::<bool>() { CmpOp::Eq } else { CmpOp::Ne };
                Predicate::cmp(&def.name, op, s)
            }
            0 | 1 if float => {
                // Float or promoted-integer literal; IN is rejected on
                // float64 so this leaf replaces the IN case too.
                let op = OPS[rng.gen_range(0..6usize)];
                if rng.gen::<bool>() {
                    Predicate::cmp(&def.name, op, Value::Float(random_float_literal(rng)))
                } else {
                    Predicate::cmp(&def.name, op, random_literal(rng))
                }
            }
            0 => {
                let op = OPS[rng.gen_range(0..6usize)];
                Predicate::cmp(&def.name, op, random_literal(rng))
            }
            1 => {
                let k = rng.gen_range(1..6usize);
                let values: Vec<Value> = (0..k)
                    .map(|_| {
                        if categorical {
                            Value::from(CAT_POOL[rng.gen_range(0..CAT_POOL.len())])
                        } else {
                            Value::Int(random_literal(rng))
                        }
                    })
                    .collect();
                Predicate::In { column: def.name.clone(), values }
            }
            _ => Predicate::True,
        }
    } else {
        match rng.gen_range(0..3u32) {
            0 => Predicate::And(
                (0..rng.gen_range(1..4usize))
                    .map(|_| random_predicate(rng, schema, depth - 1))
                    .collect(),
            ),
            1 => Predicate::Or(
                (0..rng.gen_range(1..4usize))
                    .map(|_| random_predicate(rng, schema, depth - 1))
                    .collect(),
            ),
            _ => Predicate::Not(Box::new(random_predicate(rng, schema, depth - 1))),
        }
    }
}

proptest! {
    /// Predicate evaluation on every supported kernel tier (fresh and
    /// scratch-reusing) is bit-for-bit identical to the row-at-a-time
    /// reference over random schemas and predicate trees.
    #[test]
    fn predicate_kernels_match_scalar_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fx = random_fixture(&mut rng);
        let tiers = KernelSet::supported();
        let mut scratch = MaskScratch::new();
        for _ in 0..4 {
            let pred = random_predicate(&mut rng, &fx.schema, 3);
            let compiled = pred.compile(&fx.schema, &fx.dicts).unwrap();
            let reference = evaluate_scalar(&compiled, &fx.partition);
            // The dispatched tier through the public entry points…
            let fresh = compiled.evaluate(&fx.partition);
            prop_assert_eq!(&fresh, &reference);
            // …and every tier explicitly, sharing one scratch in sequence
            // — buffer reuse must never leak bits between evaluations or
            // between tiers.
            for ks in &tiers {
                let got = compiled.evaluate_into_with(&fx.partition, &mut scratch, ks);
                prop_assert_eq!(&got, &reference, "tier {}", ks.tier());
                scratch.release(got);
            }
        }
    }

    /// Word-walk masked aggregation is sum-exact against the
    /// index-at-a-time reference over random masks (incl. dense words and
    /// ragged tails).
    #[test]
    fn masked_aggregation_matches_scalar_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fx = random_fixture(&mut rng);
        let n = fx.partition.num_rows();
        // Random mask with block structure: runs of all-ones words, all-
        // zero words, and uniform bits, to hit all three word paths.
        let mut mask = Bitmask::zeros(n);
        let mut i = 0;
        while i < n {
            match rng.gen_range(0..3u32) {
                0 => i += 64,                                  // zero word
                1 => {
                    let end = (i + 64).min(n);
                    for j in i..end {
                        mask.set(j);
                    }
                    i = end;
                }
                _ => {
                    let end = (i + 64).min(n);
                    for j in i..end {
                        if rng.gen::<bool>() {
                            mask.set(j);
                        }
                    }
                    i = end;
                }
            }
        }
        let got = flashp_storage::aggregate::aggregate_masked(&fx.partition, 0, &mask);
        let want = aggregate_masked_scalar(&fx.partition, 0, &mask);
        prop_assert_eq!(got.count, want.count);
        prop_assert!(
            got.sum == want.sum,
            "sum mismatch: vectorized {} vs scalar {}", got.sum, want.sum
        );
    }

    /// The fused filter+aggregate kernel on every supported tier equals
    /// scalar-mask-then-scalar-aggregate for every comparison op over
    /// every column type — count-exact and bit-exact on the float sum
    /// (every tier adds matching rows in ascending order).
    #[test]
    fn fused_filter_aggregate_matches_scalar_reference(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let fx = random_fixture(&mut rng);
        let tiers = KernelSet::supported();
        for dim in 0..fx.schema.num_dimensions() {
            for _ in 0..3 {
                let op = OPS[rng.gen_range(0..6usize)];
                let value = random_literal(&mut rng);
                let compiled = CompiledPredicate::Cmp { dim, op, value };
                let reference =
                    aggregate_masked_scalar(&fx.partition, 0, &evaluate_scalar(&compiled, &fx.partition));
                for ks in &tiers {
                    let fused = aggregate_filtered_with(ks, &fx.partition, 0, dim, op, value);
                    prop_assert_eq!(
                        fused.count, reference.count,
                        "tier {} op {:?} value {}", ks.tier(), op, value
                    );
                    prop_assert!(
                        fused.finalize(AggFunc::Sum) == reference.finalize(AggFunc::Sum),
                        "tier {} op {:?} value {}: fused {} vs scalar {}",
                        ks.tier(), op, value, fused.sum, reference.sum
                    );
                }
            }
            // Float literals take the dedicated f64 fused slot.
            if fx.schema.dimensions()[dim].dtype == DataType::Float64 {
                for _ in 0..3 {
                    let op = OPS[rng.gen_range(0..6usize)];
                    let value = random_float_literal(&mut rng);
                    let compiled = CompiledPredicate::CmpF64 { dim, op, value };
                    let reference = aggregate_masked_scalar(
                        &fx.partition, 0, &evaluate_scalar(&compiled, &fx.partition));
                    for ks in &tiers {
                        let fused = aggregate_filtered_f64_with(ks, &fx.partition, 0, dim, op, value);
                        prop_assert_eq!(
                            fused.count, reference.count,
                            "tier {} op {:?} value {}", ks.tier(), op, value
                        );
                        prop_assert!(
                            fused.finalize(AggFunc::Sum) == reference.finalize(AggFunc::Sum),
                            "tier {} op {:?} value {}: fused {} vs scalar {}",
                            ks.tier(), op, value, fused.sum, reference.sum
                        );
                    }
                }
            }
        }
    }

    /// The `f64` comparison kernels of every tier match the scalar IEEE
    /// oracle bit for bit, including NaN, ±∞, −0.0, subnormals and
    /// extreme literals on both sides of the comparison.
    #[test]
    fn f64_compare_kernels_match_scalar_reference(seed in any::<u64>()) {
        const SPECIALS: [f64; 9] = [
            f64::NAN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            -0.0,
            0.0,
            f64::MAX,
            f64::MIN,
            f64::MIN_POSITIVE,
            5e-324, // smallest subnormal
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let n = match rng.gen_range(0..4u32) {
            0 => rng.gen_range(0..4usize),
            1 => 64 * rng.gen_range(1..3usize),
            2 => 64 * rng.gen_range(1..3usize) + rng.gen_range(1..4usize),
            _ => rng.gen_range(1..200usize),
        };
        let data: Vec<f64> = (0..n)
            .map(|_| {
                if rng.gen_range(0..3u32) == 0 {
                    SPECIALS[rng.gen_range(0..SPECIALS.len())]
                } else {
                    rng.gen_range(-10.0..10.0)
                }
            })
            .collect();
        let rhs = if rng.gen_range(0..2u32) == 0 {
            SPECIALS[rng.gen_range(0..SPECIALS.len())]
        } else {
            rng.gen_range(-10.0..10.0)
        };
        for ks in KernelSet::supported() {
            for op in OPS {
                let reference = eval_cmp_f64_scalar(&data, op, rhs);
                let mut mask = Bitmask::zeros(n);
                ks.cmp_f64(&data, op, rhs, &mut mask);
                prop_assert_eq!(&mask, &reference, "tier {} op {:?} rhs {}", ks.tier(), op, rhs);
            }
        }
    }

    /// The opt-in `fast_sum` masked aggregation on every tier keeps the
    /// count exact and the reassociated sum within an accumulated-rounding
    /// bound of the ascending-order exact sum; it is deterministic per
    /// tier, and the portable/SSE2 tiers alias the exact walk bit-for-bit.
    #[test]
    fn fast_sum_is_count_exact_and_ulp_bounded(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = match rng.gen_range(0..5u32) {
            0 => rng.gen_range(0..4usize),
            1 => 64 * rng.gen_range(1..4usize),
            2 => 64 * rng.gen_range(1..3usize) + rng.gen_range(1..64usize),
            3 => 8 * rng.gen_range(1..20usize), // %8 lane multiples
            _ => rng.gen_range(1..300usize),
        };
        let values: Vec<f64> = (0..n).map(|_| rng.gen_range(-1000.0..1000.0)).collect();
        let mut mask = Bitmask::zeros(n);
        for i in 0..n {
            if rng.gen_range(0..3u32) != 0 {
                mask.set(i);
            }
        }
        let mut exact = 0.0f64;
        let mut count = 0u64;
        let mut sum_abs = 0.0f64;
        for i in mask.iter_ones() {
            exact += values[i];
            count += 1;
            sum_abs += values[i].abs();
        }
        // Reassociating k additions perturbs each partial by at most one
        // rounding step: |fast − exact| ≤ k·ε·Σ|xᵢ|.
        let bound = count as f64 * f64::EPSILON * sum_abs;
        for ks in KernelSet::supported() {
            let fast = ks.agg_masked_fast(&values, &mask);
            prop_assert_eq!(fast.count, count, "tier {}", ks.tier());
            prop_assert!(
                (fast.sum - exact).abs() <= bound,
                "tier {}: fast {} vs exact {} exceeds bound {}",
                ks.tier(), fast.sum, exact, bound
            );
            // Bit-for-bit deterministic on repeat evaluation.
            let again = ks.agg_masked_fast(&values, &mask);
            prop_assert!(again.sum.to_bits() == fast.sum.to_bits(), "tier {}", ks.tier());
        }
        let fast = KernelSet::portable().agg_masked_fast(&values, &mask);
        prop_assert!(fast.sum.to_bits() == exact.to_bits(), "portable fast_sum must stay exact");
    }
}
