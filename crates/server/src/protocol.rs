//! The wire protocol: newline-delimited text commands in, one JSON line
//! out per command.
//!
//! Requests are plain text — a statement of the task language, or one of
//! the service verbs (`PREPARE`, `EXECUTE`, `DEALLOCATE`, `INGEST`,
//! `PUBLISH`, `STATS`, `SLEEP`, `CLOSE`). Responses are single-line JSON
//! objects: `{"ok":true,...}` on success, `{"ok":false,"error":{"code":
//! ...,"message":...}}` on failure. Every request gets exactly one
//! response line, in order — including rejections, so a client never
//! hangs on an admission decision.
//!
//! Response encoding is deliberately deterministic (no timings, stable
//! key order, the vendored `serde_json`'s canonical float formatting):
//! the oracle test in `tests/service.rs` asserts a wire response is
//! byte-identical to encoding the in-process result.

use flashp_core::{
    EngineError, EngineStats, ExecOutput, ForecastResult, Literal, PlanNode, PublishStats,
    SelectResult,
};
use serde_json::{json, Map, Value};

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `PREPARE <name> AS <statement>` — compile a statement into a named
    /// session handle.
    Prepare {
        /// Handle name (identifier, unique per session).
        name: String,
        /// The statement text to prepare.
        sql: String,
    },
    /// `EXECUTE <name> [(arg, ...)]` — run a prepared handle with bound
    /// `?` parameters.
    Execute {
        /// Handle name from an earlier `PREPARE`.
        name: String,
        /// Positional parameter values.
        args: Vec<Literal>,
    },
    /// `DEALLOCATE <name>` — drop a prepared handle.
    Deallocate {
        /// Handle name to drop.
        name: String,
    },
    /// A one-shot `FORECAST` / `SELECT` / `EXPLAIN` statement.
    Statement {
        /// The raw statement text.
        sql: String,
    },
    /// `INGEST (t, dim..., measure...) ...` — stage rows for the next
    /// publish. Each parenthesized tuple is one full row: a `YYYYMMDD`
    /// timestamp, the dimension values in schema order, then the measure
    /// values.
    Ingest {
        /// Raw row tuples; validated against the schema at execution.
        rows: Vec<Vec<Literal>>,
    },
    /// `PUBLISH` — derive and swap in a new catalog version.
    Publish,
    /// `STATS` — server + engine counters. Answered out-of-band (never
    /// queued), so observability survives overload.
    Stats,
    /// `SLEEP <ms>` — diagnostic: occupy a worker for `ms` milliseconds.
    /// Used by the overload tests to fill the admission queue
    /// deterministically.
    Sleep {
        /// Milliseconds to hold the worker.
        ms: u64,
    },
    /// `CLOSE` — acknowledge and end the session.
    Close,
}

/// Typed error codes carried in `{"error":{"code":...}}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Malformed request line (unknown verb, bad tuple syntax, ...).
    Protocol,
    /// Statement failed to parse or bind.
    Parse,
    /// Bad `?` parameter binding (arity, type, value).
    Parameter,
    /// Engine configuration or usage problem (reversed window, ...).
    Config,
    /// Sample catalog missing or inadequate for the request.
    Samples,
    /// Execution-level failure (storage, sampling, model fitting).
    Execution,
    /// Statement kind mismatch (e.g. `EXECUTE` on nothing prepared).
    Statement,
    /// `EXECUTE`/`DEALLOCATE` of a handle this session never prepared.
    UnknownHandle,
    /// Admission control: the request queue is full. Back off and retry.
    Busy,
    /// The session exceeded its statement budget.
    Limit,
    /// The server is draining; no new work is admitted.
    Shutdown,
    /// The request was admitted but no worker answered within the reply
    /// timeout; the response (if any) was discarded.
    Timeout,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Protocol => "protocol",
            ErrorCode::Parse => "parse",
            ErrorCode::Parameter => "parameter",
            ErrorCode::Config => "config",
            ErrorCode::Samples => "samples",
            ErrorCode::Execution => "execution",
            ErrorCode::Statement => "statement",
            ErrorCode::UnknownHandle => "unknown_handle",
            ErrorCode::Busy => "busy",
            ErrorCode::Limit => "limit",
            ErrorCode::Shutdown => "shutdown",
            ErrorCode::Timeout => "timeout",
        }
    }
}

/// Map an engine error onto a wire error code.
pub fn engine_error_code(err: &EngineError) -> ErrorCode {
    match err {
        EngineError::Parse(_) => ErrorCode::Parse,
        EngineError::Parameter(_) => ErrorCode::Parameter,
        EngineError::Config(_) => ErrorCode::Config,
        EngineError::SamplesUnavailable(_) => ErrorCode::Samples,
        EngineError::WrongStatement { .. } => ErrorCode::Statement,
        EngineError::Storage(_) | EngineError::Sampling(_) | EngineError::Forecast(_) => {
            ErrorCode::Execution
        }
    }
}

/// A protocol-level parse failure, rendered as an error response.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolError {
    /// The typed code (usually [`ErrorCode::Protocol`]).
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

impl ProtocolError {
    fn new(message: impl Into<String>) -> Self {
        ProtocolError { code: ErrorCode::Protocol, message: message.into() }
    }
}

/// Split the leading identifier word (`[A-Za-z_][A-Za-z0-9_]*`) off
/// `input`, returning `(word, rest)`.
fn take_word(input: &str) -> (&str, &str) {
    let input = input.trim_start();
    let end = input
        .char_indices()
        .find(|(_, c)| !(c.is_ascii_alphanumeric() || *c == '_'))
        .map(|(i, _)| i)
        .unwrap_or(input.len());
    (&input[..end], input[end..].trim_start())
}

/// Parse a parenthesized, comma-separated literal list (used by
/// `EXECUTE` arguments and `INGEST` tuples) from a token stream.
fn parse_tuple(
    tokens: &[flashp_query::lexer::Token],
    pos: &mut usize,
    what: &str,
) -> Result<Vec<Literal>, ProtocolError> {
    use flashp_query::lexer::TokenKind;
    if !matches!(tokens.get(*pos).map(|t| &t.kind), Some(TokenKind::LParen)) {
        return Err(ProtocolError::new(format!("expected '(' to open {what}")));
    }
    *pos += 1;
    let mut items = Vec::new();
    if matches!(tokens.get(*pos).map(|t| &t.kind), Some(TokenKind::RParen)) {
        *pos += 1;
        return Ok(items);
    }
    loop {
        let lit = match tokens.get(*pos).map(|t| &t.kind) {
            Some(TokenKind::Int(v)) => Literal::Int(*v),
            Some(TokenKind::Float(v)) => Literal::Float(*v),
            Some(TokenKind::Str(s)) => Literal::Str(s.clone()),
            Some(other) => {
                return Err(ProtocolError::new(format!(
                    "expected a literal in {what}, found {}",
                    other.describe()
                )))
            }
            None => return Err(ProtocolError::new(format!("unterminated {what}"))),
        };
        items.push(lit);
        *pos += 1;
        match tokens.get(*pos).map(|t| &t.kind) {
            Some(TokenKind::Comma) => *pos += 1,
            Some(TokenKind::RParen) => {
                *pos += 1;
                return Ok(items);
            }
            Some(other) => {
                return Err(ProtocolError::new(format!(
                    "expected ',' or ')' in {what}, found {}",
                    other.describe()
                )))
            }
            None => return Err(ProtocolError::new(format!("unterminated {what}"))),
        }
    }
}

fn tokenize_tail(tail: &str, what: &str) -> Result<Vec<flashp_query::lexer::Token>, ProtocolError> {
    let mut tokens = flashp_query::lexer::tokenize(tail)
        .map_err(|e| ProtocolError::new(format!("bad {what}: {e}")))?;
    // Drop the trailing EOF marker so slice-end checks are uniform.
    if matches!(tokens.last().map(|t| &t.kind), Some(flashp_query::lexer::TokenKind::Eof)) {
        tokens.pop();
    }
    Ok(tokens)
}

/// Parse one request line into a [`Command`].
pub fn parse_command(line: &str) -> Result<Command, ProtocolError> {
    let line = line.trim();
    if line.is_empty() {
        return Err(ProtocolError::new("empty request"));
    }
    let (verb, rest) = take_word(line);
    match verb.to_ascii_uppercase().as_str() {
        "PREPARE" => {
            let (name, rest) = take_word(rest);
            if name.is_empty() {
                return Err(ProtocolError::new("PREPARE requires a handle name"));
            }
            let (kw, sql) = take_word(rest);
            if !kw.eq_ignore_ascii_case("AS") {
                return Err(ProtocolError::new("expected AS after the handle name"));
            }
            if sql.is_empty() {
                return Err(ProtocolError::new("PREPARE requires a statement after AS"));
            }
            Ok(Command::Prepare { name: name.to_string(), sql: sql.to_string() })
        }
        "EXECUTE" => {
            let (name, rest) = take_word(rest);
            if name.is_empty() {
                return Err(ProtocolError::new("EXECUTE requires a handle name"));
            }
            let args = if rest.is_empty() {
                Vec::new()
            } else {
                let tokens = tokenize_tail(rest, "EXECUTE arguments")?;
                let mut pos = 0;
                let args = parse_tuple(&tokens, &mut pos, "EXECUTE arguments")?;
                if pos != tokens.len() {
                    return Err(ProtocolError::new("trailing input after EXECUTE arguments"));
                }
                args
            };
            Ok(Command::Execute { name: name.to_string(), args })
        }
        "DEALLOCATE" => {
            let (name, rest) = take_word(rest);
            if name.is_empty() || !rest.is_empty() {
                return Err(ProtocolError::new("usage: DEALLOCATE <name>"));
            }
            Ok(Command::Deallocate { name: name.to_string() })
        }
        "INGEST" => {
            let tokens = tokenize_tail(rest, "INGEST rows")?;
            let mut pos = 0;
            let mut rows = Vec::new();
            while pos < tokens.len() {
                rows.push(parse_tuple(&tokens, &mut pos, "INGEST row")?);
            }
            if rows.is_empty() {
                return Err(ProtocolError::new(
                    "INGEST requires at least one (t, dims..., measures...) row",
                ));
            }
            Ok(Command::Ingest { rows })
        }
        "PUBLISH" if rest.is_empty() => Ok(Command::Publish),
        "STATS" if rest.is_empty() => Ok(Command::Stats),
        "CLOSE" | "QUIT" | "EXIT" if rest.is_empty() => Ok(Command::Close),
        "SLEEP" => {
            let (ms, tail) = take_word(rest);
            match (ms.parse::<u64>(), tail.is_empty()) {
                (Ok(ms), true) => Ok(Command::Sleep { ms }),
                _ => Err(ProtocolError::new("usage: SLEEP <milliseconds>")),
            }
        }
        "FORECAST" | "SELECT" | "EXPLAIN" => Ok(Command::Statement { sql: line.to_string() }),
        other => Err(ProtocolError::new(format!(
            "unknown command '{other}'; expected PREPARE, EXECUTE, DEALLOCATE, FORECAST, \
             SELECT, EXPLAIN, INGEST, PUBLISH, STATS, or CLOSE"
        ))),
    }
}

impl Command {
    /// The label latency histograms and logs file this command under.
    pub fn label(&self) -> &'static str {
        match self {
            Command::Prepare { .. } => "prepare",
            Command::Execute { .. } => "execute",
            Command::Deallocate { .. } => "deallocate",
            Command::Statement { .. } => "statement",
            Command::Ingest { .. } => "ingest",
            Command::Publish => "publish",
            Command::Stats => "stats",
            Command::Sleep { .. } => "sleep",
            Command::Close => "close",
        }
    }

    /// Whether this command goes through the admission queue (versus
    /// being answered directly by the connection thread).
    pub fn is_queued(&self) -> bool {
        !matches!(self, Command::Stats | Command::Close)
    }
}

// ---------------------------------------------------------------------
// Response encoding
// ---------------------------------------------------------------------

fn finish(value: Value) -> String {
    serde_json::to_string(&value).expect("json encoding is infallible")
}

/// Encode a typed error response.
pub fn error_line(code: ErrorCode, message: &str) -> String {
    finish(json!({"ok": false, "error": {"code": code.as_str(), "message": message}}))
}

/// Encode an engine error with its mapped code.
pub fn engine_error_line(err: &EngineError) -> String {
    error_line(engine_error_code(err), &err.to_string())
}

/// Encode a `FORECAST` result. Timings are deliberately omitted: the
/// remaining fields are deterministic for a given engine state, which is
/// what lets the oracle test compare wire bytes to in-process results.
pub fn encode_forecast(r: &ForecastResult) -> String {
    let estimates: Vec<Value> = r
        .estimates
        .iter()
        .map(|p| json!({"t": p.t.to_yyyymmdd(), "value": p.value, "variance": p.variance}))
        .collect();
    let forecasts: Vec<Value> = r
        .forecasts
        .iter()
        .map(|f| {
            json!({
                "t": f.t.to_yyyymmdd(),
                "value": f.value,
                "lo": f.lo,
                "hi": f.hi,
                "std_err": f.std_err,
            })
        })
        .collect();
    finish(json!({
        "ok": true,
        "kind": "forecast",
        "model": r.model,
        "sampler": r.sampler,
        "rate_used": r.rate_used,
        "confidence": r.confidence,
        "sigma2": r.sigma2,
        "mean_noise_variance": r.mean_noise_variance,
        "estimates": estimates,
        "forecasts": forecasts,
    }))
}

/// Encode a `SELECT` result: rows as `[t, value, std_err|null]` triples.
pub fn encode_select(r: &SelectResult) -> String {
    let rows: Vec<Value> = r
        .rows
        .iter()
        .map(|(t, v, se)| Value::Array(vec![json!(t.to_yyyymmdd()), json!(*v), json!(se)]))
        .collect();
    finish(json!({"ok": true, "kind": "select", "approximate": r.approximate, "rows": rows}))
}

fn plan_value(node: &PlanNode) -> Value {
    let mut props = Map::new();
    for (k, v) in &node.props {
        props.insert(k.clone(), Value::String(v.clone()));
    }
    let children: Vec<Value> = node.children.iter().map(plan_value).collect();
    json!({"name": node.name, "props": props, "children": children})
}

/// Encode an `EXPLAIN` plan tree.
pub fn encode_plan(node: &PlanNode) -> String {
    finish(json!({"ok": true, "kind": "plan", "plan": plan_value(node)}))
}

/// Encode any execution output with the right kind tag.
pub fn encode_output(out: &ExecOutput) -> String {
    match out {
        ExecOutput::Forecast(f) => encode_forecast(f),
        ExecOutput::Select(s) => encode_select(s),
        ExecOutput::Plan(p) => encode_plan(p),
    }
}

/// Encode the `PREPARE` acknowledgement.
pub fn encode_prepared(name: &str, num_params: usize) -> String {
    finish(json!({"ok": true, "kind": "prepare", "handle": name, "num_params": num_params}))
}

/// Encode the `DEALLOCATE` acknowledgement.
pub fn encode_deallocated(name: &str) -> String {
    finish(json!({"ok": true, "kind": "deallocate", "handle": name}))
}

/// Encode the `INGEST` acknowledgement: rows staged by this command and
/// the total now pending publication.
pub fn encode_ingested(staged: usize, pending: usize) -> String {
    finish(json!({"ok": true, "kind": "ingest", "staged_rows": staged, "pending_rows": pending}))
}

/// Encode the `PUBLISH` acknowledgement.
pub fn encode_published(stats: &PublishStats) -> String {
    finish(json!({
        "ok": true,
        "kind": "publish",
        "version": stats.version,
        "catalog_version": stats.catalog_version,
        "appended_rows": stats.appended_rows,
        "changed_partitions": stats.changed_partitions,
        "rebuilt_cells": stats.delta.rebuilt_cells,
        "absorbed_cells": stats.delta.absorbed_cells,
        "fallback_redraws": stats.delta.fallback_redraws,
    }))
}

/// Encode the `SLEEP` acknowledgement.
pub fn encode_slept(ms: u64) -> String {
    finish(json!({"ok": true, "kind": "sleep", "slept_ms": ms}))
}

/// Encode the `CLOSE` acknowledgement.
pub fn encode_closed() -> String {
    finish(json!({"ok": true, "kind": "close"}))
}

/// Encode the `STATS` response for a sharded backend: the outer version
/// plus one entry per physical shard with its slot range, visible rows,
/// and staged ingest backlog.
pub fn encode_sharded_stats(stats: &flashp_core::ShardedStats, server: Value) -> String {
    let shards: Vec<Value> = stats
        .shards
        .iter()
        .map(|s| {
            json!({
                "shard": s.shard,
                "slots": format!("{}..{}", s.slots.0, s.slots.1),
                "rows": s.rows,
                "pending_rows": s.pending_rows,
                "pending_partitions": s.pending_partitions,
                "partial_cache": partial_cache_json(&s.partial_cache),
            })
        })
        .collect();
    finish(json!({
        "ok": true,
        "kind": "stats",
        "engine": {
            "version": stats.version,
            "catalog_version": stats.catalog_version,
            "shards": shards,
            "total_rows": stats.total_rows(),
            "pending_rows": stats.pending_rows(),
            "pending_partitions": stats.pending_partitions(),
        },
        "server": server,
    }))
}

/// Day-partial cache counters as JSON; `null` when the cache is disabled
/// (config or `FLASHP_NO_PARTIAL_CACHE=1`).
fn partial_cache_json(stats: &Option<flashp_core::PartialCacheStats>) -> Value {
    match stats {
        None => Value::Null,
        Some(c) => json!({
            "hits": c.hits,
            "misses": c.misses,
            "evictions": c.evictions,
            "entries": c.entries,
        }),
    }
}

/// Encode the `STATS` response from an engine snapshot plus the
/// server-side counters (already rendered by [`crate::stats`]).
pub fn encode_stats(engine: &EngineStats, server: Value) -> String {
    finish(json!({
        "ok": true,
        "kind": "stats",
        "engine": {
            "version": engine.version,
            "catalog_version": engine.catalog_version,
            "plan_cache": {
                "hits": engine.plan_cache.hits,
                "misses": engine.plan_cache.misses,
                "entries": engine.plan_cache.entries,
            },
            "partial_cache": partial_cache_json(&engine.partial_cache),
            "pending_rows": engine.pending_rows,
            "pending_partitions": engine.pending_partitions,
        },
        "server": server,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse() {
        assert_eq!(
            parse_command("PREPARE q1 AS SELECT SUM(m) FROM T WHERE t = ?").unwrap(),
            Command::Prepare {
                name: "q1".to_string(),
                sql: "SELECT SUM(m) FROM T WHERE t = ?".to_string()
            }
        );
        assert_eq!(
            parse_command("execute q1 (20200101, 'F', 1.5)").unwrap(),
            Command::Execute {
                name: "q1".to_string(),
                args: vec![
                    Literal::Int(20200101),
                    Literal::Str("F".to_string()),
                    Literal::Float(1.5)
                ],
            }
        );
        assert_eq!(
            parse_command("EXECUTE q1").unwrap(),
            Command::Execute { name: "q1".to_string(), args: vec![] }
        );
        assert_eq!(
            parse_command("EXECUTE q1 ()").unwrap(),
            Command::Execute { name: "q1".to_string(), args: vec![] }
        );
        assert_eq!(
            parse_command("DEALLOCATE q1").unwrap(),
            Command::Deallocate { name: "q1".to_string() }
        );
        assert_eq!(
            parse_command("INGEST (20200101, 25, 'F', 10.0) (20200102, 30, 'M', 20.0)").unwrap(),
            Command::Ingest {
                rows: vec![
                    vec![
                        Literal::Int(20200101),
                        Literal::Int(25),
                        Literal::Str("F".to_string()),
                        Literal::Float(10.0)
                    ],
                    vec![
                        Literal::Int(20200102),
                        Literal::Int(30),
                        Literal::Str("M".to_string()),
                        Literal::Float(20.0)
                    ],
                ]
            }
        );
        assert_eq!(parse_command(" publish ").unwrap(), Command::Publish);
        assert_eq!(parse_command("STATS").unwrap(), Command::Stats);
        assert_eq!(parse_command("SLEEP 25").unwrap(), Command::Sleep { ms: 25 });
        assert_eq!(parse_command("close").unwrap(), Command::Close);
        let sql = "SELECT SUM(m) FROM T WHERE t = 20200101";
        assert_eq!(parse_command(sql).unwrap(), Command::Statement { sql: sql.to_string() });
    }

    #[test]
    fn protocol_errors_are_typed() {
        for bad in [
            "",
            "FROB x",
            "PREPARE AS SELECT",
            "PREPARE q SELECT 1",
            "EXECUTE q1 (1,",
            "EXECUTE q1 (SELECT)",
            "INGEST",
            "INGEST 20200101",
            "SLEEP forever",
            "DEALLOCATE",
        ] {
            let err = parse_command(bad).unwrap_err();
            assert_eq!(err.code, ErrorCode::Protocol, "{bad:?}: {}", err.message);
        }
    }

    #[test]
    fn responses_are_single_json_lines() {
        let lines = [
            error_line(ErrorCode::Busy, "server at capacity"),
            encode_prepared("q1", 2),
            encode_ingested(3, 7),
            encode_slept(5),
            encode_closed(),
        ];
        for line in &lines {
            assert!(!line.contains('\n'), "{line}");
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains(r#""code":"busy""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""num_params":2"#), "{}", lines[1]);
    }

    #[test]
    fn command_labels_and_queueing() {
        assert!(Command::Publish.is_queued());
        assert!(!Command::Stats.is_queued());
        assert!(!Command::Close.is_queued());
        assert_eq!(parse_command("SLEEP 1").unwrap().label(), "sleep");
    }
}
