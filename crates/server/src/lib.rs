//! # flashp-server
//!
//! A multi-tenant query service frontend for the FlashP engine: TCP in,
//! JSON lines out, with per-connection sessions, first-class admission
//! control, and a closed-loop load harness.
//!
//! The wire protocol is newline-delimited text ([`protocol`]): each
//! request line is a statement of the task language (`FORECAST` /
//! `SELECT` / `EXPLAIN`) or a service verb (`PREPARE name AS ...`,
//! `EXECUTE name (...)`, `INGEST`, `PUBLISH`, `STATS`, `CLOSE`), and
//! each response is exactly one JSON line. No async runtime: the server
//! ([`server`]) is a `std::net` listener, one thread per connection, and
//! a fixed worker pool behind a **bounded** queue — a full queue answers
//! a typed `busy` error immediately, it never blocks the client.
//!
//! Sessions ([`session`]) hold named prepared handles (the engine's
//! [`flashp_core::PreparedQuery`], re-bound per `EXECUTE`), so the hot
//! service path skips parse + plan entirely. `INGEST`/`PUBLISH` feed the
//! engine's staged ingest cycle; a publish swaps the catalog version
//! under every session's handles mid-flight, which is exactly what the
//! oracle tests assert stays bit-identical to in-process execution.
//!
//! The closed-loop harness ([`harness`]) drives 1/8/64/256 concurrent
//! clients (optionally with a concurrent publisher) and reports
//! p50/p99/throughput — `cargo run -p flashp-server --release --bin
//! service_bench` writes `BENCH_service.json` at the repo root.

#![warn(missing_docs)]

pub mod backend;
pub mod harness;
pub mod protocol;
pub mod server;
pub mod session;
pub mod stats;

pub use backend::{Backend, PreparedHandle};
pub use harness::{run_closed_loop, Client, LoadConfig, LoadReport};
pub use protocol::{parse_command, Command, ErrorCode};
pub use server::{serve, serve_backend, DrainReport, ServerConfig, ServerHandle};
pub use session::Session;
pub use stats::{LatencyHistogram, ServerStats};
