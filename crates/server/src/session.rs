//! Per-connection session state: named prepared-statement handles and
//! the session's statement budget.
//!
//! A session is owned by one connection, but its commands execute on
//! worker threads, so the mutable state sits behind a mutex. Commands on
//! a connection are strictly serialized (the connection thread waits for
//! each reply before reading the next line), so the lock is uncontended
//! in practice — it exists for `Send`/`Sync` soundness, not throughput.

use crate::backend::PreparedHandle;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// One client session.
pub struct Session {
    /// Server-unique session id (diagnostic; shows up in `STATS`).
    id: u64,
    /// Admitted-statement budget; `u64::MAX` means unlimited.
    limit: u64,
    /// Statements admitted so far (rejected ones don't count).
    admitted: AtomicU64,
    handles: Mutex<HashMap<String, Arc<PreparedHandle>>>,
}

impl Session {
    /// Create a session with the given statement budget.
    pub fn new(id: u64, limit: u64) -> Self {
        Session { id, limit, admitted: AtomicU64::new(0), handles: Mutex::new(HashMap::new()) }
    }

    /// The session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Try to charge one statement against the budget. Returns `false`
    /// (and charges nothing) once the budget is exhausted; out-of-band
    /// commands (`STATS`, `CLOSE`) are never charged.
    pub fn admit_statement(&self) -> bool {
        // Serialized per connection, so load-then-add has no race within
        // a session.
        if self.admitted.load(Ordering::Relaxed) >= self.limit {
            return false;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Statements admitted so far.
    pub fn statements_admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Store a prepared handle under `name`, replacing any previous
    /// handle with that name (re-`PREPARE` is how clients refresh).
    /// Accepts either backend's prepared type.
    pub fn store(&self, name: &str, query: impl Into<PreparedHandle>) {
        self.handles.lock().expect("session lock").insert(name.to_string(), Arc::new(query.into()));
    }

    /// Look up a prepared handle by name.
    pub fn get(&self, name: &str) -> Option<Arc<PreparedHandle>> {
        self.handles.lock().expect("session lock").get(name).cloned()
    }

    /// Drop the handle `name`; returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.handles.lock().expect("session lock").remove(name).is_some()
    }

    /// Number of live prepared handles.
    pub fn num_handles(&self) -> usize {
        self.handles.lock().expect("session lock").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_core::{EngineConfig, FlashPEngine};
    use flashp_storage::{DataType, Schema, Timestamp, Value};

    fn tiny_engine() -> FlashPEngine {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let mut table = flashp_storage::TimeSeriesTable::new(schema);
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        for day in 0..3i64 {
            for row in 0..10i64 {
                table.append_row(t0 + day, &[Value::Int(row)], &[row as f64]).unwrap();
            }
        }
        FlashPEngine::new(table, EngineConfig::default())
    }

    #[test]
    fn handles_store_replace_and_remove() {
        let engine = tiny_engine();
        let session = Session::new(7, u64::MAX);
        assert_eq!(session.id(), 7);
        assert!(session.get("q").is_none());
        session.store("q", engine.prepare("SELECT SUM(m) FROM T WHERE t = ?").unwrap());
        assert_eq!(session.get("q").unwrap().num_params(), 1);
        // Re-PREPARE replaces.
        session.store("q", engine.prepare("SELECT SUM(m) FROM T WHERE t = 20200101").unwrap());
        assert_eq!(session.get("q").unwrap().num_params(), 0);
        assert_eq!(session.num_handles(), 1);
        assert!(session.remove("q"));
        assert!(!session.remove("q"));
    }

    #[test]
    fn statement_budget_is_enforced() {
        let session = Session::new(1, 2);
        assert!(session.admit_statement());
        assert!(session.admit_statement());
        assert!(!session.admit_statement(), "third statement exceeds the budget");
        assert!(!session.admit_statement(), "rejections do not consume budget");
        assert_eq!(session.statements_admitted(), 2);
    }
}
