//! The service loop: a TCP listener fronting a bounded admission queue
//! and a fixed worker pool over one shared [`Backend`] handle (a single
//! [`FlashPEngine`] or a sharded scatter-gather engine).
//!
//! ```text
//! accept loop ──► connection threads (1/conn: parse, admit, wait reply)
//!                    │ try_send ──────────────► bounded job queue
//!                    │   └─ Full → {"code":"busy"} (never a hang)
//!                    ▼                              │
//!                reply channel ◄── worker pool ◄────┘
//!                                   (N threads, engine snapshot per job)
//! ```
//!
//! Admission control is explicit: the job queue is a bounded
//! `sync_channel`; a full queue rejects the request *immediately* with a
//! typed `busy` error instead of blocking the connection. `STATS` and
//! `CLOSE` bypass the queue entirely, so observability and disconnects
//! keep working while the service is saturated. Graceful shutdown stops
//! the acceptor, lets every connection finish its in-flight request,
//! then drains whatever is still queued before joining the workers.

use crate::backend::Backend;
use crate::protocol::{self, Command, ErrorCode};
use crate::session::Session;
use crate::stats::ServerStats;
use flashp_core::{FlashPEngine, IngestBatch, Literal};
use flashp_storage::{Timestamp, Value};
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to check the shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(25);

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Worker threads executing admitted requests.
    pub workers: usize,
    /// Admission bound: requests that may wait in the queue beyond the
    /// ones the workers are executing. A full queue answers `busy`.
    pub queue_depth: usize,
    /// Statements one session may run (`u64::MAX` = unlimited).
    pub session_statement_limit: u64,
    /// Close a connection after this long without a complete request.
    pub idle_timeout: Duration,
    /// How long a connection waits for its admitted request's reply
    /// before answering a typed `timeout` error (the stale reply is
    /// discarded when it eventually arrives).
    pub reply_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            session_statement_limit: u64::MAX,
            idle_timeout: Duration::from_secs(30),
            reply_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(5),
        }
    }
}

/// One admitted request on its way to a worker.
struct Job {
    cmd: Command,
    session: Arc<Session>,
    reply: SyncSender<String>,
    admitted_at: Instant,
}

/// What a graceful shutdown drained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests completed by workers over the server's lifetime.
    pub completed: u64,
    /// Requests rejected `busy` over the server's lifetime.
    pub busy_rejections: u64,
    /// Replies that timed out over the server's lifetime.
    pub reply_timeouts: u64,
}

/// A running server. Dropping the handle shuts the service down
/// gracefully; call [`ServerHandle::shutdown`] to do it explicitly and
/// get the [`DrainReport`].
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    backend: Backend,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    job_tx: Option<SyncSender<Job>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared server counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The single engine the server fronts (shares versions with the
    /// service).
    ///
    /// # Panics
    ///
    /// Panics when the server was started with [`serve_backend`] over a
    /// sharded engine — use [`ServerHandle::backend`] there.
    pub fn engine(&self) -> &FlashPEngine {
        match &self.backend {
            Backend::Single(engine) => engine,
            Backend::Sharded(_) => {
                panic!("server fronts a sharded engine; use ServerHandle::backend")
            }
        }
    }

    /// The backend the server fronts, whatever its shape.
    pub fn backend(&self) -> &Backend {
        &self.backend
    }

    /// Gracefully stop: stop accepting, let connections finish their
    /// in-flight request, drain the queue, join every thread.
    /// Idempotent; also invoked by `Drop`.
    pub fn shutdown(&mut self) -> DrainReport {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Connections exit at their next poll tick (or right after the
        // reply they are waiting on); workers are still alive, so no
        // connection can block forever on an admitted request.
        let connections = std::mem::take(&mut *self.connections.lock().expect("conn registry"));
        for conn in connections {
            let _ = conn.join();
        }
        // All connection-held senders are gone; dropping the listener's
        // clone disconnects the channel once the queue is drained.
        self.job_tx = None;
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        DrainReport {
            completed: self.stats.completed.load(Ordering::Relaxed),
            busy_rejections: self.stats.busy_rejections.load(Ordering::Relaxed),
            reply_timeouts: self.stats.reply_timeouts.load(Ordering::Relaxed),
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start serving a single `engine` per `config`. Returns once the
/// listener is bound and the worker pool is up; the handle's address is
/// ready to connect to immediately.
pub fn serve(engine: FlashPEngine, config: ServerConfig) -> std::io::Result<ServerHandle> {
    serve_backend(Backend::Single(engine), config)
}

/// Start serving any [`Backend`] — the sharded scatter-gather engine
/// goes behind the exact same wire protocol, sessions, and admission
/// control as a single engine.
pub fn serve_backend(backend: Backend, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let stats = Arc::new(ServerStats::default());
    let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let (job_tx, job_rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
    let job_rx = Arc::new(Mutex::new(job_rx));

    let workers = (0..config.workers.max(1))
        .map(|_| {
            let backend = backend.clone();
            let stats = stats.clone();
            let job_rx = job_rx.clone();
            std::thread::spawn(move || worker_loop(backend, stats, job_rx))
        })
        .collect();

    let acceptor = {
        let backend = backend.clone();
        let stats = stats.clone();
        let shutdown = shutdown.clone();
        let connections = connections.clone();
        let job_tx = job_tx.clone();
        let config = config.clone();
        std::thread::spawn(move || {
            accept_loop(listener, backend, config, stats, shutdown, connections, job_tx)
        })
    };

    Ok(ServerHandle {
        addr,
        shutdown,
        stats,
        backend,
        acceptor: Some(acceptor),
        workers,
        connections,
        job_tx: Some(job_tx),
    })
}

fn accept_loop(
    listener: TcpListener,
    backend: Backend,
    config: ServerConfig,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
    job_tx: SyncSender<Job>,
) {
    let session_ids = AtomicU64::new(1);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let session_id = session_ids.fetch_add(1, Ordering::Relaxed);
                stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                stats.connections_active.fetch_add(1, Ordering::Relaxed);
                let backend = backend.clone();
                let config = config.clone();
                let stats = stats.clone();
                let shutdown = shutdown.clone();
                let job_tx = job_tx.clone();
                let handle = std::thread::spawn(move || {
                    let _ = serve_connection(
                        stream, backend, &config, &stats, shutdown, job_tx, session_id,
                    );
                    stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                });
                connections.lock().expect("conn registry").push(handle);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL_TICK),
            Err(_) => std::thread::sleep(POLL_TICK),
        }
    }
}

/// Read a line, waking every [`POLL_TICK`] to honor shutdown and the
/// idle timeout. Returns `Ok(false)` when the connection should close
/// (EOF, idle timeout, or shutdown).
fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    buf: &mut String,
    shutdown: &AtomicBool,
    idle_timeout: Duration,
) -> std::io::Result<bool> {
    let started = Instant::now();
    loop {
        match reader.read_line(buf) {
            Ok(0) => return Ok(false),
            Ok(_) => {
                // A torn line (timeout mid-line keeps partial bytes in
                // `buf`) ends without '\n' only at EOF, handled above.
                if buf.ends_with('\n') {
                    return Ok(true);
                }
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                if shutdown.load(Ordering::SeqCst) || started.elapsed() > idle_timeout {
                    return Ok(false);
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    backend: Backend,
    config: &ServerConfig,
    stats: &ServerStats,
    shutdown: Arc<AtomicBool>,
    job_tx: SyncSender<Job>,
    session_id: u64,
) -> std::io::Result<()> {
    // Responses are one small line per request; without nodelay, Nagle
    // holds the tail of each response for the peer's delayed ACK
    // (~40 ms), which dwarfs statement latency.
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(POLL_TICK))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let session = Arc::new(Session::new(session_id, config.session_statement_limit));

    let mut buf = String::new();
    loop {
        buf.clear();
        if !read_line_polled(&mut reader, &mut buf, &shutdown, config.idle_timeout)? {
            return Ok(());
        }
        if buf.trim().is_empty() {
            continue;
        }
        let (mut line, done) =
            handle_line(&buf, &backend, config, stats, &shutdown, &job_tx, &session);
        line.push('\n');
        writer.write_all(line.as_bytes())?;
        writer.flush()?;
        if done {
            return Ok(());
        }
    }
}

/// Process one request line; returns the response and whether the
/// connection should close afterwards.
fn handle_line(
    raw: &str,
    backend: &Backend,
    config: &ServerConfig,
    stats: &ServerStats,
    shutdown: &AtomicBool,
    job_tx: &SyncSender<Job>,
    session: &Arc<Session>,
) -> (String, bool) {
    let cmd = match protocol::parse_command(raw) {
        Ok(cmd) => cmd,
        Err(e) => return (protocol::error_line(e.code, &e.message), false),
    };
    // Out-of-band commands: answered here, never queued, never counted
    // against the session budget — they must work under overload.
    match cmd {
        Command::Close => return (protocol::encode_closed(), true),
        Command::Stats => return (backend.stats_line(stats.to_json()), false),
        _ => {}
    }
    if shutdown.load(Ordering::SeqCst) {
        return (
            protocol::error_line(ErrorCode::Shutdown, "server is draining; no new work admitted"),
            false,
        );
    }
    if !session.admit_statement() {
        stats.limit_rejections.fetch_add(1, Ordering::Relaxed);
        return (
            protocol::error_line(
                ErrorCode::Limit,
                &format!(
                    "session statement limit ({}) exhausted; open a new connection",
                    config.session_statement_limit
                ),
            ),
            false,
        );
    }
    let (reply_tx, reply_rx) = mpsc::sync_channel::<String>(1);
    let job = Job { cmd, session: session.clone(), reply: reply_tx, admitted_at: Instant::now() };
    match job_tx.try_send(job) {
        Ok(()) => {}
        Err(TrySendError::Full(_)) => {
            stats.busy_rejections.fetch_add(1, Ordering::Relaxed);
            return (
                protocol::error_line(
                    ErrorCode::Busy,
                    "server at capacity: request queue is full, retry later",
                ),
                false,
            );
        }
        Err(TrySendError::Disconnected(_)) => {
            return (protocol::error_line(ErrorCode::Shutdown, "server is shutting down"), false);
        }
    }
    stats.queue_depth.fetch_add(1, Ordering::Relaxed);
    match reply_rx.recv_timeout(config.reply_timeout) {
        Ok(line) => (line, false),
        Err(RecvTimeoutError::Timeout) => {
            // Dropping reply_rx discards the worker's eventual answer.
            stats.reply_timeouts.fetch_add(1, Ordering::Relaxed);
            (
                protocol::error_line(
                    ErrorCode::Timeout,
                    "request admitted but not answered in time; response discarded",
                ),
                false,
            )
        }
        Err(RecvTimeoutError::Disconnected) => {
            (protocol::error_line(ErrorCode::Shutdown, "worker pool is gone"), true)
        }
    }
}

fn worker_loop(backend: Backend, stats: Arc<ServerStats>, rx: Arc<Mutex<Receiver<Job>>>) {
    loop {
        // Hold the receiver lock only for the dequeue, not the work.
        let job = match rx.lock().expect("worker queue lock").recv() {
            Ok(job) => job,
            Err(_) => return, // every sender dropped: queue drained, exit
        };
        let label = job.cmd.label();
        let line = execute_command(&backend, &job.session, job.cmd);
        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
        stats.completed.fetch_add(1, Ordering::Relaxed);
        stats.histogram(label).record(job.admitted_at.elapsed().as_micros() as u64);
        // The connection may have timed out and dropped its receiver;
        // its next request gets a fresh channel, so just discard.
        let _ = job.reply.send(line);
    }
}

/// Execute one admitted command against the backend + session, returning
/// the encoded response line. Pure request→response: all socket and
/// admission concerns live in the connection thread.
fn execute_command(backend: &Backend, session: &Session, cmd: Command) -> String {
    match cmd {
        Command::Prepare { name, sql } => match backend.prepare(&sql) {
            Ok(query) => {
                let num_params = query.num_params();
                session.store(&name, query);
                protocol::encode_prepared(&name, num_params)
            }
            Err(e) => protocol::engine_error_line(&e),
        },
        Command::Execute { name, args } => match session.get(&name) {
            Some(query) => match query.execute_with(&args) {
                Ok(out) => protocol::encode_output(&out),
                Err(e) => protocol::engine_error_line(&e),
            },
            None => protocol::error_line(
                ErrorCode::UnknownHandle,
                &format!("no prepared handle '{name}' in this session"),
            ),
        },
        Command::Deallocate { name } => {
            if session.remove(&name) {
                protocol::encode_deallocated(&name)
            } else {
                protocol::error_line(
                    ErrorCode::UnknownHandle,
                    &format!("no prepared handle '{name}' in this session"),
                )
            }
        }
        Command::Statement { sql } => match backend.execute(&sql) {
            Ok(out) => protocol::encode_output(&out),
            Err(e) => protocol::engine_error_line(&e),
        },
        Command::Ingest { rows } => match build_batch(backend, &rows) {
            Ok(batch) => match backend.ingest(batch) {
                Ok(staged) => protocol::encode_ingested(staged, backend.pending_rows()),
                Err(e) => protocol::engine_error_line(&e),
            },
            Err(msg) => protocol::error_line(ErrorCode::Parameter, &msg),
        },
        Command::Publish => match backend.publish() {
            Ok(stats) => protocol::encode_published(&stats),
            Err(e) => protocol::engine_error_line(&e),
        },
        Command::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(ms.min(60_000)));
            protocol::encode_slept(ms)
        }
        // Handled out-of-band; answered here only if queued by a future
        // caller of execute_command.
        Command::Stats => backend.stats_line(serde_json::json!({})),
        Command::Close => protocol::encode_closed(),
    }
}

/// Validate `INGEST` tuples against the schema and assemble a batch.
/// Each row is `(t, dims..., measures...)` in schema order.
fn build_batch(backend: &Backend, rows: &[Vec<Literal>]) -> Result<IngestBatch, String> {
    let schema = backend.schema();
    let num_dims = schema.num_dimensions();
    let num_measures = schema.num_measures();
    let want = 1 + num_dims + num_measures;
    let mut batch = IngestBatch::new();
    for (i, row) in rows.iter().enumerate() {
        if row.len() != want {
            return Err(format!(
                "row {i}: expected {want} values (t, {num_dims} dims, {num_measures} measures), \
                 got {}",
                row.len()
            ));
        }
        let t = match row[0] {
            Literal::Int(v) => {
                Timestamp::from_yyyymmdd(v).map_err(|e| format!("row {i}: bad timestamp: {e}"))?
            }
            ref other => return Err(format!("row {i}: timestamp must be YYYYMMDD, got {other}")),
        };
        let dims: Vec<Value> = row[1..1 + num_dims]
            .iter()
            .map(|lit| match lit {
                Literal::Int(v) => Ok(Value::Int(*v)),
                Literal::Float(v) => Ok(Value::Float(*v)),
                Literal::Str(s) => Ok(Value::Str(s.clone())),
                other => Err(format!("row {i}: bad dimension value {other}")),
            })
            .collect::<Result<_, _>>()?;
        let measures: Vec<f64> = row[1 + num_dims..]
            .iter()
            .map(|lit| match lit {
                Literal::Int(v) => Ok(*v as f64),
                Literal::Float(v) => Ok(*v),
                other => Err(format!("row {i}: measures must be numeric, got {other}")),
            })
            .collect::<Result<_, _>>()?;
        batch.push_row(t, &dims, &measures);
    }
    Ok(batch)
}
