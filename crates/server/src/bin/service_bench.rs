//! Closed-loop service benchmark: starts an in-process server over a
//! synthetic ads dataset, drives the 1/8/64/256-client sweep with a
//! concurrent publisher, and writes `BENCH_service.json` at the repo
//! root (p50/p99 latency and statements/sec per client count).
//!
//! Run with `cargo run -p flashp-server --release --bin service_bench`.

fn main() {
    let report = flashp_server::harness::service_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    let body = serde_json::to_string_pretty(&report).expect("render");
    std::fs::write(path, body + "\n").expect("write BENCH_service.json");
    println!("wrote {path}");
    for run in report.get("runs").and_then(|r| r.as_array()).into_iter().flatten() {
        println!(
            "  {:>3} clients: p50 {:>6} us  p99 {:>7} us  {:>9.0} stmt/s  (busy {})",
            run.get("clients").and_then(|v| v.as_f64()).unwrap_or(0.0),
            run.get("p50_us").and_then(|v| v.as_f64()).unwrap_or(0.0),
            run.get("p99_us").and_then(|v| v.as_f64()).unwrap_or(0.0),
            run.get("statements_per_sec").and_then(|v| v.as_f64()).unwrap_or(0.0),
            run.get("busy").and_then(|v| v.as_f64()).unwrap_or(0.0),
        );
    }
}
