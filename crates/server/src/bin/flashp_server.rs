//! The FlashP service binary: builds a synthetic ads dataset, samples
//! it, and serves the wire protocol over TCP until stdin closes (or a
//! `shutdown` line arrives), then drains gracefully.
//!
//! ```text
//! cargo run -p flashp-server --release --bin flashp_server -- \
//!     --addr 127.0.0.1:0 --workers 4 --queue 64 --rows 2000 --days 30
//! ```
//!
//! The bound address is printed as the first stdout line
//! (`flashp-server listening on <addr>`), so harnesses can start the
//! binary with port 0 and scrape the real port.

use flashp_core::{EngineConfig, FlashPEngine, SampleCatalog, SamplerChoice};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_server::server::{serve, ServerConfig};
use std::io::BufRead;
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    queue: usize,
    rows: usize,
    days: usize,
    seed: u64,
    session_limit: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue: 64,
        rows: 2_000,
        days: 30,
        seed: 11,
        session_limit: u64::MAX,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => args.workers = parse(&value("--workers")?)?,
            "--queue" => args.queue = parse(&value("--queue")?)?,
            "--rows" => args.rows = parse(&value("--rows")?)?,
            "--days" => args.days = parse(&value("--days")?)?,
            "--seed" => args.seed = parse(&value("--seed")?)?,
            "--session-limit" => args.session_limit = parse(&value("--session-limit")?)?,
            "--help" | "-h" => {
                return Err("usage: flashp_server [--addr A] [--workers N] [--queue N] \
                            [--rows N] [--days N] [--seed N] [--session-limit N]"
                    .to_string())
            }
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    s.parse().map_err(|e| format!("bad value '{s}': {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    eprintln!("generating {} days x ~{} rows/day (seed {})...", args.days, args.rows, args.seed);
    let ds = generate_dataset(&DatasetConfig::new(args.rows, args.days, args.seed))
        .expect("dataset generation");
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&ds.table, &config).expect("sample build");
    let engine = FlashPEngine::with_catalog(ds.table, config, catalog);

    let mut handle = serve(
        engine,
        ServerConfig {
            addr: args.addr,
            workers: args.workers,
            queue_depth: args.queue,
            session_statement_limit: args.session_limit,
            idle_timeout: Duration::from_secs(300),
            ..Default::default()
        },
    )
    .expect("bind");
    println!("flashp-server listening on {}", handle.local_addr());

    // Serve until stdin closes (the CI smoke test's shutdown signal) or
    // an explicit `shutdown` line arrives.
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(cmd) if cmd.trim().eq_ignore_ascii_case("shutdown") => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    let drain = handle.shutdown();
    println!(
        "flashp-server drained: completed={} busy={} timeouts={}",
        drain.completed, drain.busy_rejections, drain.reply_timeouts
    );
}
