//! The engine behind the service: one [`FlashPEngine`] or a
//! scatter-gather [`ShardedEngine`], behind one dispatch surface.
//!
//! The worker pool, sessions, and wire protocol are engine-shape
//! agnostic: every command the service executes goes through [`Backend`],
//! and every prepared statement a session holds is a [`PreparedHandle`].
//! The two variants answer with the same response encodings — the
//! sharded-service oracle test asserts EXECUTE responses stay
//! byte-identical to in-process sharded execution across a concurrent
//! publish, exactly like the single-engine oracle.

use flashp_core::{
    EngineError, ExecOutput, FlashPEngine, IngestBatch, Literal, PreparedQuery, PublishStats,
    ShardedEngine, ShardedPrepared,
};
use flashp_storage::SchemaRef;
use serde_json::Value;

/// The engine a server fronts.
#[derive(Clone)]
pub enum Backend {
    /// One engine over the whole table.
    Single(FlashPEngine),
    /// Hash-partitioned slot engines behind a scatter-gather combiner.
    Sharded(ShardedEngine),
}

impl From<FlashPEngine> for Backend {
    fn from(engine: FlashPEngine) -> Self {
        Backend::Single(engine)
    }
}

impl From<ShardedEngine> for Backend {
    fn from(engine: ShardedEngine) -> Self {
        Backend::Sharded(engine)
    }
}

impl Backend {
    /// Prepare a statement for repeated execution.
    pub fn prepare(&self, sql: &str) -> Result<PreparedHandle, EngineError> {
        match self {
            Backend::Single(e) => Ok(PreparedHandle::from(e.prepare(sql)?)),
            Backend::Sharded(e) => Ok(PreparedHandle::from(e.prepare(sql)?)),
        }
    }

    /// Execute a one-shot statement (including `EXPLAIN`).
    pub fn execute(&self, sql: &str) -> Result<ExecOutput, EngineError> {
        match self {
            Backend::Single(e) => e.execute(sql),
            Backend::Sharded(e) => e.execute(sql),
        }
    }

    /// Stage rows for the next publish.
    pub fn ingest(&self, batch: IngestBatch) -> Result<usize, EngineError> {
        match self {
            Backend::Single(e) => e.ingest(batch),
            Backend::Sharded(e) => e.ingest(batch),
        }
    }

    /// Publish staged rows and swap the active version.
    pub fn publish(&self) -> Result<PublishStats, EngineError> {
        match self {
            Backend::Single(e) => e.publish(),
            Backend::Sharded(e) => e.publish(),
        }
    }

    /// The active version number (the sharded backend reports its outer
    /// snapshot version).
    pub fn version(&self) -> u64 {
        match self {
            Backend::Single(e) => e.version(),
            Backend::Sharded(e) => e.version(),
        }
    }

    /// Rows staged but not yet published (summed across shards).
    pub fn pending_rows(&self) -> usize {
        match self {
            Backend::Single(e) => e.stats().pending_rows,
            Backend::Sharded(e) => e.stats().pending_rows(),
        }
    }

    /// The served table's schema (`INGEST` validates rows against it;
    /// every shard slot shares the same schema).
    pub fn schema(&self) -> SchemaRef {
        match self {
            Backend::Single(e) => e.table().schema().clone(),
            Backend::Sharded(e) => e.snapshot().slots()[0].table().schema().clone(),
        }
    }

    /// Encode the `STATS` response: single engines report the flat
    /// engine counters, sharded engines the per-shard breakdown.
    pub fn stats_line(&self, server: Value) -> String {
        match self {
            Backend::Single(e) => crate::protocol::encode_stats(&e.stats(), server),
            Backend::Sharded(e) => crate::protocol::encode_sharded_stats(&e.stats(), server),
        }
    }
}

/// A session-held prepared statement for either backend shape.
pub enum PreparedHandle {
    /// Prepared against a single engine.
    Single(PreparedQuery),
    /// Prepared against a sharded engine (per-slot plan cache inside).
    Sharded(ShardedPrepared),
}

impl From<PreparedQuery> for PreparedHandle {
    fn from(query: PreparedQuery) -> Self {
        PreparedHandle::Single(query)
    }
}

impl From<ShardedPrepared> for PreparedHandle {
    fn from(query: ShardedPrepared) -> Self {
        PreparedHandle::Sharded(query)
    }
}

impl PreparedHandle {
    /// Number of `?` parameters an `EXECUTE` must bind.
    pub fn num_params(&self) -> usize {
        match self {
            PreparedHandle::Single(q) => q.num_params(),
            PreparedHandle::Sharded(q) => q.num_params(),
        }
    }

    /// Execute with bound parameters.
    pub fn execute_with(&self, params: &[Literal]) -> Result<ExecOutput, EngineError> {
        match self {
            PreparedHandle::Single(q) => q.execute_with(params),
            PreparedHandle::Sharded(q) => q.execute_with(params),
        }
    }
}
