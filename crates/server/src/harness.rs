//! Closed-loop load generation against a running server.
//!
//! Each client is one blocking connection issuing requests back-to-back
//! (closed loop: the next request starts when the previous response
//! lands), so measured latency includes queueing under contention —
//! the service-level number, not the engine-level one. An optional
//! publisher connection ingests and publishes concurrently, exercising
//! catalog-version swaps under live query load.

use crate::protocol::ErrorCode;
use serde_json::{json, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A minimal blocking protocol client: one request line out, one JSON
/// response line back.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a server address (e.g. from
    /// [`crate::ServerHandle::local_addr`]).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Send one request line and read the one-line response (without the
    /// trailing newline).
    pub fn roundtrip(&mut self, request: &str) -> std::io::Result<String> {
        self.writer.write_all(request.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

/// Whether a response line reports success.
pub fn is_ok(line: &str) -> bool {
    line.starts_with(r#"{"ok":true"#)
}

/// Whether a response line carries the given typed error code.
pub fn has_error_code(line: &str, code: ErrorCode) -> bool {
    line.contains(&format!(r#""code":"{}""#, code.as_str()))
}

/// One load-harness run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent closed-loop clients.
    pub clients: usize,
    /// Statements each client issues after its `PREPARE`.
    pub statements_per_client: usize,
    /// Run a concurrent publisher connection (`INGEST` + `PUBLISH`
    /// every few milliseconds) for the duration of the run.
    pub with_publisher: bool,
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients driven.
    pub clients: usize,
    /// Statements answered `ok`.
    pub ok: u64,
    /// Statements rejected `busy`.
    pub busy: u64,
    /// Other error responses (should be 0 in a healthy run).
    pub errors: u64,
    /// Publishes completed by the concurrent publisher.
    pub publishes: u64,
    /// Wall-clock duration of the measured phase.
    pub elapsed: Duration,
    /// Median per-statement latency (client-observed), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Completed statements per second across all clients.
    pub statements_per_sec: f64,
}

impl LoadReport {
    /// Render for `BENCH_service.json`.
    pub fn to_json(&self) -> Value {
        json!({
            "clients": self.clients,
            "ok": self.ok,
            "busy": self.busy,
            "errors": self.errors,
            "publishes": self.publishes,
            "elapsed_secs": self.elapsed.as_secs_f64(),
            "p50_us": self.p50_us,
            "p99_us": self.p99_us,
            "statements_per_sec": self.statements_per_sec,
        })
    }
}

/// The statement mix each client drives: a prepared approximate
/// grouped SELECT re-bound with a rotating age predicate — the
/// plan-cache-free hot path a dashboard fan-out produces.
const PREPARE_LINE: &str = "PREPARE hot AS SELECT SUM(Impression) FROM ads \
     WHERE age <= ? AND t BETWEEN 20200105 AND 20200125 GROUP BY t \
     OPTION (SAMPLE_RATE = 0.05)";

/// Drive a closed loop against `addr`. Panics on I/O failure (the
/// harness runs against a server the caller just started).
pub fn run_closed_loop(addr: std::net::SocketAddr, config: &LoadConfig) -> LoadReport {
    let stop_publisher = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let publisher = config.with_publisher.then(|| {
        let stop = stop_publisher.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).expect("publisher connect");
            let mut publishes = 0u64;
            let mut day = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                // One fresh row on a rotating existing day, then publish:
                // every cycle swaps the catalog version under the load.
                let t = 20200105 + (day % 20);
                day += 1;
                let row = format!(
                    "INGEST ({t}, 30, 'F', 'city_01', 'mobile', 'ios', 1, 1, 1, 'search', 1, 1, \
                     12.0, 3.0, 1.0, 0.5)"
                );
                let r = client.roundtrip(&row).expect("ingest");
                assert!(is_ok(&r), "ingest failed: {r}");
                let r = client.roundtrip("PUBLISH").expect("publish");
                assert!(is_ok(&r), "publish failed: {r}");
                publishes += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            publishes
        })
    });

    let started = Instant::now();
    let results: Vec<(Vec<u64>, u64, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("client connect");
                    let r = client.roundtrip(PREPARE_LINE).expect("prepare");
                    assert!(is_ok(&r), "prepare failed: {r}");
                    let mut latencies = Vec::with_capacity(config.statements_per_client);
                    let (mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64);
                    for i in 0..config.statements_per_client {
                        let age = 20 + ((c + i) % 40);
                        let line = format!("EXECUTE hot ({age})");
                        let t0 = Instant::now();
                        let resp = client.roundtrip(&line).expect("execute");
                        latencies.push(t0.elapsed().as_micros() as u64);
                        if is_ok(&resp) {
                            ok += 1;
                        } else if has_error_code(&resp, ErrorCode::Busy) {
                            busy += 1;
                        } else {
                            errors += 1;
                        }
                    }
                    let _ = client.roundtrip("CLOSE");
                    (latencies, ok, busy, errors)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();

    stop_publisher.store(true, std::sync::atomic::Ordering::Relaxed);
    let publishes = publisher.map(|h| h.join().expect("publisher thread")).unwrap_or(0);

    let mut latencies: Vec<u64> = Vec::new();
    let (mut ok, mut busy, mut errors) = (0u64, 0u64, 0u64);
    for (lats, o, b, e) in results {
        latencies.extend(lats);
        ok += o;
        busy += b;
        errors += e;
    }
    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    LoadReport {
        clients: config.clients,
        ok,
        busy,
        errors,
        publishes,
        elapsed,
        p50_us: quantile(0.50),
        p99_us: quantile(0.99),
        statements_per_sec: ok as f64 / elapsed.as_secs_f64().max(1e-9),
    }
}

/// Run the standard 1/8/64/256-client sweep (with a concurrent
/// publisher) against a freshly started server over a synthetic ads
/// dataset, and return the `BENCH_service.json` document. Shared by
/// `service_bench` and `bench_report`.
pub fn service_report() -> Value {
    use flashp_core::{EngineConfig, FlashPEngine, SampleCatalog, SamplerChoice};
    use flashp_data::{generate_dataset, DatasetConfig};

    let ds = generate_dataset(&DatasetConfig::new(2_000, 30, 11)).expect("dataset");
    let engine_config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&ds.table, &engine_config).expect("catalog");
    let engine = FlashPEngine::with_catalog(ds.table, engine_config, catalog);

    // At least two workers even on single-CPU hosts so the sweep always
    // measures the pool path, not a serial worker.
    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4).clamp(2, 16);
    let mut handle = crate::server::serve(
        engine,
        crate::server::ServerConfig { workers, queue_depth: 512, ..Default::default() },
    )
    .expect("server start");
    let addr = handle.local_addr();

    let mut parts = Vec::new();
    for clients in [1usize, 8, 64, 256] {
        // Keep total statements roughly level so the sweep stays fast
        // while every client still gets a meaningful sample.
        let statements_per_client = (4096 / clients).max(8);
        let report = run_closed_loop(
            addr,
            &LoadConfig { clients, statements_per_client, with_publisher: true },
        );
        assert_eq!(report.errors, 0, "load run hit non-busy errors");
        parts.push(report.to_json());
    }
    let drain = handle.shutdown();
    json!({
        "bench": "BENCH_service",
        "workers": workers,
        "queue_depth": 512,
        "runs": parts,
        "drained": {
            "completed": drain.completed,
            "busy_rejections": drain.busy_rejections,
            "reply_timeouts": drain.reply_timeouts,
        },
    })
}
