//! Server-side observability: lock-free latency histograms per command
//! class plus admission/queue counters, all cheap enough to bump on every
//! request and to snapshot from the out-of-band `STATS` path while the
//! admission queue is saturated.

use serde_json::{json, Map, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Histogram bucket count: bucket `i` holds latencies in
/// `[2^i, 2^(i+1)) µs`, except bucket 0 (`< 2 µs`) and the last bucket,
/// which absorbs everything above `2^(BUCKETS-1) µs` (~9 minutes).
const BUCKETS: usize = 30;

/// A fixed power-of-two latency histogram in microseconds.
///
/// Recording is a single relaxed fetch-add; quantiles are read by the
/// `STATS` path and the load harness. Quantile answers are upper bucket
/// bounds, so they are conservative within a factor of two — plenty for
/// p50/p99 service dashboards.
#[derive(Default)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total: AtomicU64,
    sum_us: AtomicU64,
}

impl LatencyHistogram {
    fn bucket(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Record one observation, in microseconds.
    pub fn record(&self, us: u64) {
        self.counts[Self::bucket(us)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / n as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) as an upper bucket bound in
    /// microseconds; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn to_json(&self) -> Value {
        json!({
            "count": self.count(),
            "mean_us": self.mean_us(),
            "p50_us": self.quantile_us(0.50),
            "p99_us": self.quantile_us(0.99),
        })
    }
}

/// Command classes that get their own latency histogram.
pub const COMMAND_CLASSES: &[&str] =
    &["prepare", "execute", "deallocate", "statement", "ingest", "publish", "sleep"];

/// Shared server counters, updated by connection and worker threads.
#[derive(Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub connections_accepted: AtomicU64,
    /// Connections currently open.
    pub connections_active: AtomicU64,
    /// Requests currently admitted but not yet completed (queued or
    /// executing) — the queue depth the admission bound limits.
    pub queue_depth: AtomicU64,
    /// Requests rejected with `busy` because the queue was full.
    pub busy_rejections: AtomicU64,
    /// Requests rejected because a session exceeded its statement limit.
    pub limit_rejections: AtomicU64,
    /// Requests whose reply timed out (admitted, no answer in time).
    pub reply_timeouts: AtomicU64,
    /// Requests completed by workers (ok or error).
    pub completed: AtomicU64,
    /// Per-class latency histograms, indexed like [`COMMAND_CLASSES`].
    histograms: [LatencyHistogram; 7],
}

impl ServerStats {
    /// The latency histogram for a command label (unknown labels map to
    /// `statement`).
    pub fn histogram(&self, label: &str) -> &LatencyHistogram {
        let idx = COMMAND_CLASSES.iter().position(|c| *c == label).unwrap_or(3);
        &self.histograms[idx]
    }

    /// Render every counter as a JSON object for the `STATS` response.
    pub fn to_json(&self) -> Value {
        let mut latency = Map::new();
        for (i, class) in COMMAND_CLASSES.iter().enumerate() {
            if self.histograms[i].count() > 0 {
                latency.insert(class.to_string(), self.histograms[i].to_json());
            }
        }
        json!({
            "connections_accepted": self.connections_accepted.load(Ordering::Relaxed),
            "connections_active": self.connections_active.load(Ordering::Relaxed),
            "queue_depth": self.queue_depth.load(Ordering::Relaxed),
            "busy_rejections": self.busy_rejections.load(Ordering::Relaxed),
            "limit_rejections": self.limit_rejections.load(Ordering::Relaxed),
            "reply_timeouts": self.reply_timeouts.load(Ordering::Relaxed),
            "completed": self.completed.load(Ordering::Relaxed),
            "latency": latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_powers_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(1024), 11);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_are_conservative_upper_bounds() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 5000] {
            h.record(us);
        }
        assert_eq!(h.count(), 10);
        let p50 = h.quantile_us(0.5);
        // The 5th observation is 50 µs; its bucket's upper bound is 64.
        assert!((50..=64).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile_us(0.99);
        assert!(p99 >= 5000, "p99 = {p99}");
        assert!(h.mean_us() > 0.0);
        // Empty histogram answers zeros.
        let empty = LatencyHistogram::default();
        assert_eq!(empty.quantile_us(0.99), 0);
        assert_eq!(empty.mean_us(), 0.0);
    }

    #[test]
    fn stats_render_histograms_by_label() {
        let s = ServerStats::default();
        s.histogram("execute").record(100);
        s.histogram("no_such_class").record(7); // falls back to statement
        let v = s.to_json();
        let latency = v.get("latency").unwrap();
        assert!(latency.get("execute").is_some());
        assert!(latency.get("statement").is_some());
        assert!(latency.get("publish").is_none(), "empty classes are omitted");
    }
}
