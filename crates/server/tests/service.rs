//! End-to-end service tests over real TCP connections.
//!
//! The load-bearing invariant: the server is a *transport*, not a
//! different execution engine — wire responses are byte-identical to
//! encoding the same execution done in-process, including while an
//! ingest→publish cycle swaps the catalog version under the session's
//! prepared handles. Admission control is typed and prompt: a full
//! queue answers `busy`, a spent session answers `limit`, a draining
//! server answers `shutdown`, and none of them ever hang a client.

use flashp_core::{EngineConfig, FlashPEngine, Literal, SampleCatalog, SamplerChoice};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_server::harness::{has_error_code, is_ok, Client};
use flashp_server::protocol::{self, ErrorCode};
use flashp_server::server::{serve, ServerConfig, ServerHandle};
use std::time::{Duration, Instant};

/// A 30-day ads dataset (20200101..20200130) with a two-layer GSW
/// catalog — the same shape the repo's pipeline tests use.
fn engine(seed: u64) -> FlashPEngine {
    let ds = generate_dataset(&DatasetConfig::new(400, 30, seed)).unwrap();
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&ds.table, &config).unwrap();
    FlashPEngine::with_catalog(ds.table, config, catalog)
}

fn start(config: ServerConfig) -> ServerHandle {
    serve(engine(17), config).expect("server start")
}

const FORECAST_TEMPLATE: &str = "FORECAST SUM(Impression) FROM ads \
     WHERE age <= 30 AND gender = 'F' USING (?, ?) \
     OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";

/// One full INGEST row for the ads schema: t + 11 dims + 4 measures.
fn ingest_row(t: i64) -> String {
    format!(
        "INGEST ({t}, 28, 'F', 'city_03', 'mobile', 'ios', 2, 1, 3, 'search', 2, 1, \
         150.0, 12.0, 3.0, 1.0)"
    )
}

#[test]
fn wire_responses_match_in_process_execution_across_a_publish() {
    let mut handle = start(ServerConfig::default());
    let engine = handle.engine().clone();
    let mut client = Client::connect(handle.local_addr()).unwrap();

    // Prepared FORECAST over the wire vs the same template in-process.
    let r = client.roundtrip(&format!("PREPARE f AS {FORECAST_TEMPLATE}")).unwrap();
    assert!(is_ok(&r), "{r}");
    assert!(r.contains(r#""num_params":2"#), "{r}");
    let oracle = engine.prepare(FORECAST_TEMPLATE).unwrap();

    let check_forecast = |client: &mut Client, lo: i64, hi: i64, label: &str| {
        let wire = client.roundtrip(&format!("EXECUTE f ({lo}, {hi})")).unwrap();
        let local = oracle.execute_with(&[Literal::Int(lo), Literal::Int(hi)]).unwrap();
        assert_eq!(wire, protocol::encode_output(&local), "{label}: {lo}..{hi}");
    };
    check_forecast(&mut client, 20200101, 20200125, "v0");
    check_forecast(&mut client, 20200105, 20200130, "v0");

    // One-shot SELECT and EXPLAIN lines are the same bytes too.
    let sql = "SELECT SUM(Click) FROM ads WHERE age <= 40 AND t BETWEEN 20200103 AND 20200110 \
               GROUP BY t OPTION (SAMPLE_RATE = 0.2)";
    let wire = client.roundtrip(sql).unwrap();
    assert_eq!(wire, protocol::encode_output(&engine.execute(sql).unwrap()));
    let explain = format!("EXPLAIN {FORECAST_TEMPLATE}").replace("(?, ?)", "(20200101, 20200125)");
    let wire = client.roundtrip(&explain).unwrap();
    assert_eq!(wire, protocol::encode_output(&engine.execute(&explain).unwrap()));

    // Ingest a fresh day over the wire and publish: the session's
    // prepared handle must now serve the new version, still
    // byte-identical to in-process execution of the new version.
    let v0 = engine.version();
    let r = client.roundtrip(&ingest_row(20200131)).unwrap();
    assert!(is_ok(&r) && r.contains(r#""staged_rows":1"#), "{r}");
    let r = client.roundtrip(&ingest_row(20200131)).unwrap();
    assert!(r.contains(r#""pending_rows":2"#), "{r}");
    // Staged rows are invisible until PUBLISH.
    assert_eq!(engine.version(), v0);
    let r = client.roundtrip("PUBLISH").unwrap();
    assert!(is_ok(&r) && r.contains(r#""appended_rows":2"#), "{r}");
    assert!(engine.version() > v0, "publish must swap the version");

    check_forecast(&mut client, 20200105, 20200131, "v1 extended into the published day");
    check_forecast(&mut client, 20200101, 20200125, "v1 re-plans the old range");

    // The relative-window form works over the wire and matches the
    // equivalent absolute window (the published day anchors `latest`).
    let rel = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
               USING LAST ? DAYS OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";
    let r = client.roundtrip(&format!("PREPARE rel AS {rel}")).unwrap();
    assert!(is_ok(&r), "{r}");
    let wire = client.roundtrip("EXECUTE rel (27)").unwrap();
    let local = engine.prepare(rel).unwrap().execute_with(&[Literal::Int(27)]).unwrap();
    assert_eq!(wire, protocol::encode_output(&local));

    assert!(is_ok(&client.roundtrip("DEALLOCATE rel").unwrap()));
    assert!(has_error_code(
        &client.roundtrip("EXECUTE rel (27)").unwrap(),
        ErrorCode::UnknownHandle
    ));
    handle.shutdown();
}

#[test]
fn oracle_holds_under_concurrent_publishes() {
    // A publisher swaps versions every few milliseconds while a client
    // re-executes the same binding. Each wire response must be
    // byte-identical to an in-process execution — not of a pinned
    // version, but of *some* version the server could have seen, which
    // we pin per iteration by quiescing the publisher.
    let mut handle = start(ServerConfig::default());
    let engine = handle.engine().clone();
    let addr = handle.local_addr();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let publisher = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut day = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let t = 20200201 + day;
                day += 1;
                assert!(is_ok(&client.roundtrip(&ingest_row(t)).unwrap()));
                assert!(is_ok(&client.roundtrip("PUBLISH").unwrap()));
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut client = Client::connect(addr).unwrap();
    assert!(is_ok(&client.roundtrip(&format!("PREPARE f AS {FORECAST_TEMPLATE}")).unwrap()));
    let oracle = engine.prepare(FORECAST_TEMPLATE).unwrap();
    let mut versions_seen = std::collections::HashSet::new();
    for _ in 0..30 {
        // Results depend only on the catalog version; when the version
        // is stable across the wire call, in-process execution of that
        // version must produce the same bytes.
        let v_before = engine.version();
        let wire = client.roundtrip("EXECUTE f (20200101, 20200125)").unwrap();
        let v_after = engine.version();
        if v_before == v_after {
            let local =
                oracle.execute_with(&[Literal::Int(20200101), Literal::Int(20200125)]).unwrap();
            assert_eq!(wire, protocol::encode_output(&local), "at version {v_after}");
            versions_seen.insert(v_after);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        versions_seen.len() >= 2,
        "the publisher must have swapped versions mid-run (saw {versions_seen:?})"
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    publisher.join().unwrap();
    handle.shutdown();
}

#[test]
fn overload_answers_typed_busy_and_recovers() {
    // 2 workers + a 2-deep queue, saturated by 4 SLEEPs; 3 more clients
    // must be rejected `busy` promptly, nothing panics, and the service
    // answers normally once the sleeps finish.
    let mut handle = start(ServerConfig { workers: 2, queue_depth: 2, ..Default::default() });
    let addr = handle.local_addr();

    // Staggered so each admission is dequeued (or queued) before the
    // next arrives: 2 end up executing, 2 sit in the queue — the bound.
    let sleepers: Vec<_> = (0..4u64)
        .map(|i| {
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(i * 80));
                let mut c = Client::connect(addr).unwrap();
                let r = c.roundtrip("SLEEP 1000").unwrap();
                assert!(is_ok(&r), "{r}");
            })
        })
        .collect();

    // STATS bypasses the queue: observability survives saturation. Poll
    // until the system holds all 4 (2 executing + 2 queued).
    let mut observer = Client::connect(addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let stats = observer.roundtrip("STATS").unwrap();
        assert!(is_ok(&stats), "{stats}");
        if stats.contains(r#""queue_depth":4"#) {
            break;
        }
        assert!(Instant::now() < deadline, "queue never filled: {stats}");
        std::thread::sleep(Duration::from_millis(20));
    }

    let excess: Vec<_> = (0..3)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let t0 = Instant::now();
                let r = c.roundtrip("SLEEP 1000").unwrap();
                (r, t0.elapsed())
            })
        })
        .collect();
    for h in excess {
        let (r, waited) = h.join().unwrap();
        assert!(has_error_code(&r, ErrorCode::Busy), "expected busy, got {r}");
        assert!(waited < Duration::from_millis(500), "busy must be prompt, took {waited:?}");
    }
    for h in sleepers {
        h.join().unwrap(); // admitted work completes despite the overload
    }

    // The rejected load is visible in STATS, and a rejected client's
    // session keeps working: the same kind of request now succeeds.
    let stats = observer.roundtrip("STATS").unwrap();
    assert!(stats.contains(r#""busy_rejections":3"#), "{stats}");
    let mut again = Client::connect(addr).unwrap();
    let r = again.roundtrip("SELECT COUNT(*) FROM ads WHERE t = 20200105").unwrap();
    assert!(is_ok(&r), "service must recover after overload: {r}");
    let drain = handle.shutdown();
    assert_eq!(drain.busy_rejections, 3);
    assert_eq!(drain.completed, 5, "4 sleeps + 1 select");
}

#[test]
fn session_statement_limit_is_enforced_per_connection() {
    let mut handle = start(ServerConfig { session_statement_limit: 3, ..Default::default() });
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let sql = "SELECT COUNT(*) FROM ads WHERE t = 20200105";
    for _ in 0..3 {
        assert!(is_ok(&client.roundtrip(sql).unwrap()));
    }
    let r = client.roundtrip(sql).unwrap();
    assert!(has_error_code(&r, ErrorCode::Limit), "{r}");
    // Out-of-band commands are not charged and still work.
    assert!(is_ok(&client.roundtrip("STATS").unwrap()));
    // A fresh connection gets a fresh budget.
    let mut fresh = Client::connect(handle.local_addr()).unwrap();
    assert!(is_ok(&fresh.roundtrip(sql).unwrap()));
    assert!(is_ok(&client.roundtrip("CLOSE").unwrap()));
    handle.shutdown();
}

#[test]
fn reply_timeout_is_typed_and_session_survives() {
    let mut handle = start(ServerConfig {
        workers: 1,
        reply_timeout: Duration::from_millis(100),
        ..Default::default()
    });
    let mut client = Client::connect(handle.local_addr()).unwrap();
    let r = client.roundtrip("SLEEP 400").unwrap();
    assert!(has_error_code(&r, ErrorCode::Timeout), "{r}");
    // The stale reply was discarded; once the worker finishes the sleep
    // it is free again and the next request gets its own answer.
    std::thread::sleep(Duration::from_millis(500));
    let r = client.roundtrip("SELECT COUNT(*) FROM ads WHERE t = 20200105").unwrap();
    assert!(is_ok(&r), "{r}");
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let mut handle = start(ServerConfig { workers: 2, ..Default::default() });
    let addr = handle.local_addr();
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.roundtrip("SLEEP 400").unwrap()
    });
    std::thread::sleep(Duration::from_millis(150)); // let it get admitted
    let drain = handle.shutdown();
    let r = in_flight.join().unwrap();
    assert!(is_ok(&r), "in-flight work must complete through a drain: {r}");
    assert!(drain.completed >= 1, "{drain:?}");
    // The listener is gone: new connections are refused.
    assert!(Client::connect(addr).is_err());
}

#[test]
fn malformed_requests_get_typed_errors_not_disconnects() {
    let mut handle = start(ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();
    for (bad, code) in [
        ("FROBNICATE now", ErrorCode::Protocol),
        ("EXECUTE nothing (1)", ErrorCode::UnknownHandle),
        ("INGEST (20200101, 1)", ErrorCode::Parameter), // wrong arity for the schema
        ("SELECT SUM(no_such) FROM ads WHERE t = 20200105", ErrorCode::Execution),
        ("FORECAST SUM(Impression) FROM ads USING (20200130, 20200101)", ErrorCode::Config),
        ("SELECT COUNT(*) FROM ads WHERE t = ?", ErrorCode::Parameter),
    ] {
        let r = client.roundtrip(bad).unwrap();
        assert!(has_error_code(&r, code), "{bad:?} → {r}");
    }
    // The session is intact after every rejection.
    assert!(is_ok(&client.roundtrip("SELECT COUNT(*) FROM ads WHERE t = 20200105").unwrap()));
    handle.shutdown();
}
