//! End-to-end tests for a [`ShardedEngine`] behind the service.
//!
//! The service is a transport for whatever backend it fronts: with a
//! sharded backend, every wire response must be byte-identical to
//! encoding the same scatter-gather execution done in-process — through
//! prepared handles, across a concurrent ingest→publish cycle that swaps
//! the outer shard snapshot, and under the same typed error surface as a
//! single engine. `STATS` must expose the per-shard breakdown.

use flashp_core::{EngineConfig, Literal, SamplerChoice, ShardConfig, ShardedEngine};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_server::harness::{has_error_code, is_ok, Client};
use flashp_server::protocol::{self, ErrorCode};
use flashp_server::server::{serve_backend, ServerConfig, ServerHandle};
use flashp_server::Backend;
use std::time::Duration;

/// The same 30-day ads dataset + two-layer GSW configuration the
/// single-engine service tests use, sharded 4 ways.
fn sharded_engine(seed: u64, shards: usize) -> ShardedEngine {
    let ds = generate_dataset(&DatasetConfig::new(400, 30, seed)).unwrap();
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };
    ShardedEngine::with_catalogs(&ds.table, config, ShardConfig::with_shards(shards)).unwrap()
}

fn start(engine: ShardedEngine, config: ServerConfig) -> ServerHandle {
    serve_backend(Backend::Sharded(engine), config).expect("server start")
}

const FORECAST_TEMPLATE: &str = "FORECAST SUM(Impression) FROM ads \
     WHERE age <= 30 AND gender = 'F' USING (?, ?) \
     OPTION (MODEL = 'ar(7)', FORE_PERIOD = 5)";

/// One full INGEST row for the ads schema: t + 11 dims + 4 measures.
fn ingest_row(t: i64) -> String {
    format!(
        "INGEST ({t}, 28, 'F', 'city_03', 'mobile', 'ios', 2, 1, 3, 'search', 2, 1, \
         150.0, 12.0, 3.0, 1.0)"
    )
}

#[test]
fn sharded_wire_responses_match_in_process_execution_across_a_publish() {
    let engine = sharded_engine(17, 4);
    let oracle_engine = engine.clone(); // shares the outer snapshot
    let mut handle = start(engine, ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let r = client.roundtrip(&format!("PREPARE f AS {FORECAST_TEMPLATE}")).unwrap();
    assert!(is_ok(&r), "{r}");
    assert!(r.contains(r#""num_params":2"#), "{r}");
    let oracle = oracle_engine.prepare(FORECAST_TEMPLATE).unwrap();

    let check_forecast = |client: &mut Client, lo: i64, hi: i64, label: &str| {
        let wire = client.roundtrip(&format!("EXECUTE f ({lo}, {hi})")).unwrap();
        let local = oracle.execute_with(&[Literal::Int(lo), Literal::Int(hi)]).unwrap();
        assert_eq!(wire, protocol::encode_output(&local), "{label}: {lo}..{hi}");
    };
    check_forecast(&mut client, 20200101, 20200125, "v0");
    check_forecast(&mut client, 20200105, 20200130, "v0");

    // One-shot sampled SELECT and scatter-gather EXPLAIN: same bytes as
    // in-process scatter-gather execution.
    let sql = "SELECT SUM(Click) FROM ads WHERE age <= 40 AND t BETWEEN 20200103 AND 20200110 \
               GROUP BY t OPTION (SAMPLE_RATE = 0.2)";
    let wire = client.roundtrip(sql).unwrap();
    assert_eq!(wire, protocol::encode_output(&oracle_engine.execute(sql).unwrap()));
    let explain = format!("EXPLAIN {FORECAST_TEMPLATE}").replace("(?, ?)", "(20200101, 20200125)");
    let wire = client.roundtrip(&explain).unwrap();
    assert_eq!(wire, protocol::encode_output(&oracle_engine.execute(&explain).unwrap()));
    assert!(wire.contains("ScatterGather"), "sharded EXPLAIN must show the fan-out: {wire}");

    // Ingest over the wire, then publish: the outer snapshot swap must be
    // visible to the session's prepared handle, and the response carries
    // the merged sampler-delta accounting (including fallback re-draws).
    let v0 = oracle_engine.version();
    let r = client.roundtrip(&ingest_row(20200131)).unwrap();
    assert!(is_ok(&r) && r.contains(r#""staged_rows":1"#), "{r}");
    let r = client.roundtrip(&ingest_row(20200131)).unwrap();
    assert!(r.contains(r#""pending_rows":2"#), "{r}");
    assert_eq!(oracle_engine.version(), v0, "staged rows are invisible until PUBLISH");
    let r = client.roundtrip("PUBLISH").unwrap();
    assert!(is_ok(&r) && r.contains(r#""appended_rows":2"#), "{r}");
    for field in ["rebuilt_cells", "absorbed_cells", "fallback_redraws"] {
        assert!(r.contains(&format!(r#""{field}":"#)), "publish must report {field}: {r}");
    }
    assert!(oracle_engine.version() > v0, "publish must swap the outer version");

    check_forecast(&mut client, 20200105, 20200131, "v1 extended into the published day");
    check_forecast(&mut client, 20200101, 20200125, "v1 re-plans the old range");

    // Typed errors work identically through the sharded backend.
    let r = client.roundtrip("EXECUTE nothing (1)").unwrap();
    assert!(has_error_code(&r, ErrorCode::UnknownHandle), "{r}");
    handle.shutdown();
}

#[test]
fn sharded_stats_expose_per_shard_breakdown() {
    let engine = sharded_engine(17, 4);
    let oracle_engine = engine.clone();
    let mut handle = start(engine, ServerConfig::default());
    let mut client = Client::connect(handle.local_addr()).unwrap();

    let stats = client.roundtrip("STATS").unwrap();
    assert!(is_ok(&stats), "{stats}");
    let parsed: serde_json::Value = serde_json::from_str(&stats).unwrap();
    let engine_stats = &parsed["engine"];
    let shards = engine_stats["shards"].as_array().expect("per-shard array");
    assert_eq!(shards.len(), 4);
    let local = oracle_engine.stats();
    assert_eq!(engine_stats["version"].as_u64().unwrap(), local.version);
    assert_eq!(engine_stats["total_rows"].as_u64().unwrap() as usize, local.total_rows());
    let mut wire_rows = 0usize;
    for (wire_shard, local_shard) in shards.iter().zip(&local.shards) {
        assert_eq!(wire_shard["shard"].as_u64().unwrap() as usize, local_shard.shard);
        assert_eq!(
            wire_shard["slots"].as_str().unwrap(),
            format!("{}..{}", local_shard.slots.0, local_shard.slots.1)
        );
        assert_eq!(wire_shard["rows"].as_u64().unwrap() as usize, local_shard.rows);
        assert_eq!(wire_shard["pending_rows"].as_u64().unwrap(), 0);
        wire_rows += wire_shard["rows"].as_u64().unwrap() as usize;
    }
    assert_eq!(wire_rows, local.total_rows(), "shard rows must sum to the total");

    // Staged-but-unpublished rows show up in the owning shard's backlog.
    assert!(is_ok(&client.roundtrip(&ingest_row(20200131)).unwrap()));
    let stats = client.roundtrip("STATS").unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&stats).unwrap();
    assert_eq!(parsed["engine"]["pending_rows"].as_u64().unwrap(), 1, "{stats}");
    let pending_per_shard: Vec<u64> = parsed["engine"]["shards"]
        .as_array()
        .unwrap()
        .iter()
        .map(|s| s["pending_rows"].as_u64().unwrap())
        .collect();
    assert_eq!(pending_per_shard.iter().sum::<u64>(), 1);
    assert_eq!(
        pending_per_shard.iter().filter(|&&p| p > 0).count(),
        1,
        "one row routes to exactly one shard: {pending_per_shard:?}"
    );
    handle.shutdown();
}

#[test]
fn sharded_oracle_holds_under_concurrent_publishes() {
    // A publisher swaps the outer shard snapshot every few milliseconds
    // while a client re-executes the same binding. Whenever the version
    // is stable across a wire call, the response must be byte-identical
    // to in-process scatter-gather execution of that version.
    let engine = sharded_engine(17, 4);
    let oracle_engine = engine.clone();
    let mut handle = start(engine, ServerConfig::default());
    let addr = handle.local_addr();

    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let publisher = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(addr).unwrap();
            let mut day = 0i64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                // Cycle within February so the sequence stays valid no
                // matter how long the main loop takes: days 1..=28 grow
                // already-published partitions via the absorb path.
                let t = 20200201 + day % 28;
                day += 1;
                let r = client.roundtrip(&ingest_row(t)).unwrap();
                assert!(is_ok(&r), "publisher INGEST: {r}");
                let r = client.roundtrip("PUBLISH").unwrap();
                assert!(is_ok(&r), "publisher PUBLISH: {r}");
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut client = Client::connect(addr).unwrap();
    assert!(is_ok(&client.roundtrip(&format!("PREPARE f AS {FORECAST_TEMPLATE}")).unwrap()));
    let oracle = oracle_engine.prepare(FORECAST_TEMPLATE).unwrap();
    let mut versions_seen = std::collections::HashSet::new();
    // At least 30 compare iterations, then keep going (deadline-bounded)
    // until the oracle has held at two distinct quiesced versions — on a
    // slow debug run a publish cycle can outlast many client iterations.
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut iterations = 0usize;
    while iterations < 30 || (versions_seen.len() < 2 && std::time::Instant::now() < deadline) {
        iterations += 1;
        let v_before = oracle_engine.version();
        let wire = client.roundtrip("EXECUTE f (20200101, 20200125)").unwrap();
        let v_after = oracle_engine.version();
        if v_before == v_after {
            let local =
                oracle.execute_with(&[Literal::Int(20200101), Literal::Int(20200125)]).unwrap();
            assert_eq!(wire, protocol::encode_output(&local), "at version {v_after}");
            versions_seen.insert(v_after);
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        versions_seen.len() >= 2,
        "the publisher must have swapped versions mid-run (saw {versions_seen:?})"
    );
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    publisher.join().unwrap();
    handle.shutdown();
}
