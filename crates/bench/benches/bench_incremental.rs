//! Incremental GSW maintenance throughput (§4.1): row-insert rate and
//! the cost of raising Δ to evict down to a size budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flashp_sampling::IncrementalGswSample;
use flashp_storage::{DataType, Schema, SchemaRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn schema() -> SchemaRef {
    Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared()
}

fn bench_insert(c: &mut Criterion) {
    let schema = schema();
    let n = 100_000u64;
    let mut group = c.benchmark_group("incremental_gsw");
    group.throughput(Throughput::Elements(n));
    group.sample_size(10);
    group.bench_function("insert_100k_rows", |b| {
        b.iter(|| {
            let mut sample = IncrementalGswSample::new(schema.clone(), 50.0).unwrap();
            let mut rng = StdRng::seed_from_u64(5);
            for i in 0..n {
                let m = 1.0 + rng.gen::<f64>();
                sample.insert(vec![i as i64], vec![m], m, &mut rng).unwrap();
            }
            sample.len()
        })
    });
    group.finish();
}

fn bench_shrink(c: &mut Criterion) {
    let schema = schema();
    let mut group = c.benchmark_group("incremental_gsw_shrink");
    group.sample_size(10);
    for target in [10_000usize, 1_000, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(target), &target, |b, &target| {
            b.iter_with_setup(
                || {
                    let mut sample = IncrementalGswSample::new(schema.clone(), 0.1).unwrap();
                    let mut rng = StdRng::seed_from_u64(6);
                    for i in 0..100_000u64 {
                        let m = 1.0 + rng.gen::<f64>();
                        sample.insert(vec![i as i64], vec![m], m, &mut rng).unwrap();
                    }
                    sample
                },
                |mut sample| {
                    sample.shrink_to(target);
                    sample.len()
                },
            )
        });
    }
    group.finish();
}

fn bench_materialize(c: &mut Criterion) {
    let schema = schema();
    let mut sample = IncrementalGswSample::new(schema.clone(), 20.0).unwrap();
    let mut rng = StdRng::seed_from_u64(7);
    for i in 0..200_000u64 {
        let m = 1.0 + rng.gen::<f64>();
        sample.insert(vec![i as i64], vec![m], m, &mut rng).unwrap();
    }
    let mut group = c.benchmark_group("incremental_gsw_materialize");
    group.throughput(Throughput::Elements(sample.len() as u64));
    group.bench_function("to_sample", |b| b.iter(|| sample.to_sample().unwrap().num_rows()));
    group.finish();
}

criterion_group!(benches, bench_insert, bench_shrink, bench_materialize);
criterion_main!(benches);
