//! End-to-end FORECAST task latency at different sampling rates — the
//! criterion companion of Fig. 7 (Exp-II).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashp_core::{EngineConfig, FlashPEngine, SampleCatalog, SamplerChoice};
use flashp_data::{generate_dataset, DatasetConfig};

fn engine() -> FlashPEngine {
    // Small dataset for the harness-managed benchmark (criterion repeats
    // the query many times; the dataset is built once).
    let ds = generate_dataset(&DatasetConfig::new(5_000, 100, 1_234)).unwrap();
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.1, 0.01, 0.002],
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&ds.table, &config).unwrap();
    FlashPEngine::with_catalog(ds.table, config, catalog)
}

fn bench_forecast_sql(c: &mut Criterion) {
    let engine = engine();
    let mut group = c.benchmark_group("e2e_forecast_task");
    group.sample_size(10);
    for (label, rate) in [("full", 1.0f64), ("10pct", 0.1), ("1pct", 0.01), ("0.2pct", 0.002)] {
        let sql = format!(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
             USING (20200101, 20200331) \
             OPTION (MODEL = 'arima', FORE_PERIOD = 7, SAMPLE_RATE = {rate})"
        );
        group.bench_with_input(BenchmarkId::from_parameter(label), &sql, |b, sql| {
            b.iter(|| engine.forecast(sql).unwrap().forecasts.len())
        });
    }
    group.finish();
}

fn bench_aggregation_phase_only(c: &mut Criterion) {
    let engine = engine();
    let pred = engine
        .table()
        .compile_predicate(&flashp_storage::Predicate::cmp("age", flashp_storage::CmpOp::Le, 30))
        .unwrap();
    let t0 = flashp_storage::Timestamp::from_yyyymmdd(20200101).unwrap();
    let t1 = flashp_storage::Timestamp::from_yyyymmdd(20200331).unwrap();
    let mut group = c.benchmark_group("aggregation_phase_91_days");
    for (label, rate) in [("full", 1.0f64), ("1pct", 0.01)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &rate, |b, &rate| {
            b.iter(|| {
                engine
                    .estimate_series(0, &pred, flashp_storage::AggFunc::Sum, t0, t1, rate)
                    .unwrap()
                    .0
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forecast_sql, bench_aggregation_phase_only);
criterion_main!(benches);
