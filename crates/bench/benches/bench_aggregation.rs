//! Aggregation-path microbenchmarks: the exact masked scan (the paper's
//! bottleneck) vs sample-based estimation (FlashP's replacement), plus
//! predicate evaluation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flashp_sampling::{estimate_agg, GswSampler, SampleSize, Sampler};
use flashp_storage::{
    AggFunc, CmpOp, DataType, DimensionColumn, Partition, Predicate, Schema, SchemaRef,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize) -> (SchemaRef, Partition) {
    let schema = Schema::from_names(&[("age", DataType::UInt8), ("seg", DataType::UInt16)], &["m"])
        .unwrap()
        .into_shared();
    let mut rng = StdRng::seed_from_u64(3);
    let age: Vec<i64> = (0..n).map(|_| rng.gen_range(18..=70)).collect();
    let seg: Vec<i64> = (0..n).map(|_| rng.gen_range(0..500)).collect();
    let m: Vec<f64> = (0..n)
        .map(|_| if rng.gen::<f64>() < 0.01 { 300.0 } else { 1.0 + rng.gen::<f64>() })
        .collect();
    let mut a8 = DimensionColumn::new(DataType::UInt8);
    let mut s16 = DimensionColumn::new(DataType::UInt16);
    for i in 0..n {
        a8.push_int("age", age[i]).unwrap();
        s16.push_int("seg", seg[i]).unwrap();
    }
    (schema, Partition::from_columns(vec![a8, s16], vec![m]).unwrap())
}

fn bench_exact_vs_sampled(c: &mut Criterion) {
    let n = 1_000_000;
    let (schema, partition) = setup(n);
    let pred = Predicate::cmp("age", CmpOp::Le, 30)
        .and(Predicate::cmp("seg", CmpOp::Lt, 100))
        .compile(&schema, &[None, None])
        .unwrap();

    let mut group = c.benchmark_group("aggregation_1M_rows");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("exact_masked_scan", |b| {
        let mut scratch = flashp_storage::MaskScratch::new();
        b.iter(|| {
            let mask = pred.evaluate_into(&partition, &mut scratch);
            let state = flashp_storage::aggregate::aggregate_masked(&partition, 0, &mask);
            scratch.release(mask);
            state.finalize(AggFunc::Sum)
        })
    });
    // Pre-vectorization baseline, kept so `cargo bench` shows the spread.
    group.bench_function("exact_masked_scan_scalar", |b| {
        b.iter(|| {
            let mask = flashp_storage::reference::evaluate_scalar(&pred, &partition);
            flashp_storage::reference::aggregate_masked_scalar(&partition, 0, &mask)
                .finalize(AggFunc::Sum)
        })
    });
    group.finish();

    // Sample-based estimation at a few rates (FlashP's online path).
    let mut group = c.benchmark_group("estimate_from_sample");
    for rate in [0.01, 0.001] {
        let sampler = GswSampler::optimal(0, SampleSize::Rate(rate));
        let mut rng = StdRng::seed_from_u64(1);
        let sample = sampler.sample(&schema, &partition, &mut rng).unwrap();
        group.throughput(Throughput::Elements(sample.num_rows() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("rate_{rate}")),
            &sample,
            |b, sample| b.iter(|| estimate_agg(sample, 0, &pred, AggFunc::Sum).unwrap().value),
        );
    }
    group.finish();
}

fn bench_predicate_forms(c: &mut Criterion) {
    let n = 1_000_000;
    let (schema, partition) = setup(n);
    let forms: Vec<(&str, Predicate)> = vec![
        ("single_cmp", Predicate::cmp("age", CmpOp::Le, 30)),
        (
            "conjunction3",
            Predicate::cmp("age", CmpOp::Ge, 20)
                .and(Predicate::cmp("age", CmpOp::Le, 40))
                .and(Predicate::cmp("seg", CmpOp::Lt, 250)),
        ),
        (
            "in_set",
            Predicate::In {
                column: "seg".to_string(),
                values: (0..16).map(flashp_storage::Value::Int).collect(),
            },
        ),
        (
            "disjunction",
            Predicate::Or(vec![
                Predicate::cmp("age", CmpOp::Lt, 25),
                Predicate::cmp("age", CmpOp::Gt, 60),
            ]),
        ),
    ];
    let mut group = c.benchmark_group("predicate_eval_1M_rows");
    group.throughput(Throughput::Elements(n as u64));
    for (name, pred) in forms {
        let compiled = pred.compile(&schema, &[None, None]).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &compiled, |b, p| {
            b.iter(|| p.evaluate(&partition).count_ones())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_exact_vs_sampled, bench_predicate_forms);
criterion_main!(benches);
