//! Offline sample-build throughput of each sampler family over one
//! partition (the per-partition unit of work of the §5 offline
//! preprocessor).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use flashp_sampling::{
    GswSampler, PrioritySampler, SampleSize, Sampler, ThresholdSampler, UniformSampler,
    WeightStrategy,
};
use flashp_storage::{DataType, DimensionColumn, Partition, Schema, SchemaRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize) -> (SchemaRef, Partition) {
    let schema =
        Schema::from_names(&[("k", DataType::Int64)], &["m1", "m2"]).unwrap().into_shared();
    let mut rng = StdRng::seed_from_u64(1);
    let m1: Vec<f64> = (0..n)
        .map(|_| if rng.gen::<f64>() < 0.01 { 500.0 } else { 1.0 + rng.gen::<f64>() })
        .collect();
    let m2: Vec<f64> = m1.iter().map(|v| v * (0.5 + rng.gen::<f64>())).collect();
    let p = Partition::from_columns(
        vec![DimensionColumn::Int64((0..n as i64).collect())],
        vec![m1, m2],
    )
    .unwrap();
    (schema, p)
}

fn bench_samplers(c: &mut Criterion) {
    let n = 100_000;
    let (schema, partition) = setup(n);
    let size = SampleSize::Rate(0.01);
    let samplers: Vec<(&str, Box<dyn Sampler>)> = vec![
        ("uniform", Box::new(UniformSampler::new(size))),
        ("optimal_gsw", Box::new(GswSampler::optimal(0, size))),
        ("arith_compressed_gsw", Box::new(GswSampler::arithmetic_compressed(vec![0, 1], size))),
        ("geo_compressed_gsw", Box::new(GswSampler::geometric_compressed(vec![0, 1], size))),
        ("priority", Box::new(PrioritySampler::new(0, size))),
        ("threshold", Box::new(ThresholdSampler::new(0, size))),
    ];

    let mut group = c.benchmark_group("sample_build_100k_rows");
    group.throughput(Throughput::Elements(n as u64));
    for (name, sampler) in &samplers {
        group.bench_with_input(BenchmarkId::from_parameter(name), sampler, |b, sampler| {
            let mut rng = StdRng::seed_from_u64(7);
            b.iter(|| sampler.sample(&schema, &partition, &mut rng).unwrap().num_rows())
        });
    }
    group.finish();
}

fn bench_weight_strategies(c: &mut Criterion) {
    let (_, partition) = setup(100_000);
    let mut group = c.benchmark_group("weight_computation_100k_rows");
    group.throughput(Throughput::Elements(100_000));
    for (name, strategy) in [
        ("single", WeightStrategy::SingleMeasure(0)),
        ("arithmetic", WeightStrategy::ArithmeticMean(vec![0, 1])),
        ("geometric", WeightStrategy::GeometricMean(vec![0, 1])),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, s| {
            b.iter(|| s.compute(&partition).unwrap().len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_samplers, bench_weight_strategies);
criterion_main!(benches);
