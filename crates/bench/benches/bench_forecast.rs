//! Model-fitting microbenchmarks: ARMA CSS fit, auto-ARIMA search, LSTM
//! training, on the paper's standard 150-point training series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flashp_forecast::model::ForecastModel;
use flashp_forecast::simulate::{simulate_arma, ArmaSpec};
use flashp_forecast::{ArimaModel, ArmaModel, AutoArima, LstmConfig, LstmForecaster};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn series(n: usize) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(11);
    let spec = ArmaSpec { ar: vec![0.7], ma: vec![0.2], mean: 1_000.0, sigma: 30.0 };
    simulate_arma(&spec, n, &mut rng)
}

fn bench_fits(c: &mut Criterion) {
    let data = series(150);
    let mut group = c.benchmark_group("model_fit_150_points");
    group.bench_function("arma_1_1_css", |b| {
        b.iter(|| {
            let mut m = ArmaModel::new(1, 1);
            m.fit(&data).unwrap().sigma2
        })
    });
    group.bench_function("arima_1_1_1", |b| {
        b.iter(|| {
            let mut m = ArimaModel::new(1, 1, 1);
            m.fit(&data).unwrap().sigma2
        })
    });
    group.bench_function("auto_arima_stepwise", |b| {
        b.iter(|| {
            let mut m = AutoArima::default();
            m.fit(&data).unwrap().sigma2
        })
    });
    group.bench_function("lstm_50_epochs", |b| {
        b.iter(|| {
            let mut m = LstmForecaster::new(LstmConfig { epochs: 50, ..Default::default() });
            m.fit(&data).unwrap().sigma2
        })
    });
    group.finish();
}

fn bench_forecast_horizons(c: &mut Criterion) {
    let data = series(150);
    let mut model = ArimaModel::new(1, 0, 1);
    model.fit(&data).unwrap();
    let mut group = c.benchmark_group("forecast_after_fit");
    for horizon in [7usize, 30, 90] {
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            b.iter(|| model.forecast(h, 0.9).unwrap().points.len())
        });
    }
    group.finish();
}

fn bench_training_lengths(c: &mut Criterion) {
    // The Fig. 8 axis: how fit time scales with the training length.
    let mut group = c.benchmark_group("arma_fit_by_train_len");
    for len in [30usize, 60, 90, 150] {
        let data = series(len);
        group.bench_with_input(BenchmarkId::from_parameter(len), &data, |b, data| {
            b.iter(|| {
                let mut m = ArmaModel::new(1, 1);
                m.fit(data).unwrap().sigma2
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fits, bench_forecast_horizons, bench_training_lengths);
criterion_main!(benches);
