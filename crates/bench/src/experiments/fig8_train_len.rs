//! **Figure 8** — forecast error vs number of training time stamps
//! (30/60/90/150) at each sampling rate; ARIMA (panel a) and LSTM
//! (panel b). Selectivity 5 %, Impression, optimal GSW.

use crate::{
    forecast_eval, mean_std, paper_rates, print_table, rate_label, runs, sweep_rates, EngineSet,
    Harness,
};
use flashp_core::SamplerChoice;
use serde_json::json;

const MEASURE: usize = 0; // Impression
const TRAIN_LENS: [usize; 4] = [30, 60, 90, 150];

pub fn run(h: &Harness) -> serde_json::Value {
    let engines = EngineSet::build(h.table.clone(), &[SamplerChoice::OptimalGsw], &paper_rates());
    let sweep = sweep_rates();
    let engine = engines.get(&SamplerChoice::OptimalGsw);
    let tasks = h.tasks(MEASURE, 0.05, runs(), 801);

    let mut out = serde_json::Map::new();
    for model in ["arima", "lstm"] {
        let mut rows = Vec::new();
        let mut model_json = Vec::new();
        for &rate in &sweep {
            let mut row = vec![rate_label(rate)];
            for &len in &TRAIN_LENS {
                let (t0, t1) = h.train_range(len.min(h.num_days - 8));
                let errs: Vec<f64> = tasks
                    .iter()
                    .filter_map(|task| {
                        let pred = h.table.compile_predicate(&task.predicate).unwrap();
                        let truth = h.truth(MEASURE, &pred, t1 + 1, t1 + 7);
                        forecast_eval(engine, MEASURE, &pred, (t0, t1), model, rate, &truth)
                            .ok()
                            .map(|e| e.forecast_error)
                    })
                    .collect();
                let (mean, std) = mean_std(&errs);
                row.push(format!("{:.1}±{:.1}%", mean * 100.0, std * 100.0));
                model_json.push(json!({
                    "model": model, "rate": rate, "train_len": len,
                    "error": mean, "std": std,
                }));
            }
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("rate".to_string())
            .chain(TRAIN_LENS.iter().map(|l| format!("{l} days")))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "Fig. 8{}: forecast error vs training length ({}, Impression, sel 5%)",
                if model == "arima" { "a" } else { "b" },
                model.to_uppercase()
            ),
            &headers_ref,
            &rows,
        );
        out.insert(model.to_string(), json!(model_json));
    }
    println!("expected shape: 150 days gives the most accurate and stable prediction");
    let value = serde_json::Value::Object(out);
    crate::write_json("fig8_train_len", &value);
    value
}
