//! **Figure 3** — the forecasting example: estimated aggregations (red
//! line) train the model, which produces forecasts with confidence
//! intervals (green lines). Printed as aligned series rows suitable for
//! plotting.

use crate::{forecast_eval, print_table, Harness};
use flashp_core::SamplerChoice;
use serde_json::json;

pub fn run(h: &Harness) -> serde_json::Value {
    let engines = crate::EngineSet::build(h.table.clone(), &[SamplerChoice::OptimalGsw], &[0.01]);
    let engine = engines.get(&SamplerChoice::OptimalGsw);
    let (t0, t1) = h.train_range(90.min(h.num_days - 8));
    let task = h.tasks(0, 0.1, 1, 42).pop().unwrap();
    let pred = h.table.compile_predicate(&task.predicate).unwrap();
    let truth_train = h.truth(0, &pred, t0, t1);
    let truth_future = h.truth(0, &pred, t1 + 1, t1 + 7);
    let eval =
        forecast_eval(engine, 0, &pred, (t0, t1), "arima", 0.01, &truth_future).expect("pipeline");

    // Print the last two weeks of training estimates + the forecast week.
    let mut rows = Vec::new();
    let n = eval.estimates.len();
    for i in n.saturating_sub(14)..n {
        let t = t0 + i as i64;
        rows.push(vec![
            t.to_string(),
            format!("{:.0}", eval.estimates[i]),
            format!("{:.0}", truth_train[i]),
            String::new(),
            String::new(),
        ]);
    }
    for (i, fc) in eval.forecasts.iter().enumerate() {
        let t = t1 + 1 + i as i64;
        let (lo, hi) = eval.intervals[i];
        rows.push(vec![
            t.to_string(),
            String::new(),
            format!("{:.0}", truth_future[i]),
            format!("{fc:.0}"),
            format!("[{lo:.0}, {hi:.0}]"),
        ]);
    }
    print_table(
        &format!("Fig. 3: forecasting example (constraint: {})", task.predicate),
        &["day", "estimated M̂", "true value", "forecast", "90% interval"],
        &rows,
    );
    println!("forecast error over the week: {:.1}%", eval.forecast_error * 100.0);
    let value = json!({
        "constraint": task.predicate.to_string(),
        "estimates": eval.estimates,
        "truth_train": truth_train,
        "forecasts": eval.forecasts,
        "intervals": eval.intervals,
        "truth_future": truth_future,
        "forecast_error": eval.forecast_error,
    });
    crate::write_json("fig3_example", &value);
    value
}
