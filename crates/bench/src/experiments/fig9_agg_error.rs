//! **Figure 9** — relative aggregation error of the five samplers for
//! varying sampling rate, at selectivity 0.5 % (panel a) and 5 %
//! (panel b), on Favorite.

use crate::experiments::figure_samplers;
use crate::{agg_error, mean_std, paper_rates, print_table, rate_label, runs, EngineSet, Harness};
use serde_json::json;

const MEASURE: usize = 2; // Favorite

pub fn run(h: &Harness) -> serde_json::Value {
    let samplers = figure_samplers();
    let rates = paper_rates();
    let engines = EngineSet::build(h.table.clone(), &samplers, &rates);
    let (t0, t1) = h.train_range(150.min(h.num_days - 8));
    let n_tasks = runs();

    let mut out = serde_json::Map::new();
    for selectivity in [0.005, 0.05] {
        let tasks = h.tasks(MEASURE, selectivity, n_tasks, 900 + (selectivity * 1e4) as u64);
        let mut rows = Vec::new();
        let mut panel = serde_json::Map::new();
        for sampler in &samplers {
            let engine = engines.get(sampler);
            let mut row = vec![sampler.label().to_string()];
            let mut series = Vec::new();
            for &rate in &rates {
                let errs: Vec<f64> = tasks
                    .iter()
                    .map(|task| {
                        let pred = h.table.compile_predicate(&task.predicate).unwrap();
                        agg_error(engine, MEASURE, &pred, t0, t1, rate)
                    })
                    .collect();
                let (mean, std) = mean_std(&errs);
                row.push(format!("{:.1}±{:.1}%", mean * 100.0, std * 100.0));
                series.push(json!({"rate": rate, "error": mean, "std": std}));
            }
            panel.insert(sampler.label().to_string(), json!(series));
            rows.push(row);
        }
        let headers: Vec<String> = std::iter::once("sampler".to_string())
            .chain(rates.iter().map(|r| rate_label(*r)))
            .collect();
        let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
        print_table(
            &format!(
                "Fig. 9{}: aggregation error (Favorite, selectivity {}%)",
                if selectivity < 0.01 { "a" } else { "b" },
                selectivity * 100.0
            ),
            &headers_ref,
            &rows,
        );
        out.insert(format!("selectivity_{selectivity}"), serde_json::Value::Object(panel));
    }
    println!("expected shape: Uniform worst; Opt-GSW ≈ Priority best; compressed between; errors shrink with rate and selectivity");
    let value = serde_json::Value::Object(out);
    crate::write_json("fig9_agg_error", &value);
    value
}
