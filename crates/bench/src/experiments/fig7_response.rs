//! **Figure 7** — end-to-end response time vs sampling rate, split into
//! the aggregation portion and the forecasting portion (ARIMA; the LSTM
//! fitting time is reported alongside, matching Exp-II's remark).

use crate::{
    forecast_eval, paper_rates, print_table, rate_label, rate_scale, runs, EngineSet, Harness,
};
use flashp_core::SamplerChoice;
use serde_json::json;

pub fn run(h: &Harness) -> serde_json::Value {
    let rates_grid = paper_rates();
    let engines = EngineSet::build(h.table.clone(), &[SamplerChoice::OptimalGsw], &rates_grid);
    let engine = engines.get(&SamplerChoice::OptimalGsw);
    let (t0, t1) = h.train_range(150.min(h.num_days - 8));
    let tasks = h.tasks(0, 0.05, runs().min(5), 71);
    // The figure's x axis: 100 %, 1 %, 0.05 %, 0.02 % (scaled).
    let k = rate_scale();
    let rates = [1.0, (0.01 * k).min(1.0), (0.0005 * k).min(1.0), (0.0002 * k).min(1.0)];

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for &rate in &rates {
        let mut agg_ms = Vec::new();
        let mut arima_ms = Vec::new();
        let mut lstm_ms = Vec::new();
        for task in &tasks {
            let pred = h.table.compile_predicate(&task.predicate).unwrap();
            let truth = h.truth(0, &pred, t1 + 1, t1 + 7);
            let a = forecast_eval(engine, 0, &pred, (t0, t1), "arima", rate, &truth).unwrap();
            agg_ms.push(a.agg_time.as_secs_f64() * 1e3);
            arima_ms.push(a.fit_time.as_secs_f64() * 1e3);
            let l = forecast_eval(engine, 0, &pred, (t0, t1), "lstm", rate, &truth).unwrap();
            lstm_ms.push(l.fit_time.as_secs_f64() * 1e3);
        }
        let mean = |v: &Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let (agg, arima, lstm) = (mean(&agg_ms), mean(&arima_ms), mean(&lstm_ms));
        rows.push(vec![
            rate_label(rate),
            format!("{agg:.2} ms"),
            format!("{arima:.2} ms"),
            format!("{:.2} ms", agg + arima),
            format!("{lstm:.2} ms"),
        ]);
        out.push(json!({
            "rate": rate,
            "aggregation_ms": agg,
            "forecasting_arima_ms": arima,
            "total_arima_ms": agg + arima,
            "forecasting_lstm_ms": lstm,
        }));
    }
    print_table(
        "Fig. 7: end-to-end response time (ARIMA split; LSTM fit for reference)",
        &["rate", "aggregation", "ARIMA fit", "total", "LSTM fit"],
        &rows,
    );
    println!(
        "expected shape: aggregation dominates at 100% and collapses by orders of \
         magnitude under sampling (paper: ~20 s → 30 ms at production scale)"
    );
    let value = json!(out);
    crate::write_json("fig7_response", &value);
    value
}
