//! **Figure 15** — space cost under a fixed accuracy requirement:
//! fix the arithmetic compressed GSW sample size; for every measure, find
//! the optimal-GSW sample size that matches its aggregation error; report
//! (a) the stacked total vs the compressed size and (b) the forecast
//! errors of the matched configurations.
//!
//! Per Corollary 4, optimal-GSW error scales as `1/√|S|`, so the matched
//! size is found by measuring the error once at the reference rate and
//! scaling: `size_opt = size_ref · (err_opt(ref)/err_target)²`.

use crate::{
    agg_error, forecast_eval, mean_std, paper_rates, print_table, rate_label, rate_scale, runs,
    Harness, MEASURES,
};
use flashp_core::{EngineConfig, FlashPEngine, GroupingPolicy, SampleCatalog, SamplerChoice};
use serde_json::json;

pub fn run(h: &Harness) -> serde_json::Value {
    let c_rates = paper_rates();
    let (t0, t1) = h.train_range(60.min(h.num_days - 8));
    let n_tasks = runs().min(8);
    let tasks: Vec<_> = (0..n_tasks).flat_map(|i| h.tasks(0, 0.05, 1, 1_500 + i as u64)).collect();

    // One compressed engine with all rates; one optimal engine with all
    // rates (reference measurements for the scaling law).
    let c_config = EngineConfig {
        sampler: SamplerChoice::ArithmeticGsw,
        grouping: GroupingPolicy::Single,
        layer_rates: c_rates.clone(),
        ..Default::default()
    };
    let c_catalog = SampleCatalog::build(&h.table, &c_config).expect("compressed build");
    let c_stats = c_catalog.stats().clone();
    let c_engine = FlashPEngine::with_catalog(h.table.clone(), c_config, c_catalog);
    let o_config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: c_rates.clone(),
        ..Default::default()
    };
    let o_catalog = SampleCatalog::build(&h.table, &o_config).expect("optimal build");
    let o_stats = o_catalog.stats().clone();
    let o_engine = FlashPEngine::with_catalog(h.table.clone(), o_config, o_catalog);

    let mean_err = |engine: &FlashPEngine, m: usize, rate: f64| -> f64 {
        let errs: Vec<f64> = tasks
            .iter()
            .map(|task| {
                let pred = h.table.compile_predicate(&task.predicate).unwrap();
                agg_error(engine, m, &pred, t0, t1, rate)
            })
            .collect();
        mean_std(&errs).0
    };

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (ri, &rate) in c_rates.iter().enumerate() {
        // Compressed: one sample of `rate` serves all measures.
        let c_rows = c_stats.layers[ri].rows as f64;
        // Per measure: error target from compressed, matched optimal size.
        let mut total_opt_rows = 0.0;
        let mut max_c_err = 0.0f64;
        let mut per_measure = Vec::new();
        for m in 0..4 {
            let target = mean_err(&c_engine, m, rate);
            let opt_ref = mean_err(&o_engine, m, rate);
            // Opt-GSW rows at this rate for ONE measure = c_rows (same
            // rate, same table); scale by the 1/√size law.
            let matched = c_rows * (opt_ref / target).powi(2);
            total_opt_rows += matched;
            max_c_err = max_c_err.max(target);
            per_measure.push(json!({
                "measure": MEASURES[m],
                "compressed_error": target,
                "optimal_error_at_same_rate": opt_ref,
                "matched_optimal_rows": matched,
            }));
        }
        let ratio = total_opt_rows / c_rows;
        rows.push(vec![
            rate_label(rate),
            format!("{:.1}%", max_c_err * 100.0),
            format!("{:.0}", c_rows),
            format!("{:.0}", total_opt_rows),
            format!("{ratio:.2}x"),
        ]);
        out.push(json!({
            "c_rate": rate,
            "max_compressed_error": max_c_err,
            "compressed_rows": c_rows,
            "total_matched_optimal_rows": total_opt_rows,
            "ratio": ratio,
            "per_measure": per_measure,
        }));
    }
    print_table(
        "Fig. 15a: total Opt-GSW size matching Arithmetic C-GSW accuracy",
        &["C-GSW rate", "max agg err", "C-GSW rows", "4x Opt-GSW rows", "ratio"],
        &rows,
    );
    println!("paper: the four optimal samples total ≈ 1.8x the compressed sample");

    // Panel (b): forecast errors of the two matched configurations at the
    // paper's 0.1 % compressed rate (optimal uses the same rate, which per
    // panel (a) is at least as accurate — matching the paper's setup of
    // near-equal errors).
    let mut rows_b = Vec::new();
    let mut out_b = Vec::new();
    for m in 0..4 {
        let mut errs_c = Vec::new();
        let mut errs_o = Vec::new();
        for task in &tasks {
            let pred = h.table.compile_predicate(&task.predicate).unwrap();
            let truth = h.truth(m, &pred, t1 + 1, t1 + 7);
            if let Ok(e) = forecast_eval(
                &c_engine,
                m,
                &pred,
                (t0, t1),
                "arima",
                (0.001 * rate_scale()).min(1.0),
                &truth,
            ) {
                errs_c.push(e.forecast_error);
            }
            if let Ok(e) = forecast_eval(
                &o_engine,
                m,
                &pred,
                (t0, t1),
                "arima",
                (0.001 * rate_scale()).min(1.0),
                &truth,
            ) {
                errs_o.push(e.forecast_error);
            }
        }
        let (mc, _) = mean_std(&errs_c);
        let (mo, _) = mean_std(&errs_o);
        rows_b.push(vec![
            MEASURES[m].to_string(),
            format!("{:.1}%", mo * 100.0),
            format!("{:.1}%", mc * 100.0),
        ]);
        out_b.push(json!({"measure": MEASURES[m], "optimal": mo, "compressed": mc}));
    }
    print_table(
        "Fig. 15b: forecast error of matched configurations (ARIMA, sel 5%)",
        &["measure", "Opt-GSW", "Arith C-GSW"],
        &rows_b,
    );
    let _ = o_stats;
    let value = json!({ "panel_a": out, "panel_b": out_b });
    crate::write_json("fig15_space", &value);
    value
}
