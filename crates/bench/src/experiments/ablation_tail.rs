//! **Ablation (Exp-IV discussion)** — why optimal GSW can beat the
//! theoretically optimal priority sampler: priority includes every row
//! above the threshold *deterministically*, which over-invests in the
//! heavy tail; when the online constraint happens to exclude the tail,
//! that budget is wasted. GSW's smoothed probabilities hedge.
//!
//! Construction: heavy rows live in segment A; the query targets
//! segment B only.

use crate::{mean_std, print_table};
use flashp_sampling::{
    estimate_agg, GswSampler, PrioritySampler, SampleSize, Sampler, WeightStrategy,
};
use flashp_storage::{AggFunc, CmpOp, DataType, DimensionColumn, Partition, Predicate, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

pub fn run(_h: &crate::Harness) -> serde_json::Value {
    let schema = Schema::from_names(&[("segment", DataType::Int64)], &["m"]).unwrap().into_shared();
    let n = 50_000;
    let mut rng = StdRng::seed_from_u64(4242);
    let mut seg = Vec::with_capacity(n);
    let mut m = Vec::with_capacity(n);
    for _ in 0..n {
        // Segment A (0) holds the heavy tail; segment B (1) is light.
        let is_a = rng.gen::<f64>() < 0.5;
        seg.push(i64::from(!is_a));
        let value = if is_a && rng.gen::<f64>() < 0.01 {
            5_000.0 * (1.0 + rng.gen::<f64>())
        } else {
            1.0 + rng.gen::<f64>()
        };
        m.push(value);
    }
    let partition = Partition::from_columns(vec![DimensionColumn::Int64(seg)], vec![m]).unwrap();
    let pred_b = Predicate::cmp("segment", CmpOp::Eq, 1).compile(&schema, &[None]).unwrap();
    let pred_all = Predicate::True.compile(&schema, &[None]).unwrap();
    let truth_b: f64 = {
        let mask = pred_b.evaluate(&partition);
        mask.iter_ones().map(|i| partition.measure(0)[i]).sum()
    };
    let truth_all: f64 = partition.measure(0).iter().sum();

    let k = 500;
    let gsw = GswSampler::with_size(WeightStrategy::SingleMeasure(0), SampleSize::Expected(k));
    let priority = PrioritySampler::new(0, SampleSize::Expected(k));
    let reps = 300u64;

    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (label, pred, truth) in
        [("whole table", &pred_all, truth_all), ("tail-free segment B", &pred_b, truth_b)]
    {
        let mut errs_gsw = Vec::new();
        let mut errs_pri = Vec::new();
        for seed in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = gsw.sample(&schema, &partition, &mut rng).unwrap();
            let e = estimate_agg(&s, 0, pred, AggFunc::Sum).unwrap();
            errs_gsw.push((e.value - truth).abs() / truth);
            let mut rng = StdRng::seed_from_u64(seed);
            let s = priority.sample(&schema, &partition, &mut rng).unwrap();
            let e = estimate_agg(&s, 0, pred, AggFunc::Sum).unwrap();
            errs_pri.push((e.value - truth).abs() / truth);
        }
        let (g, gs) = mean_std(&errs_gsw);
        let (p, ps) = mean_std(&errs_pri);
        rows.push(vec![
            label.to_string(),
            format!("{:.2}±{:.2}%", g * 100.0, gs * 100.0),
            format!("{:.2}±{:.2}%", p * 100.0, ps * 100.0),
        ]);
        out.push(json!({"constraint": label, "opt_gsw": g, "priority": p}));
    }
    print_table(
        "Ablation: Opt-GSW vs Priority when the constraint excludes the heavy tail",
        &["constraint", "Opt-GSW err", "Priority err"],
        &rows,
    );
    println!(
        "expected shape: near-identical on the whole table; on the tail-free subset \
         the samplers' effective budgets differ (the paper's Exp-IV remark)"
    );
    let value = json!(out);
    crate::write_json("ablation_tail", &value);
    value
}
