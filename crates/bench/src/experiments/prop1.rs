//! **Proposition 1** — numeric verification that for ARMA(1,1) observed
//! through estimation noise, `Var[M̂] = a·σ_u² + σ_ε²` with
//! `a = (1 + 2α₁β₁ + β₁²)/(1 − α₁²)`.

use crate::print_table;
use flashp_forecast::noise::arma11_noisy_variance;
use flashp_forecast::simulate::{add_estimation_noise, simulate_arma, ArmaSpec};
use flashp_forecast::stats::sample_variance;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

pub fn run(_h: &crate::Harness) -> serde_json::Value {
    let mut rng = StdRng::seed_from_u64(20240101);
    let mut rows = Vec::new();
    let mut out = Vec::new();
    for (alpha, beta) in [(0.5, 0.2), (0.8, 0.1), (0.3, 0.6)] {
        let spec = ArmaSpec { ar: vec![alpha], ma: vec![beta], mean: 0.0, sigma: 1.0 };
        for sigma_eps in [0.0, 0.5, 1.0, 2.0] {
            let clean = simulate_arma(&spec, 150_000, &mut rng);
            let noisy = add_estimation_noise(&clean, sigma_eps, &mut rng);
            let observed = sample_variance(&noisy);
            let predicted = arma11_noisy_variance(alpha, beta, 1.0, sigma_eps * sigma_eps).unwrap();
            rows.push(vec![
                format!("({alpha}, {beta})"),
                format!("{sigma_eps}"),
                format!("{predicted:.3}"),
                format!("{observed:.3}"),
                format!("{:.2}%", (observed - predicted).abs() / predicted * 100.0),
            ]);
            out.push(json!({
                "alpha": alpha, "beta": beta, "sigma_eps": sigma_eps,
                "predicted": predicted, "observed": observed,
            }));
        }
    }
    print_table(
        "Proposition 1: Var[M̂] = a·σ_u² + σ_ε² (σ_u = 1)",
        &["(α₁, β₁)", "σ_ε", "predicted", "observed", "rel dev"],
        &rows,
    );
    let value = json!(out);
    crate::write_json("prop1", &value);
    value
}
