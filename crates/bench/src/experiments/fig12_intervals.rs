//! **Figure 12** — (a) mean 90 % forecast-interval width of ARIMA per
//! sampler for varying sampling rate (selectivity 0.5 %, Favorite);
//! (b) forecast intervals of one concrete task at the 0.02 % rate,
//! printed next to the true values.

use crate::experiments::figure_samplers;
use crate::{
    forecast_eval, mean_std, paper_rates, print_table, rate_label, rate_scale, runs, sweep_rates,
    EngineSet, Harness,
};
use serde_json::json;

const MEASURE: usize = 2; // Favorite

pub fn run(h: &Harness) -> serde_json::Value {
    let samplers = figure_samplers();
    let engines = EngineSet::build(h.table.clone(), &samplers, &paper_rates());
    let sweep = sweep_rates();
    let (t0, t1) = h.train_range(150.min(h.num_days - 8));
    let tasks = h.tasks(MEASURE, 0.005, runs(), 1_201);

    // Panel (a): interval width vs rate.
    let mut rows = Vec::new();
    let mut panel_a = serde_json::Map::new();
    for sampler in &samplers {
        let engine = engines.get(sampler);
        let mut row = vec![sampler.label().to_string()];
        let mut series = Vec::new();
        for &rate in &sweep {
            let widths: Vec<f64> = tasks
                .iter()
                .filter_map(|task| {
                    let pred = h.table.compile_predicate(&task.predicate).unwrap();
                    let truth = h.truth(MEASURE, &pred, t1 + 1, t1 + 7);
                    forecast_eval(engine, MEASURE, &pred, (t0, t1), "arima", rate, &truth)
                        .ok()
                        .map(|e| e.interval_width)
                })
                .collect();
            let (mean, _) = mean_std(&widths);
            row.push(format!("{mean:.0}"));
            series.push(json!({"rate": rate, "width": mean}));
        }
        panel_a.insert(sampler.label().to_string(), json!(series));
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("sampler".to_string())
        .chain(sweep.iter().map(|r| rate_label(*r)))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(
        "Fig. 12a: mean 90% forecast-interval width (ARIMA, Favorite, sel 0.5%)",
        &headers_ref,
        &rows,
    );

    // Panel (b): one task at 0.02 %, intervals per sampler + truth.
    let task = &tasks[0];
    let pred = h.table.compile_predicate(&task.predicate).unwrap();
    let truth = h.truth(MEASURE, &pred, t1 + 1, t1 + 7);
    let mut rows_b = Vec::new();
    let mut panel_b = serde_json::Map::new();
    for sampler in &samplers {
        let engine = engines.get(sampler);
        if let Ok(eval) = forecast_eval(
            engine,
            MEASURE,
            &pred,
            (t0, t1),
            "arima",
            (0.0002 * rate_scale()).min(1.0),
            &truth,
        ) {
            for (i, ((lo, hi), fc)) in eval.intervals.iter().zip(&eval.forecasts).enumerate() {
                rows_b.push(vec![
                    sampler.label().to_string(),
                    format!("h+{}", i + 1),
                    format!("{fc:.0}"),
                    format!("[{lo:.0}, {hi:.0}]"),
                    format!("{:.0}", truth[i]),
                ]);
            }
            panel_b.insert(
                sampler.label().to_string(),
                json!({"forecasts": eval.forecasts, "intervals": eval.intervals, "truth": truth}),
            );
        }
    }
    print_table(
        "Fig. 12b: one task at 0.02% sampling",
        &["sampler", "step", "forecast", "90% interval", "true"],
        &rows_b,
    );
    println!(
        "expected shape: larger rates → narrower intervals; Uniform widest, \
         Priority/Opt-GSW narrowest"
    );
    let value = json!({ "panel_a": panel_a, "panel_b": panel_b });
    crate::write_json("fig12_intervals", &value);
    value
}
