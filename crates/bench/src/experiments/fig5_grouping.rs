//! **Figure 5** — the three ways to split {Impression, Click, Favorite,
//! Cart} into two groups of two: per-measure aggregation error under
//! arithmetic-mean compressed GSW (panel a) next to the normalized-L1
//! distance from each measure to its group's weight vector (panel b).
//! The two panels should rank the groupings the same way.

use crate::{agg_error, mean_std, print_table, runs, Harness, MEASURES};
use flashp_core::{EngineConfig, FlashPEngine, GroupingPolicy, SamplerChoice};
use flashp_sampling::consistency::normalized_l1;
use serde_json::json;

fn rate() -> f64 {
    (0.001 * crate::rate_scale()).min(1.0)
}

/// The three 2+2 partitions of four measures (by measure index).
const GROUPINGS: [([usize; 2], [usize; 2], &str); 3] = [
    ([0, 1], [2, 3], "g1:imp-clk  g2:fav-cart"),
    ([0, 2], [1, 3], "g1:imp-fav  g2:clk-cart"),
    ([0, 3], [1, 2], "g1:imp-cart g2:clk-fav"),
];

pub fn run(h: &Harness) -> serde_json::Value {
    let rate = rate();
    let (t0, t1) = h.train_range(60.min(h.num_days - 8));
    let n_tasks = runs();
    // Tasks across the sensitivity range 0.5 %–10 % as in the paper.
    let tasks: Vec<_> = (0..n_tasks)
        .flat_map(|i| h.tasks(0, if i % 2 == 0 { 0.01 } else { 0.08 }, 1, 500 + i as u64))
        .collect();

    // Panel (b): L1 distance from each measure vector to its group's
    // arithmetic-mean weight vector, on a reference partition.
    let mid = h.start + (h.num_days as i64 / 2);
    let partition = h.table.partition(mid).expect("mid partition");

    let mut rows_a = Vec::new();
    let mut rows_b = Vec::new();
    let mut out = Vec::new();
    for (g1, g2, label) in GROUPINGS {
        let config = EngineConfig {
            sampler: SamplerChoice::ArithmeticGsw,
            grouping: GroupingPolicy::Explicit(vec![g1.to_vec(), g2.to_vec()]),
            layer_rates: vec![rate],
            ..Default::default()
        };
        let catalog = flashp_core::SampleCatalog::build(&h.table, &config).expect("build");
        let engine = FlashPEngine::with_catalog(h.table.clone(), config, catalog);

        let mut errs_per_measure = Vec::new();
        let mut l1_per_measure = Vec::new();
        for m in 0..4 {
            let errs: Vec<f64> = tasks
                .iter()
                .map(|task| {
                    let pred = h.table.compile_predicate(&task.predicate).unwrap();
                    agg_error(&engine, m, &pred, t0, t1, rate)
                })
                .collect();
            let (mean, _) = mean_std(&errs);
            errs_per_measure.push(mean);

            // Weight vector of m's group = arithmetic mean of the group.
            let group: &[usize] = if g1.contains(&m) { &g1 } else { &g2 };
            let n = partition.num_rows();
            let mut weights = vec![0.0; n];
            for &j in group {
                for (w, v) in weights.iter_mut().zip(partition.measure(j)) {
                    *w += v / group.len() as f64;
                }
            }
            l1_per_measure.push(normalized_l1(partition.measure(m), &weights));
        }
        rows_a.push(
            std::iter::once(label.to_string())
                .chain(errs_per_measure.iter().map(|e| format!("{:.1}%", e * 100.0)))
                .collect(),
        );
        rows_b.push(
            std::iter::once(label.to_string())
                .chain(l1_per_measure.iter().map(|d| format!("{d:.3}")))
                .collect(),
        );
        out.push(json!({
            "grouping": label,
            "agg_error": errs_per_measure,
            "l1_distance": l1_per_measure,
        }));
    }
    let headers: Vec<&str> = std::iter::once("grouping").chain(MEASURES).collect();
    print_table(
        &format!(
            "Fig. 5a: aggregation error by grouping (arith C-GSW, {})",
            crate::rate_label(rate)
        ),
        &headers,
        &rows_a,
    );
    print_table("Fig. 5b: normalized L1 distance to group weight vector", &headers, &rows_b);
    println!("expected shape: panels rank the groupings identically (low L1 ↔ low error)");
    let value = json!(out);
    crate::write_json("fig5_grouping", &value);
    value
}
