//! **Table 1** — summary of forecast errors at a 0.1 % sample: Full vs
//! PIM vs Uniform vs Optimal GSW vs Arithmetic compressed GSW, per
//! measure, ARIMA model, random tasks with selectivity 0.5–10 %.

use crate::{forecast_eval, mean_std, print_table, runs, Harness, MEASURES};
use flashp_core::{build_model, SamplerChoice};
use flashp_data::PimModel;
use flashp_forecast::metrics::mean_relative_error;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;

// The paper's 0.1 % sample, scaled per FLASHP_RATE_SCALE (see lib docs).
fn rate() -> f64 {
    (0.001 * crate::rate_scale()).min(1.0)
}
const TRAIN_LEN: usize = 150;
const MODEL: &str = "arima";

pub fn run(h: &Harness) -> serde_json::Value {
    let rate = rate();
    let engines = crate::EngineSet::build(
        h.table.clone(),
        &[SamplerChoice::Uniform, SamplerChoice::OptimalGsw, SamplerChoice::ArithmeticGsw],
        &[rate],
    );
    eprintln!("[table1] building PIM marginals…");
    let pim = PimModel::build(&h.table);
    let (t0, t1) = h.train_range(TRAIN_LEN.min(h.num_days - 8));
    let n_tasks = runs();

    let mut rows = Vec::new();
    let mut out = serde_json::Map::new();
    for (measure, name) in MEASURES.iter().enumerate() {
        // Tasks with selectivity drawn from 0.5 %–10 % (log-uniform).
        let mut sel_rng = StdRng::seed_from_u64(measure as u64 + 1);
        let tasks: Vec<_> = (0..n_tasks)
            .map(|i| {
                let sel = 0.005 * (20.0f64).powf(sel_rng.gen::<f64>());
                h.tasks(measure, sel, 1, 7_000 + (measure * 100 + i) as u64).pop().unwrap()
            })
            .collect();

        let mut errs: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        for task in &tasks {
            let pred = h.table.compile_predicate(&task.predicate).unwrap();
            let truth = h.truth(measure, &pred, t1 + 1, t1 + 7);

            // Full (exact scan).
            let full = forecast_eval(
                engines.get(&SamplerChoice::Uniform),
                measure,
                &pred,
                (t0, t1),
                MODEL,
                1.0,
                &truth,
            )
            .unwrap();
            errs.entry("Full").or_default().push(full.forecast_error);

            // PIM: estimate the training series from marginals, same model.
            let pim_series: Vec<f64> = pim
                .estimate_series(t0, t1, measure, &pred)
                .unwrap()
                .into_iter()
                .map(|(_, v)| v)
                .collect();
            let mut model = build_model(MODEL).unwrap();
            if model.fit(&pim_series).is_ok() {
                if let Ok(fc) = model.forecast(7, 0.9) {
                    let e = mean_relative_error(&fc.values(), &truth).unwrap_or(f64::NAN);
                    errs.entry("PIM").or_default().push(e);
                }
            }

            // Sampled methods.
            for (label, sampler) in [
                ("Uniform", SamplerChoice::Uniform),
                ("Opt-GSW", SamplerChoice::OptimalGsw),
                ("C-GSW", SamplerChoice::ArithmeticGsw),
            ] {
                let eval = forecast_eval(
                    engines.get(&sampler),
                    measure,
                    &pred,
                    (t0, t1),
                    MODEL,
                    rate,
                    &truth,
                )
                .unwrap();
                errs.entry(label).or_default().push(eval.forecast_error);
            }
        }

        let mut row = vec![name.to_string()];
        let mut mrow = serde_json::Map::new();
        for method in ["Full", "PIM", "Uniform", "Opt-GSW", "C-GSW"] {
            let (mean, std) = mean_std(&errs[method]);
            row.push(format!("{mean:.3}±{std:.3}"));
            mrow.insert(method.to_string(), json!(mean));
        }
        rows.push(row);
        out.insert(name.to_string(), serde_json::Value::Object(mrow));
    }

    print_table(
        &format!(
            "Table 1: forecast error, {} sample, {n_tasks} tasks, ARIMA",
            crate::rate_label(rate)
        ),
        &["measure", "Full", "PIM", "Uniform", "Opt-GSW", "C-GSW"],
        &rows,
    );
    println!(
        "paper (0.1%): Favorite 0.105/0.695/0.248/0.131/0.196; \
         Impression 0.140/0.374/0.147/0.142/0.144 (Full/PIM/Uniform/Opt/C)"
    );
    let value = serde_json::Value::Object(out);
    crate::write_json("table1", &value);
    value
}
