//! **Figures 10, 11, 13, 14** — relative forecast error of the five
//! samplers for varying sampling rate, with ARIMA and LSTM models:
//!
//! * Fig. 10: Favorite, selectivity 0.5 %   * Fig. 11: Favorite, 5 %
//! * Fig. 13: Impression, selectivity 0.5 % * Fig. 14: Impression, 5 %

use crate::experiments::figure_samplers;
use crate::{
    forecast_eval, mean_std, paper_rates, print_table, rate_label, runs, sweep_rates, EngineSet,
    Harness,
};
use serde_json::json;

struct Panel {
    fig: &'static str,
    measure: usize,
    measure_name: &'static str,
    selectivity: f64,
}

const PANELS: [Panel; 4] = [
    Panel { fig: "Fig. 10", measure: 2, measure_name: "Favorite", selectivity: 0.005 },
    Panel { fig: "Fig. 11", measure: 2, measure_name: "Favorite", selectivity: 0.05 },
    Panel { fig: "Fig. 13", measure: 0, measure_name: "Impression", selectivity: 0.005 },
    Panel { fig: "Fig. 14", measure: 0, measure_name: "Impression", selectivity: 0.05 },
];

pub fn run(h: &Harness) -> serde_json::Value {
    // `FLASHP_PANEL` (1-4) restricts to one figure; default runs all four.
    let only: Option<usize> =
        std::env::var("FLASHP_PANEL").ok().and_then(|v| v.parse::<usize>().ok());
    let samplers = figure_samplers();
    let engines = EngineSet::build(h.table.clone(), &samplers, &paper_rates());
    let sweep = sweep_rates();
    let (t0, t1) = h.train_range(150.min(h.num_days - 8));
    let n_tasks = runs();

    let mut out = serde_json::Map::new();
    for (idx, panel) in PANELS.iter().enumerate() {
        if let Some(o) = only {
            if o != idx + 1 {
                continue;
            }
        }
        let tasks = h.tasks(panel.measure, panel.selectivity, n_tasks, 1_300 + idx as u64 * 17);
        let mut panel_json = serde_json::Map::new();
        for model in ["arima", "lstm"] {
            let mut rows = Vec::new();
            for sampler in &samplers {
                let engine = engines.get(sampler);
                let mut row = vec![sampler.label().to_string()];
                let mut series = Vec::new();
                for &rate in &sweep {
                    let errs: Vec<f64> = tasks
                        .iter()
                        .filter_map(|task| {
                            let pred = h.table.compile_predicate(&task.predicate).unwrap();
                            let truth = h.truth(panel.measure, &pred, t1 + 1, t1 + 7);
                            forecast_eval(
                                engine,
                                panel.measure,
                                &pred,
                                (t0, t1),
                                model,
                                rate,
                                &truth,
                            )
                            .ok()
                            .map(|e| e.forecast_error)
                        })
                        .collect();
                    let (mean, std) = mean_std(&errs);
                    row.push(format!("{:.1}±{:.1}%", mean * 100.0, std * 100.0));
                    series.push(json!({"rate": rate, "error": mean, "std": std}));
                }
                panel_json.insert(format!("{}_{}", model, sampler.label()), json!(series));
                rows.push(row);
            }
            let headers: Vec<String> = std::iter::once("sampler".to_string())
                .chain(sweep.iter().map(|r| rate_label(*r)))
                .collect();
            let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
            print_table(
                &format!(
                    "{} ({}): forecast error, {} selectivity {}%, {n_tasks} tasks",
                    panel.fig,
                    model.to_uppercase(),
                    panel.measure_name,
                    panel.selectivity * 100.0
                ),
                &headers_ref,
                &rows,
            );
        }
        out.insert(
            panel.fig.replace(". ", "").to_lowercase(),
            serde_json::Value::Object(panel_json),
        );
    }
    println!(
        "expected shape: error grows as rate shrinks; ≥1% rates ≈ full data; \
         Opt-GSW/Priority degrade slowest; Uniform fastest"
    );
    let value = serde_json::Value::Object(out);
    crate::write_json("fig10_14_forecast_error", &value);
    value
}
