//! One module per table/figure of the paper's evaluation (§6). Each
//! exposes `run(&Harness) -> serde_json::Value` which prints the rows the
//! paper reports and returns a machine-readable summary.

pub mod ablation_tail;
pub mod fig12_intervals;
pub mod fig15_space;
pub mod fig3_example;
pub mod fig5_grouping;
pub mod fig7_response;
pub mod fig8_train_len;
pub mod fig9_agg_error;
pub mod forecast_error;
pub mod prop1;
pub mod table1;

use flashp_core::SamplerChoice;

/// The sampler lineup of Figs. 9–14.
pub fn figure_samplers() -> Vec<SamplerChoice> {
    vec![
        SamplerChoice::OptimalGsw,
        SamplerChoice::Priority,
        SamplerChoice::ArithmeticGsw,
        SamplerChoice::GeometricGsw,
        SamplerChoice::Uniform,
    ]
}
