//! Standalone runner for `experiments::fig5_grouping`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig5_grouping::run(&harness);
}
