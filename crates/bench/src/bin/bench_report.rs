//! Scan-kernel and query-pipeline throughput report, tracked in-tree.
//!
//! Part 1 measures the scan kernels on a fixed-seed 1 M-row partition —
//! the scalar (pre-vectorization) reference loops plus every kernel tier
//! the host CPU supports (portable word-at-a-time, SSE2, AVX2, AVX-512) —
//! across exact masked aggregation, predicate evaluation (the conjunction
//! and the pure-u8 comparison), SIMD IN-list membership, the fused
//! single-comparison scan, the opt-in reassociated `fast_sum` masked
//! aggregation, and sampled estimation, and writes `BENCH_scan.json` at
//! the repo root so every PR records per-tier rows/sec and the
//! tier-over-tier speedups (including avx512-vs-avx2 where both exist).
//!
//! Part 2 measures the statement lifecycle: one-shot execution
//! (parse + plan + execute per call) vs the cached-plan string API vs a
//! `PreparedQuery`, in statements/sec at sample rate 0.01, driven from 1
//! and 8 client threads over one shared engine handle — written to
//! `BENCH_query.json`.
//!
//! Part 3 measures live ingest: row staging throughput, publish latency
//! for the incremental catalog derivation (new-day cells vs grown-day
//! absorbs) against a full rebuild, prepared-query latency right after a
//! version swap, and the parallel work-queue scaling of `catalog build`
//! and multi-day `apply_delta` backfills across worker counts — written
//! to `BENCH_ingest.json`.
//!
//! Part 4 measures the TCP service frontend end to end: the closed-loop
//! harness from `flashp-server` sweeps 1/8/64/256 concurrent clients
//! (each re-executing a prepared statement, with a concurrent
//! ingest+publish connection swapping catalog versions under the load)
//! and records client-observed p50/p99 latency and statements/sec —
//! written to `BENCH_service.json`.
//!
//! Part 5 measures the versioned day-partial cache on a dashboard
//! replay: one prepared `USING (?, ?)` handle re-bound across rotating
//! sliding windows, cold (cache-disabled engine) vs warm (cached engine
//! after one populating pass), with every window first proven
//! bit-identical across the two engines before any timing — then a warm
//! replay under a concurrent ingest+publish loop, with a post-publish
//! bit-equality check against a fresh uncached engine over the final
//! table — written to `BENCH_cache.json`.
//!
//! Every report records the dispatched kernel tier (`kernel_tier`).
//!
//! Run with `cargo run -p flashp-bench --release --bin bench_report`.

use flashp_core::{
    parse, CatalogDelta, EngineConfig, FlashPEngine, IngestBatch, Literal, SampleCatalog, Statement,
};
use flashp_data::{generate_dataset, BatchStream, DatasetConfig, StreamConfig};
use flashp_sampling::{estimate_components_with_kernels, GswSampler, SampleSize, Sampler};
use flashp_storage::reference::{aggregate_masked_scalar, evaluate_scalar};
use flashp_storage::{
    aggregate::aggregate_masked, aggregate_filtered_with, simd, AggFunc, Bitmask, CmpOp,
    CompiledPredicate, DataType, DimensionColumn, KernelSet, KernelTier, MaskScratch, Partition,
    Predicate, Schema, SchemaRef, Value,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

const ROWS: usize = 1_000_000;
const SEED: u64 = 3;
const REPS: usize = 15;

fn setup() -> (SchemaRef, Partition) {
    let schema = Schema::from_names(&[("age", DataType::UInt8), ("seg", DataType::UInt16)], &["m"])
        .unwrap()
        .into_shared();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut age = DimensionColumn::new(DataType::UInt8);
    let mut seg = DimensionColumn::new(DataType::UInt16);
    let mut m = Vec::with_capacity(ROWS);
    for _ in 0..ROWS {
        age.push_int("age", rng.gen_range(18..=70)).unwrap();
        seg.push_int("seg", rng.gen_range(0..500)).unwrap();
        m.push(if rng.gen::<f64>() < 0.01 { 300.0 } else { 1.0 + rng.gen::<f64>() });
    }
    (schema, Partition::from_columns(vec![age, seg], vec![m]).unwrap())
}

/// Median seconds per call over `REPS` timed calls (after warmup).
fn time_median<R>(f: impl FnMut() -> R) -> f64 {
    time_median_k(REPS, f)
}

struct Bench {
    name: &'static str,
    rows: usize,
    /// Pre-vectorization scalar reference loops.
    scalar_secs: f64,
    /// Median seconds per supported tier, worst-first
    /// (portable → best the CPU has).
    tier_secs: Vec<(&'static str, f64)>,
}

impl Bench {
    fn secs_for(&self, tier: &str) -> Option<f64> {
        self.tier_secs.iter().find(|(name, _)| *name == tier).map(|&(_, s)| s)
    }

    fn report(&self, dispatched: &str) -> serde_json::Value {
        let rps = |secs: f64| self.rows as f64 / secs;
        let scalar = rps(self.scalar_secs);
        let word = rps(self.secs_for("portable").expect("portable tier always measured"));
        // The dispatched tier is always in the supported set, so the
        // legacy `simd` column keeps meaning "what a default run uses".
        let simd = rps(self.secs_for(dispatched).expect("dispatched tier measured"));
        let mut line = format!("{:<26} scalar {:>11.0} r/s", self.name, scalar);
        let mut tiers = serde_json::Map::new();
        for &(name, secs) in &self.tier_secs {
            line.push_str(&format!("   {} {:>11.0} r/s", name, rps(secs)));
            tiers.insert(format!("{name}_rows_per_sec"), json!(rps(secs)));
        }
        line.push_str(&format!("   simd/scalar {:>5.2}x", simd / scalar));
        let avx512_vs_avx2 = match (self.secs_for("avx512"), self.secs_for("avx2")) {
            (Some(a512), Some(a2)) => {
                let r = rps(a512) / rps(a2);
                line.push_str(&format!("   avx512/avx2 {r:>5.2}x"));
                Some(r)
            }
            _ => None,
        };
        println!("{line}");
        json!({
            "name": self.name,
            "rows": self.rows,
            "scalar_rows_per_sec": scalar,
            "word_rows_per_sec": word,
            "simd_rows_per_sec": simd,
            "tiers": tiers,
            "word_vs_scalar_speedup": word / scalar,
            "simd_vs_word_speedup": simd / word,
            "simd_vs_scalar_speedup": simd / scalar,
            "avx512_vs_avx2_speedup": avx512_vs_avx2,
        })
    }
}

/// Median seconds per call of `body` for every tier in `tiers`.
fn per_tier_secs<R>(
    tiers: &[KernelSet],
    mut body: impl FnMut(&KernelSet) -> R,
) -> Vec<(&'static str, f64)> {
    tiers.iter().map(|ks| (ks.tier().name(), time_median(|| body(ks)))).collect()
}

fn main() {
    let (schema, partition) = setup();
    let conj = Predicate::cmp("age", CmpOp::Le, 30)
        .and(Predicate::cmp("seg", CmpOp::Lt, 100))
        .compile(&schema, &[None, None])
        .unwrap();
    let single = CompiledPredicate::Cmp { dim: 0, op: CmpOp::Le, value: 30 };
    // A 12-value IN list over the u8 age column: compiles to an InSet
    // backed by the InLookup bitset, so the per-tier membership kernels
    // (vpshufb table probe on AVX-512) carry the whole evaluation.
    let in_list = Predicate::In {
        column: "age".to_string(),
        values: [18i64, 19, 21, 24, 27, 30, 33, 36, 40, 45, 50, 55]
            .into_iter()
            .map(Value::Int)
            .collect(),
    }
    .compile(&schema, &[None, None])
    .unwrap();
    let tiers: Vec<KernelSet> =
        KernelTier::ALL.iter().rev().filter_map(|&t| KernelSet::for_tier(t)).collect();
    let dispatched = *simd::active();
    let mut scratch = MaskScratch::new();
    let mut benches = Vec::new();

    println!("dispatched kernel tier: {}", dispatched.tier());
    println!(
        "supported tiers: {}",
        tiers.iter().map(|k| k.tier().name()).collect::<Vec<_>>().join(", ")
    );

    // Exact masked aggregation (the paper's "Full" bottleneck): predicate
    // evaluation + masked SUM over 1 M rows.
    benches.push(Bench {
        name: "exact_masked_aggregation",
        rows: ROWS,
        scalar_secs: time_median(|| {
            let mask = evaluate_scalar(&conj, &partition);
            aggregate_masked_scalar(&partition, 0, &mask).finalize(AggFunc::Sum)
        }),
        tier_secs: per_tier_secs(&tiers, |ks| {
            let mask = conj.evaluate_into_with(&partition, &mut scratch, ks);
            let state = aggregate_masked(&partition, 0, &mask);
            scratch.release(mask);
            state.finalize(AggFunc::Sum)
        }),
    });

    // Predicate evaluation alone (mask construction throughput) for the
    // u8+u16 conjunction.
    benches.push(Bench {
        name: "predicate_eval",
        rows: ROWS,
        scalar_secs: time_median(|| evaluate_scalar(&conj, &partition).count_ones()),
        tier_secs: per_tier_secs(&tiers, |ks| {
            let mask = conj.evaluate_into_with(&partition, &mut scratch, ks);
            let ones = mask.count_ones();
            scratch.release(mask);
            ones
        }),
    });

    // Kernel-throughput framing for the two pure-u8 benches: an
    // L1-resident 32 Ki-row slice swept repeatedly into a preallocated
    // mask. A full-partition sweep is memory-bandwidth-bound at every
    // vector width, so it cannot show the compare throughput the wider
    // tiers buy; the hot-slice sweep can.
    const HOT_ROWS: usize = 32 * 1024;
    const HOT_SWEEPS: usize = 32;
    let age_data: &[u8] = match partition.dim(0) {
        DimensionColumn::UInt8(v) => v,
        _ => unreachable!("age is declared UInt8"),
    };
    let hot = &age_data[..HOT_ROWS];
    let hot_partition = Partition::from_columns(
        vec![DimensionColumn::UInt8(hot.to_vec())],
        vec![partition.measure(0)[..HOT_ROWS].to_vec()],
    )
    .unwrap();
    let mut hot_mask = Bitmask::zeros(HOT_ROWS);

    // Pure-u8 predicate evaluation: the compare kernel alone (64 rows per
    // AVX-512 `vpcmpub`).
    benches.push(Bench {
        name: "predicate_eval_u8",
        rows: HOT_ROWS * HOT_SWEEPS,
        scalar_secs: time_median(|| {
            for _ in 0..HOT_SWEEPS {
                black_box(evaluate_scalar(&single, &hot_partition));
            }
        }),
        tier_secs: per_tier_secs(&tiers, |ks| {
            for _ in 0..HOT_SWEEPS {
                ks.cmp_u8(hot, CmpOp::Le, 30, &mut hot_mask);
            }
            black_box(&hot_mask);
        }),
    });

    // SIMD IN-list membership over the u8 age column, same framing: the
    // membership kernel (vpshufb bitset probe on AVX-512/AVX2).
    let in_lookup = match &in_list {
        CompiledPredicate::InSet { lookup: Some(l), .. } => l.clone(),
        _ => unreachable!("a u8 IN list always materializes an InLookup"),
    };
    benches.push(Bench {
        name: "in_list_membership_u8",
        rows: HOT_ROWS * HOT_SWEEPS,
        scalar_secs: time_median(|| {
            for _ in 0..HOT_SWEEPS {
                black_box(evaluate_scalar(&in_list, &hot_partition));
            }
        }),
        tier_secs: per_tier_secs(&tiers, |ks| {
            for _ in 0..HOT_SWEEPS {
                ks.in_u8(hot, &in_lookup, &mut hot_mask);
            }
            black_box(&hot_mask);
        }),
    });

    // Fused single-comparison scan: no mask materialized at all.
    benches.push(Bench {
        name: "fused_single_cmp_scan",
        rows: ROWS,
        scalar_secs: time_median(|| {
            let mask = evaluate_scalar(&single, &partition);
            aggregate_masked_scalar(&partition, 0, &mask).finalize(AggFunc::Sum)
        }),
        tier_secs: per_tier_secs(&tiers, |ks| {
            aggregate_filtered_with(ks, &partition, 0, 0, CmpOp::Le, 30).finalize(AggFunc::Sum)
        }),
    });

    // Opt-in fast_sum masked aggregation: the mask is precomputed once so
    // the timing isolates the reassociated masked sum (`agg_masked_fast`)
    // against the exact ascending-row walk used as the scalar baseline.
    // A dense (~98 %) mask is the shape fast_sum exists for — the exact
    // walk visits matching rows one at a time, the fast kernel sums whole
    // vectors under the mask — and the same cache-resident hot-slice
    // sweep keeps the ratio a compute measurement, not a DRAM one.
    {
        // f64 rows are 8x wider than the u8 slice above, so the
        // L1-resident slice is correspondingly shorter (4 Ki × 8 B =
        // 32 KiB) and swept more often.
        const F64_HOT_ROWS: usize = 4 * 1024;
        const F64_HOT_SWEEPS: usize = 256;
        let f64_hot = Partition::from_columns(
            vec![DimensionColumn::UInt8(age_data[..F64_HOT_ROWS].to_vec())],
            vec![partition.measure(0)[..F64_HOT_ROWS].to_vec()],
        )
        .unwrap();
        let dense = CompiledPredicate::Cmp { dim: 0, op: CmpOp::Ge, value: 19 };
        let dense_mask = evaluate_scalar(&dense, &f64_hot);
        let hot_values = f64_hot.measure(0);
        benches.push(Bench {
            name: "fast_sum_masked_aggregation",
            rows: F64_HOT_ROWS * F64_HOT_SWEEPS,
            scalar_secs: time_median(|| {
                for _ in 0..F64_HOT_SWEEPS {
                    black_box(aggregate_masked_scalar(&f64_hot, 0, &dense_mask));
                }
            }),
            tier_secs: per_tier_secs(&tiers, |ks| {
                for _ in 0..F64_HOT_SWEEPS {
                    black_box(ks.agg_masked_fast(hot_values, &dense_mask));
                }
            }),
        });
    }

    // Sampled estimation (FlashP's online path) on a 1 % GSW sample:
    // scalar = the pre-change estimate_agg loop — scalar predicate
    // evaluation, then per matched row a division by π plus the full HT
    // sum/count/variance accumulation.
    let sampler = GswSampler::optimal(0, SampleSize::Rate(0.01));
    let mut rng = StdRng::seed_from_u64(1);
    let sample = sampler.sample(&schema, &partition, &mut rng).unwrap();
    let sample_rows = sample.num_rows();
    benches.push(Bench {
        name: "sampled_estimation",
        rows: sample_rows,
        scalar_secs: time_median(|| {
            let mask = evaluate_scalar(&conj, sample.rows());
            let values = sample.rows().measure(0);
            let pi = sample.inclusion_probabilities();
            let mut sum_hat = 0.0;
            let mut sum_var = 0.0;
            let mut count_hat = 0.0;
            let mut count_var = 0.0;
            let mut matched = 0usize;
            for i in mask.iter_ones() {
                let p = pi[i];
                let m = values[i];
                sum_hat += m / p;
                count_hat += 1.0 / p;
                let q = (1.0 - p) / (p * p);
                sum_var += m * m * q;
                count_var += q;
                matched += 1;
            }
            (sum_hat, sum_var, count_hat, count_var, matched)
        }),
        tier_secs: per_tier_secs(&tiers, |ks| {
            estimate_components_with_kernels(&sample, 0, &conj, &mut scratch, ks)
                .unwrap()
                .finalize(AggFunc::Sum)
                .value
        }),
    });

    let tier_name = dispatched.tier().name();
    let reports: Vec<serde_json::Value> = benches.iter().map(|b| b.report(tier_name)).collect();
    let doc = json!({
        "bench": "BENCH_scan",
        "rows": ROWS,
        "seed": SEED,
        "reps": REPS,
        "unit": "rows_per_sec",
        "kernel_tier": tier_name,
        "tiers_measured": tiers.iter().map(|k| k.tier().name()).collect::<Vec<_>>(),
        "benches": reports,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scan.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap();
    println!("wrote {path}");

    query_pipeline_report();
    ingest_report();
    service_report();
    cache_report();
}

/// Bit-level equality of two forecast results (training estimates and
/// forecast points) — the precondition for every cache timing below.
fn assert_forecast_bits(
    a: &flashp_core::ForecastResult,
    b: &flashp_core::ForecastResult,
    label: &str,
) {
    assert_eq!(a.estimates.len(), b.estimates.len(), "{label}: estimate count");
    for (pa, pb) in a.estimates.iter().zip(&b.estimates) {
        assert_eq!(pa.t, pb.t, "{label}: timestamp");
        assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "{label}: estimate at {}", pa.t);
        assert_eq!(
            pa.variance.map(f64::to_bits),
            pb.variance.map(f64::to_bits),
            "{label}: variance at {}",
            pa.t
        );
    }
    assert_eq!(a.forecasts.len(), b.forecasts.len(), "{label}: forecast count");
    for (pa, pb) in a.forecasts.iter().zip(&b.forecasts) {
        assert_eq!(pa.value.to_bits(), pb.value.to_bits(), "{label}: forecast at {}", pa.t);
    }
}

/// Part 5: dashboard replay through the day-partial cache
/// (`BENCH_cache.json`).
fn cache_report() {
    use flashp_storage::Timestamp;

    // A dashboard-scale task: 10 k rows/day over 120 days, 20 % GSW
    // layer, so per-day estimation (~2 k sampled rows) dominates the
    // cheap naive model fit.
    let rows_per_day = 10_000usize;
    let base_days = 120usize;
    let dataset_config = DatasetConfig::new(rows_per_day, base_days, SEED);
    let dataset = generate_dataset(&dataset_config).expect("dataset");
    let config = EngineConfig {
        layer_rates: vec![0.2],
        default_rate: 0.2,
        threads: 1,
        ..Default::default()
    };
    let uncached_config = EngineConfig { partial_cache: false, ..config.clone() };
    let catalog = SampleCatalog::build(&dataset.table, &config).expect("catalog");
    let cached_engine = FlashPEngine::with_catalog(dataset.table.clone(), config.clone(), catalog);
    let catalog = SampleCatalog::build(&dataset.table, &uncached_config).expect("catalog");
    let uncached_engine =
        FlashPEngine::with_catalog(dataset.table, uncached_config.clone(), catalog);

    let sql = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
               USING (?, ?) OPTION (MODEL = 'naive', FORE_PERIOD = 7)";
    let cached = cached_engine.prepare(sql).expect("prepare");
    let uncached = uncached_engine.prepare(sql).expect("prepare");

    // Rotating sliding windows: 60-day spans stepping 5 days forward —
    // each rotation re-estimates 55 days the previous one already
    // covered, the shape the cache exists for.
    let day0 = Timestamp::from_yyyymmdd(20200101).expect("day0");
    let windows: Vec<(i64, i64)> = (0..8i64)
        .map(|i| ((day0 + i * 5).to_yyyymmdd(), (day0 + i * 5 + 59).to_yyyymmdd()))
        .collect();
    let replay = |q: &flashp_core::PreparedQuery| {
        for &(lo, hi) in &windows {
            q.forecast_with(&[Literal::Int(lo), Literal::Int(hi)]).expect("replay forecast");
        }
    };

    // Bit-equality first, timing second: every window must answer
    // identically on the cached (cold then warm) and uncached engines.
    for &(lo, hi) in &windows {
        let params = [Literal::Int(lo), Literal::Int(hi)];
        let want = uncached.forecast_with(&params).expect("uncached forecast");
        let cold = cached.forecast_with(&params).expect("cold forecast");
        let warm = cached.forecast_with(&params).expect("warm forecast");
        assert_forecast_bits(&want, &cold, &format!("cold {lo}..{hi}"));
        assert_forecast_bits(&want, &warm, &format!("warm {lo}..{hi}"));
    }

    let cold_secs = time_median_k(7, || replay(&uncached));
    replay(&cached); // ensure every window is fully warm
    let warm_secs = time_median_k(7, || replay(&cached));
    let speedup = cold_secs / warm_secs;
    println!("\nday-partial cache: {}-window dashboard replay (60-day spans)", windows.len());
    println!(
        "cold replay {:>9.2} ms   warm replay {:>9.2} ms   warm speedup {speedup:>5.1}x",
        cold_secs * 1e3,
        warm_secs * 1e3
    );
    assert!(
        speedup >= 3.0,
        "acceptance: warm replay must be at least 3x the cold replay, got {speedup:.2}x"
    );

    // Warm replay under a concurrent publisher: a second thread grows
    // existing days *inside* the replay windows and publishes, while the
    // dashboard loops until every publish has landed. The structural
    // invalidation retires exactly the republished days' cells, so each
    // replay recomputes only those and stays warm for everything else.
    use std::sync::atomic::{AtomicBool, Ordering};
    let publishes = 5usize;
    let done = AtomicBool::new(false);
    let mut during = Vec::new();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut grow_stream = BatchStream::starting_at_day(
                &dataset_config,
                StreamConfig::new(rows_per_day / 10, SEED ^ 0xCAFE),
                80,
            );
            for _ in 0..publishes {
                let b = grow_stream.next().expect("unbounded stream");
                let mut batch = IngestBatch::new();
                batch.push_partition(b.t, b.partition);
                cached_engine.ingest(batch).expect("ingest");
                cached_engine.publish().expect("publish");
            }
            done.store(true, Ordering::Relaxed);
        });
        loop {
            let t0 = Instant::now();
            replay(&cached);
            during.push(t0.elapsed().as_secs_f64());
            if done.load(Ordering::Relaxed) {
                break;
            }
        }
    });
    during.sort_by(f64::total_cmp);
    let under_publish_secs = during[during.len() / 2];
    let replays_during_publishes = during.len();

    // Post-publish oracle: a fresh uncached engine built over the final
    // table must answer every window bit-identically to the (still
    // cached) handle that lived through the version swaps.
    let final_table = cached_engine.table();
    let catalog = SampleCatalog::build(&final_table, &uncached_config).expect("catalog");
    let oracle = FlashPEngine::with_catalog(final_table, uncached_config, catalog);
    let oracle = oracle.prepare(sql).expect("prepare");
    for &(lo, hi) in &windows {
        let params = [Literal::Int(lo), Literal::Int(hi)];
        let want = oracle.forecast_with(&params).expect("oracle forecast");
        let got = cached.forecast_with(&params).expect("post-publish forecast");
        assert_forecast_bits(&want, &got, &format!("post-publish {lo}..{hi}"));
    }

    let stats = cached_engine.partial_cache_stats().expect("cache on");
    println!(
        "warm replay under publisher {:>9.2} ms median over {replays_during_publishes} replays \
         ({publishes} publishes)   cache: {} hits, {} misses, {} evictions, {} entries",
        under_publish_secs * 1e3,
        stats.hits,
        stats.misses,
        stats.evictions,
        stats.entries
    );

    let doc = json!({
        "bench": "BENCH_cache",
        "rows_per_day": rows_per_day,
        "base_days": base_days,
        "layer_rates": [0.2],
        "seed": SEED,
        "kernel_tier": simd::active_tier().name(),
        "statement": sql,
        "windows": windows.iter().map(|(lo, hi)| json!([lo, hi])).collect::<Vec<_>>(),
        "bit_equal_before_timing": true,
        "cold_replay_secs": cold_secs,
        "warm_replay_secs": warm_secs,
        "warm_vs_cold_speedup": speedup,
        "warm_replay_under_publisher_secs": under_publish_secs,
        "concurrent_publishes": publishes,
        "replays_during_publishes": replays_during_publishes,
        "post_publish_bit_equal": true,
        "cache_stats": {
            "hits": stats.hits,
            "misses": stats.misses,
            "evictions": stats.evictions,
            "entries": stats.entries,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cache.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap();
    println!("wrote {path}");
}

/// Part 4: closed-loop service throughput (`BENCH_service.json`).
fn service_report() {
    let doc = flashp_server::harness::service_report();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap();
    println!("wrote {path}");
}

/// Statements per client thread in each timed query-pipeline run.
const STATEMENTS: usize = 2_000;

/// Wall-clock statements/sec for `threads` client threads each issuing
/// [`STATEMENTS`] calls of `f` against shared state.
fn statements_per_sec(threads: usize, f: impl Fn() + Sync) -> f64 {
    // Warmup (also populates the plan cache for the cached mode).
    for _ in 0..50 {
        f();
    }
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each closure already consumes its query result (the
                // error check), so no black_box is needed here.
                for _ in 0..STATEMENTS {
                    f();
                }
            });
        }
    });
    (threads * STATEMENTS) as f64 / t0.elapsed().as_secs_f64()
}

/// Part 2: statement-lifecycle throughput (`BENCH_query.json`).
fn query_pipeline_report() {
    // An interactive-scale task: 2 k rows/day, 60 days, 1 % GSW samples.
    let dataset = generate_dataset(&DatasetConfig::new(2_000, 60, SEED)).expect("dataset");
    let config = EngineConfig {
        layer_rates: vec![0.01],
        default_rate: 0.01,
        // Per-statement work is tiny; parallelism comes from the client
        // threads, not from intra-query scans.
        threads: 1,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&dataset.table, &config).expect("catalog");
    let engine = FlashPEngine::with_catalog(dataset.table, config, catalog);

    let sql = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
               USING (20200101, 20200130) OPTION (MODEL = 'naive', FORE_PERIOD = 7)";
    let prepared = engine.prepare(sql).expect("prepare");

    println!("\nquery pipeline: statements/sec at rate 0.01 ({STATEMENTS} statements/thread)");
    let mut modes = Vec::new();
    for threads in [1usize, 8] {
        // One-shot: parse + plan + execute on every call (the pre-staged
        // API's behavior; run_forecast bypasses the plan cache).
        let one_shot = statements_per_sec(threads, || {
            let stmt = match parse(sql).expect("parse") {
                Statement::Forecast(f) => f,
                _ => unreachable!(),
            };
            engine.run_forecast(&stmt).expect("one-shot forecast");
        });
        // Cached: the string API served from the LRU plan cache.
        let cached = statements_per_sec(threads, || {
            engine.forecast(sql).expect("cached forecast");
        });
        // Prepared: plan owned by the statement, no parsing, no lock.
        let prepared_rate = statements_per_sec(threads, || {
            prepared.forecast_with(&[]).expect("prepared forecast");
        });
        println!(
            "{threads} thread(s): one-shot {one_shot:>9.0}   plan-cache {cached:>9.0}   \
             prepared {prepared_rate:>9.0}   (prepared/one-shot {:.2}x)",
            prepared_rate / one_shot
        );
        modes.push(json!({
            "threads": threads,
            "one_shot_stmts_per_sec": one_shot,
            "plan_cache_stmts_per_sec": cached,
            "prepared_stmts_per_sec": prepared_rate,
            "prepared_vs_one_shot_speedup": prepared_rate / one_shot,
        }));
    }
    // Parameterized range: ONE prepared `USING (?, ?)` handle re-bound
    // across rotating training windows (clamp + layer selection per
    // binding, repeats served from the specialization cache) vs a fresh
    // parse + plan of each literal-window statement.
    let dyn_sql = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
                   USING (?, ?) OPTION (MODEL = 'naive', FORE_PERIOD = 7)";
    let dyn_prepared = engine.prepare(dyn_sql).expect("prepare dynamic range");
    const WINDOWS: &[(i64, i64)] =
        &[(20200101, 20200130), (20200108, 20200206), (20200115, 20200213), (20200122, 20200220)];
    let literal_for = |lo: i64, hi: i64| {
        format!(
            "FORECAST SUM(Impression) FROM ads WHERE age <= 30 AND gender = 'F' \
             USING ({lo}, {hi}) OPTION (MODEL = 'naive', FORE_PERIOD = 7)"
        )
    };
    println!("\nparameterized range: rotating {}-window dashboard", WINDOWS.len());
    let mut param_modes = Vec::new();
    for threads in [1usize, 8] {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let next = AtomicUsize::new(0);
        let one_shot = statements_per_sec(threads, || {
            let (lo, hi) = WINDOWS[next.fetch_add(1, Ordering::Relaxed) % WINDOWS.len()];
            let stmt = match parse(&literal_for(lo, hi)).expect("parse") {
                Statement::Forecast(f) => f,
                _ => unreachable!(),
            };
            engine.run_forecast(&stmt).expect("one-shot rotating forecast");
        });
        let next = AtomicUsize::new(0);
        let rebound = statements_per_sec(threads, || {
            let (lo, hi) = WINDOWS[next.fetch_add(1, Ordering::Relaxed) % WINDOWS.len()];
            dyn_prepared
                .forecast_with(&[Literal::Int(lo), Literal::Int(hi)])
                .expect("rebound forecast");
        });
        println!(
            "{threads} thread(s): one-shot {one_shot:>9.0}   rebound prepared {rebound:>9.0}   \
             (rebound/one-shot {:.2}x)",
            rebound / one_shot
        );
        param_modes.push(json!({
            "threads": threads,
            "one_shot_stmts_per_sec": one_shot,
            "rebound_prepared_stmts_per_sec": rebound,
            "rebound_vs_one_shot_speedup": rebound / one_shot,
        }));
    }

    let doc = json!({
        "bench": "BENCH_query",
        "statement": sql,
        "rate": 0.01,
        "statements_per_thread": STATEMENTS,
        "unit": "statements_per_sec",
        "kernel_tier": simd::active_tier().name(),
        "modes": modes,
        "parameterized_range": {
            "statement": dyn_sql,
            "windows": WINDOWS.iter().map(|(lo, hi)| json!([lo, hi])).collect::<Vec<_>>(),
            "modes": param_modes,
        },
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_query.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap();
    println!("wrote {path}");
}

/// Median seconds per call over `reps` timed calls (after warmup).
fn time_median_k<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..2 {
        black_box(f());
    }
    let mut times = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        black_box(f());
        times.push(t.elapsed().as_secs_f64());
    }
    times.sort_by(f64::total_cmp);
    times[reps / 2]
}

/// Part 3: live-ingest throughput and publish latency
/// (`BENCH_ingest.json`).
fn ingest_report() {
    let rows_per_day = 5_000usize;
    let dataset_config = DatasetConfig::new(rows_per_day, 90, SEED);
    let dataset = generate_dataset(&dataset_config).expect("dataset");
    let config = EngineConfig {
        layer_rates: vec![0.05, 0.01],
        default_rate: 0.01,
        threads: 1,
        ..Default::default()
    };
    let catalog = SampleCatalog::build(&dataset.table, &config).expect("catalog");
    let engine = FlashPEngine::with_catalog(dataset.table, config.clone(), catalog);

    let sql = "FORECAST SUM(Impression) FROM ads WHERE age <= 30 \
               USING (20200201, 20200330) OPTION (MODEL = 'naive', FORE_PERIOD = 7)";
    let prepared = engine.prepare(sql).expect("prepare");
    let query_before = time_median_k(15, || prepared.forecast_with(&[]).expect("forecast"));

    // Staging throughput: columnar day-batches into the pending table.
    let mut stream =
        BatchStream::continuing(&dataset_config, StreamConfig::new(rows_per_day, SEED));
    let staged_batches = 5usize;
    let stage_t0 = Instant::now();
    for _ in 0..staged_batches {
        let b = stream.next().expect("unbounded stream");
        let mut batch = IngestBatch::new();
        batch.push_partition(b.t, b.partition);
        engine.ingest(batch).expect("ingest");
    }
    let ingest_rows_per_sec =
        (staged_batches * rows_per_day) as f64 / stage_t0.elapsed().as_secs_f64();

    // Publish the 5 staged days at once, then measure steady-state
    // publish latency: one new day per publish, then repeated growth of
    // one existing day (the §4.1 absorb path).
    engine.publish().expect("publish staged days");
    let mut new_day_secs = Vec::new();
    for _ in 0..5 {
        let b = stream.next().expect("unbounded stream");
        let mut batch = IngestBatch::new();
        batch.push_partition(b.t, b.partition);
        engine.ingest(batch).expect("ingest");
        let stats = engine.publish().expect("publish");
        assert_eq!(stats.changed_partitions, 1);
        new_day_secs.push(stats.duration.as_secs_f64());
    }
    new_day_secs.sort_by(f64::total_cmp);
    let publish_new_day = new_day_secs[new_day_secs.len() / 2];

    let grow_day = 95usize; // an already-published streamed day
    let mut grow_secs = Vec::new();
    let mut absorbed_cells = 0usize;
    let mut rebuilt_cells = 0usize;
    let mut grow_stream = BatchStream::starting_at_day(
        &dataset_config,
        StreamConfig::new(rows_per_day / 5, SEED ^ 0x517),
        grow_day,
    );
    for _ in 0..5 {
        let b = grow_stream.next().expect("unbounded stream");
        let mut batch = IngestBatch::new();
        batch.push_partition(b.t, b.partition);
        engine.ingest(batch).expect("ingest");
        let stats = engine.publish().expect("publish");
        absorbed_cells += stats.delta.absorbed_cells;
        rebuilt_cells += stats.delta.rebuilt_cells;
        grow_secs.push(stats.duration.as_secs_f64());
    }
    grow_secs.sort_by(f64::total_cmp);
    let publish_grow_day = grow_secs[grow_secs.len() / 2];

    // Baseline: a full offline rebuild over the post-ingest table.
    let table = engine.table();
    let full_rebuild = time_median_k(3, || SampleCatalog::build(&table, &config).expect("build"));

    // Post-swap query latency from the *same* prepared handle.
    let query_after = time_median_k(15, || prepared.forecast_with(&[]).expect("forecast"));

    // Parallel work-queue scaling: the full offline build and a
    // multi-day bulk-backfill apply_delta, at increasing worker counts.
    // Cell seeds are scheduling-independent, so every row of this table
    // is bit-for-bit the same catalog.
    let worker_counts = [1usize, 2, 4];
    let build_secs: Vec<f64> = worker_counts
        .iter()
        .map(|&threads| {
            let cfg = EngineConfig { threads, ..config.clone() };
            time_median_k(3, || SampleCatalog::build(&table, &cfg).expect("build"))
        })
        .collect();
    let build_scaling: Vec<serde_json::Value> = worker_counts
        .iter()
        .zip(&build_secs)
        .map(|(&threads, &secs)| json!({ "threads": threads, "secs": secs }))
        .collect();

    // A 10-day backfill: the apply_delta shape the work queue exists for
    // (a 1-day publish has too few changed cells to parallelize).
    let backfill_catalog = SampleCatalog::build(&table, &config).expect("catalog");
    let mut backfill_table = (*table).clone();
    let mut backfill_delta = CatalogDelta::default();
    let mut backfill_stream = BatchStream::starting_at_day(
        &dataset_config,
        StreamConfig::new(rows_per_day, SEED ^ 0x9E37),
        200,
    );
    let backfill_days = 10usize;
    for _ in 0..backfill_days {
        let b = backfill_stream.next().expect("unbounded stream");
        let n = b.partition.num_rows();
        backfill_table.append_partition(b.t, b.partition).expect("append");
        backfill_delta.record(b.t, n);
    }
    let delta_secs: Vec<f64> = worker_counts
        .iter()
        .map(|&threads| {
            let cfg = EngineConfig { threads, ..config.clone() };
            time_median_k(3, || {
                backfill_catalog.apply_delta(&backfill_table, &cfg, &backfill_delta).expect("delta")
            })
        })
        .collect();
    let delta_scaling: Vec<serde_json::Value> = worker_counts
        .iter()
        .zip(&delta_secs)
        .map(|(&threads, &secs)| json!({ "threads": threads, "secs": secs }))
        .collect();
    let best = |secs: &[f64]| secs.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "catalog build (work queue)   {:>9.1} ms sequential, {:>8.1} ms best ({:.2}x over {:?} workers)",
        build_secs[0] * 1e3,
        best(&build_secs) * 1e3,
        build_secs[0] / best(&build_secs),
        worker_counts,
    );
    println!(
        "apply_delta ({backfill_days}-day backfill) {:>9.1} ms sequential, {:>8.1} ms best ({:.2}x over {:?} workers)",
        delta_secs[0] * 1e3,
        best(&delta_secs) * 1e3,
        delta_secs[0] / best(&delta_secs),
        worker_counts,
    );

    println!("\nlive ingest ({rows_per_day} rows/day, {} days + streamed):", 90);
    println!("ingest staging           {ingest_rows_per_sec:>12.0} rows/s");
    println!(
        "publish (1 new day)      {:>12.2} ms   vs full rebuild {:>8.1} ms ({:.1}x)",
        publish_new_day * 1e3,
        full_rebuild * 1e3,
        full_rebuild / publish_new_day
    );
    println!(
        "publish (grow 1 day)     {:>12.2} ms   ({} cells absorbed, {} rebuilt over 5 publishes)",
        publish_grow_day * 1e3,
        absorbed_cells,
        rebuilt_cells
    );
    println!(
        "prepared query latency   {:>12.2} ms before ingest, {:.2} ms after swap",
        query_before * 1e3,
        query_after * 1e3
    );

    let doc = json!({
        "bench": "BENCH_ingest",
        "rows_per_day": rows_per_day,
        "base_days": 90,
        "layer_rates": [0.05, 0.01],
        "seed": SEED,
        "kernel_tier": simd::active_tier().name(),
        "ingest_rows_per_sec": ingest_rows_per_sec,
        "publish_new_day_secs": publish_new_day,
        "publish_grow_day_secs": publish_grow_day,
        "full_rebuild_secs": full_rebuild,
        "full_rebuild_vs_publish_speedup": full_rebuild / publish_new_day,
        "grow_absorbed_cells": absorbed_cells,
        "grow_rebuilt_cells": rebuilt_cells,
        "prepared_query_secs_before": query_before,
        "prepared_query_secs_after_swap": query_after,
        "catalog_build_scaling": build_scaling,
        "apply_delta_backfill_days": backfill_days,
        "apply_delta_backfill_scaling": delta_scaling,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap();
    println!("wrote {path}");
}
