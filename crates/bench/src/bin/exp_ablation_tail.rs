//! Standalone runner for `experiments::ablation_tail`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::ablation_tail::run(&harness);
}
