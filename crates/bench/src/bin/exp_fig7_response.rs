//! Standalone runner for `experiments::fig7_response`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig7_response::run(&harness);
}
