//! Standalone runner for `experiments::fig15_space`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig15_space::run(&harness);
}
