//! Standalone runner for `experiments::forecast_error`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::forecast_error::run(&harness);
}
