//! Standalone runner for `experiments::fig8_train_len`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig8_train_len::run(&harness);
}
