//! Standalone runner for `experiments::fig3_example`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig3_example::run(&harness);
}
