//! Run every experiment in sequence on one shared dataset, regenerating
//! all tables and figures of the paper. See crate docs for env knobs.

type Experiment = fn(&flashp_bench::Harness) -> serde_json::Value;

fn main() {
    let harness = flashp_bench::Harness::load();
    let experiments: Vec<(&str, Experiment)> = vec![
        ("Proposition 1", flashp_bench::experiments::prop1::run),
        ("Fig. 3 example", flashp_bench::experiments::fig3_example::run),
        ("Fig. 5 grouping", flashp_bench::experiments::fig5_grouping::run),
        ("Fig. 7 response time", flashp_bench::experiments::fig7_response::run),
        ("Fig. 9 aggregation error", flashp_bench::experiments::fig9_agg_error::run),
        ("Table 1 summary", flashp_bench::experiments::table1::run),
        ("Figs. 10-14 forecast error", flashp_bench::experiments::forecast_error::run),
        ("Fig. 8 training length", flashp_bench::experiments::fig8_train_len::run),
        ("Fig. 12 intervals", flashp_bench::experiments::fig12_intervals::run),
        ("Fig. 15 space cost", flashp_bench::experiments::fig15_space::run),
        ("Ablation: tail vs priority", flashp_bench::experiments::ablation_tail::run),
    ];
    for (name, run) in experiments {
        eprintln!("\n################ {name} ################");
        let t = std::time::Instant::now();
        run(&harness);
        eprintln!("[{name}] finished in {:.1?}", t.elapsed());
    }
}
