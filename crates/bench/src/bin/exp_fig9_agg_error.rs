//! Standalone runner for `experiments::fig9_agg_error`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig9_agg_error::run(&harness);
}
