//! Standalone runner for `experiments::fig12_intervals`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::fig12_intervals::run(&harness);
}
