//! Scatter-gather throughput report, tracked in-tree.
//!
//! Measures statements/sec for the same prepared workloads against a
//! plain single `FlashPEngine` and against `ShardedEngine` at 1, 2, and
//! 4 physical shards over the identical dataset, from 1 and 4 client
//! threads, and writes `BENCH_shard.json` at the repo root.
//!
//! The shard counts share one virtual-slot layout, so the sharded rows
//! are also a bit-equality check: before timing anything, the report
//! asserts the N=1/2/4 answers are identical (the full contract lives
//! in `crates/core/tests/sharded_invariance.rs`). The single-engine
//! baseline is *not* bit-comparable on sampled statements — it draws
//! one sample per partition instead of one per slot — which is exactly
//! why it is the throughput baseline and not an oracle.
//!
//! On a 1-core box the ratios *are* the coordination cost: per-slot
//! planning, the per-query shard worker spawns, and the combiner merge,
//! with no parallel scan to pay for them (the same framing as
//! `BENCH_ingest`'s work-queue scaling rows). The recorded rows carry
//! the shard and client-thread counts so multi-core runs show the
//! fan-out scaling.
//!
//! Run with `cargo run -p flashp-bench --release --bin bench_shard`.

use flashp_core::{
    EngineConfig, FlashPEngine, SampleCatalog, SamplerChoice, ShardConfig, ShardedEngine,
};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_storage::simd;
use serde_json::json;
use std::time::Instant;

const ROWS_PER_DAY: usize = 2_000;
const DAYS: usize = 30;
const SEED: u64 = 11;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const CLIENT_THREADS: [usize; 2] = [1, 4];
/// Statements per client thread in each timed run.
const STATEMENTS: usize = 400;

/// Wall-clock statements/sec for `threads` client threads each issuing
/// [`STATEMENTS`] calls of `f` against one shared handle.
fn statements_per_sec(threads: usize, f: &(dyn Fn() + Sync)) -> f64 {
    for _ in 0..20 {
        f();
    }
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                for _ in 0..STATEMENTS {
                    f();
                }
            });
        }
    });
    (threads * STATEMENTS) as f64 / t0.elapsed().as_secs_f64()
}

struct Workload {
    name: &'static str,
    sql: &'static str,
}

const WORKLOADS: [Workload; 3] = [
    // The exact full scan is the path sharding actually parallelizes:
    // every shard scans its own rows concurrently.
    Workload {
        name: "exact_select_group_by",
        sql: "SELECT SUM(Impression) FROM ads WHERE age <= 30 \
              AND t BETWEEN 20200101 AND 20200130 GROUP BY t",
    },
    // Sampled estimation fans out tiny per-slot sample scans; the merge
    // (HT estimate + variance recombination) is the measured overhead.
    Workload {
        name: "sampled_select_group_by",
        sql: "SELECT SUM(Impression) FROM ads WHERE age <= 30 \
              AND t BETWEEN 20200101 AND 20200130 GROUP BY t \
              OPTION (SAMPLE_RATE = 0.05)",
    },
    // FORECAST gathers the merged series, then fits the model once on
    // the combiner's output — the fit is serial at every shard count.
    Workload {
        name: "sampled_forecast",
        sql: "FORECAST SUM(Impression) FROM ads WHERE age <= 30 \
              USING (20200101, 20200125) \
              OPTION (MODEL = 'ar(7)', FORE_PERIOD = 7, SAMPLE_RATE = 0.2)",
    },
];

fn main() {
    let dataset = generate_dataset(&DatasetConfig::new(ROWS_PER_DAY, DAYS, SEED)).expect("dataset");
    let config = EngineConfig {
        sampler: SamplerChoice::OptimalGsw,
        layer_rates: vec![0.2, 0.05],
        default_rate: 0.05,
        ..Default::default()
    };

    let sharded: Vec<(usize, ShardedEngine)> = SHARD_COUNTS
        .iter()
        .map(|&n| {
            let engine = ShardedEngine::with_catalogs(
                &dataset.table,
                config.clone(),
                ShardConfig::with_shards(n),
            )
            .expect("sharded engine");
            (n, engine)
        })
        .collect();
    let catalog = SampleCatalog::build(&dataset.table, &config).expect("catalog");
    let single = FlashPEngine::with_catalog(dataset.table, config, catalog);

    // Sanity: the shard counts answer identically before any of them is
    // timed (everything but the per-run timing breakdown).
    let comparable = |out: &flashp_core::ExecOutput| -> String {
        use flashp_core::ExecOutput;
        match out {
            ExecOutput::Select(s) => format!("{:?}", s.rows),
            ExecOutput::Forecast(f) => format!("{:?} {:?}", f.estimates, f.forecasts),
            ExecOutput::Plan(p) => format!("{p:?}"),
        }
    };
    for w in &WORKLOADS {
        let baseline = comparable(&sharded[0].1.execute(w.sql).expect(w.name));
        for (n, engine) in &sharded[1..] {
            let got = comparable(&engine.execute(w.sql).expect(w.name));
            assert_eq!(baseline, got, "{}: N={n} diverged from N=1", w.name);
        }
    }

    println!(
        "scatter-gather throughput: {ROWS_PER_DAY} rows/day x {DAYS} days, \
         {STATEMENTS} statements/thread, kernel tier {}",
        simd::active_tier().name()
    );
    let mut workloads = Vec::new();
    for w in &WORKLOADS {
        println!("\n{} — {}", w.name, w.sql);
        // (engine label, shard count, callable) — the single engine and
        // every shard count run the identical prepared-handle loop.
        type Runner = (String, Option<usize>, Box<dyn Fn() + Sync>);
        let single_prepared = single.prepare(w.sql).expect("prepare single");
        let mut runners: Vec<Runner> = vec![(
            "single".to_string(),
            None,
            Box::new(move || {
                single_prepared.execute_with(&[]).expect("single execute");
            }),
        )];
        for (n, engine) in &sharded {
            let prepared = engine.prepare(w.sql).expect("prepare sharded");
            runners.push((
                format!("sharded_{n}"),
                Some(*n),
                Box::new(move || {
                    prepared.execute().expect("sharded execute");
                }),
            ));
        }

        let mut engines = Vec::new();
        let mut single_rates: Vec<f64> = Vec::new();
        for (label, shards, run) in &runners {
            let mut line = format!("{label:<10}");
            let mut threads_json = Vec::new();
            for (i, &threads) in CLIENT_THREADS.iter().enumerate() {
                let rate = statements_per_sec(threads, run.as_ref());
                line.push_str(&format!("   {threads} thread(s) {rate:>9.0} stmt/s"));
                let vs_single = if shards.is_some() {
                    let r = rate / single_rates[i];
                    line.push_str(&format!(" ({r:.2}x single)"));
                    Some(r)
                } else {
                    single_rates.push(rate);
                    None
                };
                threads_json.push(json!({
                    "threads": threads,
                    "stmts_per_sec": rate,
                    "vs_single_speedup": vs_single,
                }));
            }
            println!("{line}");
            engines.push(json!({
                "engine": label,
                "shards": shards,
                "threads": threads_json,
            }));
        }
        workloads.push(json!({
            "name": w.name,
            "statement": w.sql,
            "engines": engines,
        }));
    }

    let doc = json!({
        "bench": "BENCH_shard",
        "rows_per_day": ROWS_PER_DAY,
        "days": DAYS,
        "seed": SEED,
        "layer_rates": [0.2, 0.05],
        "slots": ShardConfig::default().slots,
        "shard_counts": SHARD_COUNTS,
        "statements_per_thread": STATEMENTS,
        "unit": "statements_per_sec",
        "kernel_tier": simd::active_tier().name(),
        "host_threads": std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
        "workloads": workloads,
    });
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).unwrap() + "\n").unwrap();
    println!("\nwrote {path}");
}
