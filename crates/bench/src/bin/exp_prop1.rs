//! Standalone runner for `experiments::prop1`. Scale via FLASHP_* env
//! vars (see the crate docs).

fn main() {
    let harness = flashp_bench::Harness::load();
    flashp_bench::experiments::prop1::run(&harness);
}
