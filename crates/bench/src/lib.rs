//! # flashp-bench
//!
//! The experiment harness that regenerates **every table and figure** of
//! the FlashP paper's evaluation (§6). Each experiment lives in
//! [`experiments`] and is exposed both as a library function (so
//! `run_all` can share one dataset) and as a standalone binary
//! (`cargo run -p flashp-bench --release --bin exp_…`).
//!
//! Scale knobs (environment variables):
//!
//! * `FLASHP_ROWS_PER_DAY` — rows per daily partition (default 20 000; the
//!   paper's production table has ~15 M),
//! * `FLASHP_DAYS` — number of days (default 200, as in the paper),
//! * `FLASHP_RUNS` — independent tasks per configuration (default 10; the
//!   paper averages 400),
//! * `FLASHP_QUICK=1` — tiny preset for smoke runs,
//! * `FLASHP_SEED` — dataset seed.
//!
//! Machine-readable results are written to `target/experiments/*.json`.

pub mod experiments;

use flashp_core::{build_model, EngineConfig, FlashPEngine, SampleCatalog, SamplerChoice};
use flashp_data::workload::{Task, WorkloadConfig, WorkloadGenerator};
use flashp_data::{generate_dataset, DatasetConfig};
use flashp_storage::{AggFunc, CompiledPredicate, TimeSeriesTable, Timestamp};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The paper's sampling-rate grid (1 %, 0.1 %, 0.05 %, 0.02 %), relative
/// to a 15 M rows/day table. The estimation-error theory depends on the
/// *absolute* expected sample size `E|S|`, not the rate, so laptop-scale
/// runs scale this grid up by `FLASHP_RATE_SCALE` (default 10 at the
/// default 50 k rows/day) to keep per-day sample sizes in a regime where
/// the samplers are distinguishable. Set `FLASHP_RATE_SCALE=1` together
/// with a large `FLASHP_ROWS_PER_DAY` for paper-true rates.
pub const BASE_PAPER_RATES: [f64; 4] = [0.01, 0.001, 0.0005, 0.0002];

/// Rate-grid scale factor (`FLASHP_RATE_SCALE`, default 10).
pub fn rate_scale() -> f64 {
    std::env::var("FLASHP_RATE_SCALE").ok().and_then(|v| v.parse().ok()).unwrap_or(10.0)
}

/// The scaled sampling-rate grid used by experiments.
pub fn paper_rates() -> Vec<f64> {
    let k = rate_scale();
    BASE_PAPER_RATES.iter().map(|r| (r * k).min(1.0)).collect()
}

/// Scaled rates including the exact scan, for experiment sweeps.
pub fn sweep_rates() -> Vec<f64> {
    let mut v = vec![1.0];
    v.extend(paper_rates());
    v.dedup();
    v
}

/// Measure names in schema order.
pub const MEASURES: [&str; 4] = ["Impression", "Click", "Favorite", "Cart"];

/// Pretty rate label matching the paper's axes.
pub fn rate_label(rate: f64) -> String {
    format!("{}%", rate * 100.0)
}

/// Number of independent tasks per configuration (`FLASHP_RUNS`).
pub fn runs() -> usize {
    std::env::var("FLASHP_RUNS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

/// Shared experiment context: one synthetic dataset per process.
pub struct Harness {
    pub table: Arc<TimeSeriesTable>,
    pub start: Timestamp,
    pub num_days: usize,
}

impl Harness {
    /// Load the dataset per environment configuration.
    pub fn load() -> Self {
        let seed = std::env::var("FLASHP_SEED").ok().and_then(|v| v.parse().ok()).unwrap_or(2024);
        let config = if std::env::var("FLASHP_QUICK").is_ok() {
            DatasetConfig::new(2_000, 80, seed)
        } else {
            DatasetConfig::experiment(seed)
        };
        eprintln!(
            "[harness] generating dataset: {} rows/day x {} days (seed {seed})…",
            config.rows_per_day, config.num_days
        );
        let t0 = Instant::now();
        let ds = generate_dataset(&config).expect("dataset generation");
        eprintln!(
            "[harness] {} rows, {:.1} MiB, {:.1?}",
            ds.table.num_rows(),
            ds.table.byte_size() as f64 / (1024.0 * 1024.0),
            t0.elapsed()
        );
        let start = ds.start();
        Harness { table: Arc::new(ds.table), start, num_days: config.num_days }
    }

    /// Last day of the dataset.
    pub fn end(&self) -> Timestamp {
        self.start + (self.num_days as i64 - 1)
    }

    /// Training window of `len` days whose 7-day holdout still lies inside
    /// the dataset: `[end − 7 − len + 1, end − 7]`.
    pub fn train_range(&self, len: usize) -> (Timestamp, Timestamp) {
        let train_end = self.end() - 7;
        (train_end - (len as i64 - 1), train_end)
    }

    /// A workload generator referencing the dataset's middle day.
    pub fn workload(&self) -> WorkloadGenerator<'_> {
        let mid = self.start + (self.num_days as i64 / 2);
        WorkloadGenerator::for_table(&self.table, mid)
    }

    /// Generate `n` tasks for `measure` at the target selectivity.
    pub fn tasks(&self, measure: usize, selectivity: f64, n: usize, seed: u64) -> Vec<Task> {
        let workload = self.workload();
        let mut rng = StdRng::seed_from_u64(seed);
        let config = WorkloadConfig::new(selectivity);
        (0..n)
            .map(|_| workload.generate(measure, &config, &mut rng).expect("workload generation"))
            .collect()
    }

    /// Exact per-day aggregates over `[t0, t1]`.
    pub fn truth(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        t0: Timestamp,
        t1: Timestamp,
    ) -> Vec<f64> {
        flashp_storage::aggregate_range(
            &self.table,
            measure,
            pred,
            AggFunc::Sum,
            t0,
            t1,
            flashp_storage::ScanOptions::default(),
        )
        .expect("exact scan")
        .into_iter()
        .map(|(_, v)| v)
        .collect()
    }
}

/// A set of engines, one per sampler family, all sharing the table.
pub struct EngineSet {
    engines: Vec<(SamplerChoice, FlashPEngine)>,
}

impl EngineSet {
    /// Build engines for the given samplers with the given layer rates.
    pub fn build(table: Arc<TimeSeriesTable>, samplers: &[SamplerChoice], rates: &[f64]) -> Self {
        let mut engines = Vec::with_capacity(samplers.len());
        for sampler in samplers {
            let t0 = Instant::now();
            let config = EngineConfig {
                sampler: sampler.clone(),
                layer_rates: rates.to_vec(),
                ..Default::default()
            };
            let catalog = SampleCatalog::build(&table, &config).expect("sample build");
            eprintln!(
                "[harness] built {} samples: {} KiB in {:.1?}",
                sampler.label(),
                catalog.stats().total_bytes / 1024,
                t0.elapsed()
            );
            engines.push((
                sampler.clone(),
                FlashPEngine::with_catalog(table.clone(), config, catalog),
            ));
        }
        EngineSet { engines }
    }

    /// Engine for one sampler family.
    pub fn get(&self, choice: &SamplerChoice) -> &FlashPEngine {
        &self
            .engines
            .iter()
            .find(|(c, _)| c == choice)
            .unwrap_or_else(|| panic!("engine for {choice:?} not built"))
            .1
    }

    /// Iterate `(sampler, engine)`.
    pub fn iter(&self) -> impl Iterator<Item = (&SamplerChoice, &FlashPEngine)> {
        self.engines.iter().map(|(c, e)| (c, e))
    }
}

/// Mean relative aggregation error of `engine` at `rate` vs the exact
/// series over the window (the paper's *relative aggregation error*).
pub fn agg_error(
    engine: &FlashPEngine,
    measure: usize,
    pred: &CompiledPredicate,
    t0: Timestamp,
    t1: Timestamp,
    rate: f64,
) -> f64 {
    if rate >= 1.0 {
        return 0.0;
    }
    let (exact, _, _) =
        engine.estimate_series(measure, pred, AggFunc::Sum, t0, t1, 1.0).expect("exact series");
    let (est, _, _) =
        engine.estimate_series(measure, pred, AggFunc::Sum, t0, t1, rate).expect("estimate");
    let mut total = 0.0;
    let mut n = 0usize;
    for (e, x) in est.iter().zip(&exact) {
        if x.value != 0.0 {
            total += (e.value - x.value).abs() / x.value;
            n += 1;
        }
    }
    if n == 0 {
        f64::NAN
    } else {
        total / n as f64
    }
}

/// Result of one end-to-end forecast evaluation.
#[derive(Debug, Clone)]
pub struct ForecastEval {
    /// Relative forecast error vs held-out truth, averaged over the
    /// horizon.
    pub forecast_error: f64,
    /// Mean forecast-interval width.
    pub interval_width: f64,
    /// Aggregation-phase wall clock.
    pub agg_time: Duration,
    /// Model fit + prediction wall clock.
    pub fit_time: Duration,
    /// The estimated training series.
    pub estimates: Vec<f64>,
    /// Point forecasts.
    pub forecasts: Vec<f64>,
    /// Interval bounds per horizon step.
    pub intervals: Vec<(f64, f64)>,
}

/// Run the two-phase pipeline programmatically (estimate series → fit
/// `model` → forecast over `truth.len()` steps) and score against `truth`.
pub fn forecast_eval(
    engine: &FlashPEngine,
    measure: usize,
    pred: &CompiledPredicate,
    train: (Timestamp, Timestamp),
    model_name: &str,
    rate: f64,
    truth: &[f64],
) -> Result<ForecastEval, Box<dyn std::error::Error>> {
    let horizon = truth.len();
    let t0 = Instant::now();
    let (points, _, _) =
        engine.estimate_series(measure, pred, AggFunc::Sum, train.0, train.1, rate)?;
    let agg_time = t0.elapsed();
    let estimates: Vec<f64> = points.iter().map(|p| p.value).collect();

    let t1 = Instant::now();
    let mut model = build_model(model_name)?;
    model.fit(&estimates)?;
    let fc = model.forecast(horizon, 0.9)?;
    let fit_time = t1.elapsed();

    let forecasts = fc.values();
    let forecast_error =
        flashp_forecast::metrics::mean_relative_error(&forecasts, truth).unwrap_or(f64::NAN);
    Ok(ForecastEval {
        forecast_error,
        interval_width: fc.mean_interval_width(),
        agg_time,
        fit_time,
        estimates,
        forecasts,
        intervals: fc.points.iter().map(|p| (p.lo, p.hi)).collect(),
    })
}

/// Mean and sample standard deviation of a slice (NaNs skipped).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    let clean: Vec<f64> = xs.iter().copied().filter(|v| v.is_finite()).collect();
    if clean.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = clean.iter().sum::<f64>() / clean.len() as f64;
    if clean.len() < 2 {
        return (mean, 0.0);
    }
    let var = clean.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (clean.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write a JSON result blob to `target/experiments/<name>.json`.
pub fn write_json(name: &str, value: &serde_json::Value) {
    let dir = std::path::Path::new("target/experiments");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Ok(text) = serde_json::to_string_pretty(value) {
        let _ = std::fs::write(&path, text);
        eprintln!("[harness] wrote {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[1.0, 2.0, 3.0]);
        assert_eq!(m, 2.0);
        assert!((s - 1.0).abs() < 1e-12);
        let (m, _) = mean_std(&[f64::NAN, 4.0]);
        assert_eq!(m, 4.0);
        assert!(mean_std(&[]).0.is_nan());
    }

    #[test]
    fn rate_labels() {
        assert_eq!(rate_label(1.0), "100%");
        assert_eq!(rate_label(0.001), "0.1%");
        assert_eq!(rate_label(0.0002), "0.02%");
    }

    #[test]
    fn harness_quick_pipeline() {
        std::env::set_var("FLASHP_QUICK", "1");
        let h = Harness::load();
        assert_eq!(h.num_days, 80);
        let (t0, t1) = h.train_range(30);
        assert_eq!(t1 - t0, 29);
        assert_eq!(h.end() - t1, 7);
        let tasks = h.tasks(0, 0.1, 2, 1);
        assert_eq!(tasks.len(), 2);
        let pred = h.table.compile_predicate(&tasks[0].predicate).unwrap();
        let truth = h.truth(0, &pred, t1 + 1, t1 + 7);
        assert_eq!(truth.len(), 7);
        assert!(truth.iter().all(|v| *v >= 0.0));
        std::env::remove_var("FLASHP_QUICK");
    }
}
