//! Recursive-descent parser for the task language.

use crate::ast::{
    CmpOp, Expr, ForecastStmt, Literal, OptionValue, SelectStmt, Statement, TimeBound, UsingClause,
    TIME_COLUMN,
};
use crate::error::ParseError;
use crate::lexer::{tokenize, Token, TokenKind};
use flashp_storage::AggFunc;

/// Parse one statement.
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0, params: 0 };
    let stmt = p.statement()?;
    p.expect_eof()?;
    Ok(stmt)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Number of `?` placeholders consumed so far; placeholders are
    /// numbered left-to-right in source order.
    params: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.peek().position)
    }

    /// Consume an identifier equal (case-insensitively) to `kw`.
    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.advance();
                Ok(())
            }
            other => Err(self.error_here(format!("expected {kw}, found {}", other.describe()))),
        }
    }

    /// Is the current token the given keyword? (does not consume)
    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn accept_keyword(&mut self, kw: &str) -> bool {
        if self.at_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_token(&mut self, kind: &TokenKind) -> Result<(), ParseError> {
        if &self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error_here(format!(
                "expected {}, found {}",
                kind.describe(),
                self.peek().kind.describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => {
                Err(self.error_here(format!("expected identifier, found {}", other.describe())))
            }
        }
    }

    /// A `USING` endpoint: a `YYYYMMDD` integer or a `?` placeholder
    /// (numbered with the statement's other parameters).
    fn time_bound(&mut self) -> Result<TimeBound, ParseError> {
        match self.peek().kind {
            TokenKind::Int(v) => {
                self.advance();
                Ok(TimeBound::Lit(v))
            }
            TokenKind::Question => {
                self.advance();
                let index = self.params;
                self.params += 1;
                Ok(TimeBound::Param(index))
            }
            ref other => Err(self
                .error_here(format!("expected YYYYMMDD integer or ?, found {}", other.describe()))),
        }
    }

    fn expect_eof(&self) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Eof {
            Ok(())
        } else {
            Err(self
                .error_here(format!("unexpected trailing input: {}", self.peek().kind.describe())))
        }
    }

    fn statement(&mut self) -> Result<Statement, ParseError> {
        if self.accept_keyword("EXPLAIN") {
            if self.at_keyword("EXPLAIN") {
                return Err(self.error_here("EXPLAIN cannot be nested"));
            }
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.accept_keyword("FORECAST") {
            return Ok(Statement::Forecast(self.forecast_body()?));
        }
        if self.accept_keyword("SELECT") {
            return Ok(Statement::Select(self.select_body()?));
        }
        Err(self.error_here(format!(
            "expected FORECAST, SELECT or EXPLAIN, found {}",
            self.peek().kind.describe()
        )))
    }

    /// `agg(measure) FROM table`.
    fn agg_from(&mut self) -> Result<(AggFunc, String, String), ParseError> {
        let agg_pos = self.peek().position;
        let agg_name = self.expect_ident()?;
        let agg = AggFunc::parse(&agg_name).ok_or_else(|| {
            ParseError::new(format!("unknown aggregate function '{agg_name}'"), agg_pos)
        })?;
        self.expect_token(&TokenKind::LParen)?;
        // COUNT(*) is sugar for counting rows; represent as measure "*".
        let measure = if self.peek().kind == TokenKind::Star {
            self.advance();
            "*".to_string()
        } else {
            self.expect_ident()?
        };
        self.expect_token(&TokenKind::RParen)?;
        self.expect_keyword("FROM")?;
        let table = self.expect_ident()?;
        Ok((agg, measure, table))
    }

    fn forecast_body(&mut self) -> Result<ForecastStmt, ParseError> {
        let (agg, measure, table) = self.agg_from()?;
        let constraint = if self.accept_keyword("WHERE") { self.expr()? } else { Expr::True };
        self.expect_keyword("USING")?;
        let using = self.using_clause()?;
        let options = self.options_clause()?;
        if constraint.references(TIME_COLUMN) {
            return Err(ParseError::new(
                format!("FORECAST constraints may not reference '{TIME_COLUMN}'; use USING (start, end)"),
                0,
            ));
        }
        Ok(ForecastStmt { agg, measure, table, constraint, using, options })
    }

    /// The body of a `USING` clause: `(start, end)` or `LAST n DAYS`.
    fn using_clause(&mut self) -> Result<UsingClause, ParseError> {
        if self.accept_keyword("LAST") {
            let pos = self.peek().position;
            let days = match self.peek().kind {
                TokenKind::Int(v) => {
                    self.advance();
                    if v < 1 {
                        return Err(ParseError::new(
                            format!("USING LAST requires a positive day count, got {v}"),
                            pos,
                        ));
                    }
                    TimeBound::Lit(v)
                }
                TokenKind::Question => {
                    self.advance();
                    let index = self.params;
                    self.params += 1;
                    TimeBound::Param(index)
                }
                ref other => {
                    return Err(self.error_here(format!(
                        "expected day count integer or ?, found {}",
                        other.describe()
                    )))
                }
            };
            self.expect_keyword("DAYS")?;
            return Ok(UsingClause::LastDays(days));
        }
        self.expect_token(&TokenKind::LParen)?;
        let start = self.time_bound()?;
        self.expect_token(&TokenKind::Comma)?;
        let end = self.time_bound()?;
        self.expect_token(&TokenKind::RParen)?;
        Ok(UsingClause::Window { start, end })
    }

    fn select_body(&mut self) -> Result<SelectStmt, ParseError> {
        let (agg, measure, table) = self.agg_from()?;
        let constraint = if self.accept_keyword("WHERE") { self.expr()? } else { Expr::True };
        let mut group_by_time = false;
        if self.accept_keyword("GROUP") {
            self.expect_keyword("BY")?;
            let pos = self.peek().position;
            let col = self.expect_ident()?;
            if col != TIME_COLUMN {
                return Err(ParseError::new(
                    format!("only GROUP BY {TIME_COLUMN} is supported, got '{col}'"),
                    pos,
                ));
            }
            group_by_time = true;
        }
        let options = self.options_clause()?;
        Ok(SelectStmt { agg, measure, table, constraint, group_by_time, options })
    }

    /// `OPTION (key = value, …)`, if present.
    fn options_clause(&mut self) -> Result<Vec<(String, OptionValue)>, ParseError> {
        let mut options = Vec::new();
        if self.accept_keyword("OPTION") {
            self.expect_token(&TokenKind::LParen)?;
            loop {
                let key = self.expect_ident()?;
                self.expect_token(&TokenKind::Eq)?;
                let value = match self.advance().kind {
                    TokenKind::Str(s) => OptionValue::Str(s),
                    TokenKind::Int(v) => OptionValue::Int(v),
                    TokenKind::Float(v) => OptionValue::Float(v),
                    other => {
                        return Err(self.error_here(format!(
                            "expected option value, found {}",
                            other.describe()
                        )))
                    }
                };
                options.push((key, value));
                if self.peek().kind == TokenKind::Comma {
                    self.advance();
                    continue;
                }
                break;
            }
            self.expect_token(&TokenKind::RParen)?;
        }
        Ok(options)
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.and_expr()?];
        while self.accept_keyword("OR") {
            children.push(self.and_expr()?);
        }
        Ok(if children.len() == 1 {
            children.pop().expect("non-empty")
        } else {
            Expr::Or(children)
        })
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut children = vec![self.not_expr()?];
        while self.accept_keyword("AND") {
            children.push(self.not_expr()?);
        }
        Ok(if children.len() == 1 {
            children.pop().expect("non-empty")
        } else {
            Expr::And(children)
        })
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.accept_keyword("NOT") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.peek().kind == TokenKind::LParen {
            self.advance();
            let e = self.expr()?;
            self.expect_token(&TokenKind::RParen)?;
            return Ok(e);
        }
        if self.accept_keyword("TRUE") {
            return Ok(Expr::True);
        }
        let column = self.expect_ident()?;
        // `col IN (…)`, `col BETWEEN a AND b`, `col NOT IN (…)` or `col op lit`.
        if self.accept_keyword("NOT") {
            self.expect_keyword("IN")?;
            let values = self.literal_list()?;
            return Ok(Expr::Not(Box::new(Expr::In { column, values })));
        }
        if self.accept_keyword("IN") {
            let values = self.literal_list()?;
            return Ok(Expr::In { column, values });
        }
        if self.accept_keyword("BETWEEN") {
            let lo = self.literal()?;
            self.expect_keyword("AND")?;
            let hi = self.literal()?;
            return Ok(Expr::Between { column, lo, hi });
        }
        let op = match self.advance().kind {
            TokenKind::Eq => CmpOp::Eq,
            TokenKind::Ne => CmpOp::Ne,
            TokenKind::Lt => CmpOp::Lt,
            TokenKind::Le => CmpOp::Le,
            TokenKind::Gt => CmpOp::Gt,
            TokenKind::Ge => CmpOp::Ge,
            other => {
                return Err(self.error_here(format!(
                    "expected comparison operator after '{column}', found {}",
                    other.describe()
                )))
            }
        };
        let value = self.literal()?;
        Ok(Expr::Cmp { column, op, value })
    }

    fn literal_list(&mut self) -> Result<Vec<Literal>, ParseError> {
        self.expect_token(&TokenKind::LParen)?;
        let mut values = vec![self.literal()?];
        while self.peek().kind == TokenKind::Comma {
            self.advance();
            values.push(self.literal()?);
        }
        self.expect_token(&TokenKind::RParen)?;
        Ok(values)
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        match self.advance().kind {
            TokenKind::Int(v) => Ok(Literal::Int(v)),
            TokenKind::Float(v) => Ok(Literal::Float(v)),
            TokenKind::Str(s) => Ok(Literal::Str(s)),
            TokenKind::Question => {
                let index = self.params;
                self.params += 1;
                Ok(Literal::Param(index))
            }
            other => Err(self.error_here(format!("expected literal, found {}", other.describe()))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_figure2_forecast() {
        let stmt = parse(
            "FORECAST SUM(Impression) FROM T WHERE Age <= 30 AND Gender = 'F' \
             USING (20200101, 20200331)",
        )
        .unwrap();
        let Statement::Forecast(f) = stmt else { panic!("expected forecast") };
        assert_eq!(f.agg, AggFunc::Sum);
        assert_eq!(f.measure, "Impression");
        assert_eq!(f.table, "T");
        assert_eq!(
            f.using,
            UsingClause::Window { start: TimeBound::Lit(20200101), end: TimeBound::Lit(20200331) }
        );
        assert_eq!(
            f.constraint,
            Expr::And(vec![
                Expr::Cmp { column: "Age".into(), op: CmpOp::Le, value: Literal::Int(30) },
                Expr::Cmp {
                    column: "Gender".into(),
                    op: CmpOp::Eq,
                    value: Literal::Str("F".into())
                },
            ])
        );
    }

    #[test]
    fn parses_options() {
        let stmt = parse(
            "FORECAST AVG(ViewTime) FROM ads USING (20200101, 20200201) \
             OPTION (MODEL = 'lstm', FORE_PERIOD = 7, SAMPLE_RATE = 0.001)",
        )
        .unwrap();
        let Statement::Forecast(f) = stmt else { panic!() };
        assert_eq!(f.option("model").unwrap().as_str(), Some("lstm"));
        assert_eq!(f.option("fore_period").unwrap().as_int(), Some(7));
        assert_eq!(f.option("sample_rate").unwrap().as_float(), Some(0.001));
        assert_eq!(f.constraint, Expr::True);
    }

    #[test]
    fn parses_select_with_time_predicate() {
        let stmt = parse(
            "SELECT SUM(Impression) FROM T WHERE Age <= 30 AND Gender = 'F' AND t = 20200101",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(s.constraint.references("t"));
        assert!(!s.group_by_time);
    }

    #[test]
    fn parses_group_by_t() {
        let stmt = parse("SELECT COUNT(*) FROM T WHERE Age > 50 GROUP BY t").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert!(s.group_by_time);
        assert_eq!(s.measure, "*");
        assert_eq!(s.agg, AggFunc::Count);
    }

    #[test]
    fn group_by_other_column_rejected() {
        let e = parse("SELECT SUM(m) FROM T GROUP BY Age").unwrap_err();
        assert!(e.message.contains("GROUP BY t"));
    }

    #[test]
    fn parses_in_between_not() {
        let stmt = parse(
            "SELECT SUM(m) FROM T WHERE Location IN ('NY', 'WA') \
             AND Age BETWEEN 20 AND 30 AND NOT Device = 'PC' AND Tag NOT IN (1, 2)",
        )
        .unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Expr::And(parts) = &s.constraint else { panic!("expected AND") };
        assert_eq!(parts.len(), 4);
        assert!(matches!(&parts[0], Expr::In { .. }));
        assert!(matches!(&parts[1], Expr::Between { .. }));
        assert!(matches!(&parts[2], Expr::Not(_)));
        assert!(matches!(&parts[3], Expr::Not(inner) if matches!(**inner, Expr::In { .. })));
    }

    #[test]
    fn parses_float_literals_and_round_trips() {
        let stmt = parse("SELECT SUM(m) FROM T WHERE score < 0.5 AND rate >= 1e-3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Expr::And(parts) = &s.constraint else { panic!("expected AND") };
        assert_eq!(
            parts[0],
            Expr::Cmp { column: "score".into(), op: CmpOp::Lt, value: Literal::Float(0.5) }
        );
        assert_eq!(
            parts[1],
            Expr::Cmp { column: "rate".into(), op: CmpOp::Ge, value: Literal::Float(0.001) }
        );
        // The printed float keeps its decimal point, so it re-parses as a
        // float (an integral 3.0 must not collapse to the int 3).
        let stmt = parse("SELECT SUM(m) FROM T WHERE score = 3.0").unwrap();
        let reparsed = parse(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed);
        let Statement::Select(s) = reparsed else { panic!() };
        assert!(matches!(
            &s.constraint,
            Expr::Cmp { value: Literal::Float(v), .. } if *v == 3.0
        ));
    }

    #[test]
    fn or_and_precedence() {
        // a AND b OR c parses as (a AND b) OR c.
        let stmt = parse("SELECT SUM(m) FROM T WHERE a = 1 AND b = 2 OR c = 3").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Expr::Or(parts) = &s.constraint else { panic!("expected OR at top") };
        assert_eq!(parts.len(), 2);
        assert!(matches!(&parts[0], Expr::And(_)));
    }

    #[test]
    fn parentheses_override_precedence() {
        let stmt = parse("SELECT SUM(m) FROM T WHERE a = 1 AND (b = 2 OR c = 3)").unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        let Expr::And(parts) = &s.constraint else { panic!("expected AND at top") };
        assert!(matches!(&parts[1], Expr::Or(_)));
    }

    #[test]
    fn forecast_constraint_on_time_rejected() {
        let e = parse("FORECAST SUM(m) FROM T WHERE t = 20200101 USING (20200101, 20200201)")
            .unwrap_err();
        assert!(e.message.contains("USING"));
    }

    #[test]
    fn error_positions_are_useful() {
        let e = parse("FORECAST MAX(m) FROM T USING (1, 2)").unwrap_err();
        assert!(e.message.contains("unknown aggregate"));
        assert_eq!(e.position, 9);
        let e = parse("SELECT SUM(m) FROM T WHERE").unwrap_err();
        assert!(e.message.contains("expected"));
        let e = parse("SELECT SUM(m) FROM T extra").unwrap_err();
        assert!(e.message.contains("trailing"));
    }

    #[test]
    fn parses_parameters_in_source_order() {
        let stmt = parse(
            "FORECAST SUM(m) FROM T WHERE age <= ? AND city IN (?, ?) AND seg BETWEEN ? AND 9 \
             USING (20200101, 20200131)",
        )
        .unwrap();
        let Statement::Forecast(f) = stmt else { panic!() };
        assert_eq!(f.num_params(), 4);
        let Expr::And(parts) = &f.constraint else { panic!() };
        assert_eq!(
            parts[0],
            Expr::Cmp { column: "age".into(), op: CmpOp::Le, value: Literal::Param(0) }
        );
        assert!(matches!(&parts[1], Expr::In { values, .. }
            if values == &[Literal::Param(1), Literal::Param(2)]));
        assert!(matches!(&parts[2], Expr::Between { lo: Literal::Param(3), .. }));
    }

    #[test]
    fn parameterized_statement_display_round_trips() {
        let text = "SELECT SUM(m) FROM T WHERE (age <= ?) AND (gender = ?) GROUP BY t";
        let stmt = parse(text).unwrap();
        let reparsed = parse(&stmt.to_string()).unwrap();
        assert_eq!(stmt, reparsed, "? placeholders must re-parse to the same indices");
    }

    #[test]
    fn parses_explain() {
        let stmt =
            parse("EXPLAIN FORECAST SUM(m) FROM T WHERE a = 1 USING (20200101, 20200131)").unwrap();
        let Statement::Explain(inner) = &stmt else { panic!("expected EXPLAIN") };
        assert!(matches!(**inner, Statement::Forecast(_)));
        // Display round-trips with the prefix.
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
        // EXPLAIN of SELECT works too; nesting is rejected.
        assert!(parse("EXPLAIN SELECT SUM(m) FROM T").is_ok());
        let e = parse("EXPLAIN EXPLAIN SELECT SUM(m) FROM T").unwrap_err();
        assert!(e.message.contains("nested"));
    }

    #[test]
    fn parses_select_options() {
        let stmt = parse("SELECT SUM(m) FROM T GROUP BY t OPTION (SAMPLE_RATE = 0.01)").unwrap();
        let Statement::Select(s) = &stmt else { panic!() };
        assert_eq!(s.option("sample_rate").unwrap().as_float(), Some(0.01));
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
    }

    #[test]
    fn parameters_rejected_outside_literal_positions() {
        // Option values are not parameterizable.
        assert!(parse("SELECT SUM(m) FROM T OPTION (SAMPLE_RATE = ?)").is_err());
        // Nor are table or column names.
        assert!(parse("SELECT SUM(m) FROM ? WHERE a = 1").is_err());
    }

    #[test]
    fn using_bounds_accept_parameters() {
        // WHERE precedes USING, so constraint placeholders take the lower
        // indices and the window takes the next two.
        let stmt = parse("FORECAST SUM(m) FROM T WHERE age <= ? USING (?, ?)").unwrap();
        let Statement::Forecast(f) = &stmt else { panic!() };
        assert_eq!(f.constraint.num_params(), 1);
        assert_eq!(
            f.using,
            UsingClause::Window { start: TimeBound::Param(1), end: TimeBound::Param(2) }
        );
        assert_eq!(f.num_params(), 3);
        // Display round-trips `?` bounds to the same indices.
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);
        // Mixed literal/parameter bounds parse too.
        let stmt = parse("FORECAST SUM(m) FROM T USING (20200101, ?)").unwrap();
        let Statement::Forecast(f) = &stmt else { panic!() };
        assert_eq!(
            f.using,
            UsingClause::Window { start: TimeBound::Lit(20200101), end: TimeBound::Param(0) }
        );
        assert_eq!(f.num_params(), 1);
    }

    #[test]
    fn parses_using_last_days() {
        let stmt = parse("FORECAST SUM(m) FROM T USING LAST 7 DAYS").unwrap();
        let Statement::Forecast(f) = &stmt else { panic!() };
        assert_eq!(f.using, UsingClause::LastDays(TimeBound::Lit(7)));
        assert_eq!(f.num_params(), 0);
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);

        // Parameterized day count numbers with the statement's other params.
        let stmt = parse("FORECAST SUM(m) FROM T WHERE age <= ? USING LAST ? DAYS").unwrap();
        let Statement::Forecast(f) = &stmt else { panic!() };
        assert_eq!(f.using, UsingClause::LastDays(TimeBound::Param(1)));
        assert_eq!(f.num_params(), 2);
        assert_eq!(parse(&stmt.to_string()).unwrap(), stmt);

        // Case-insensitive keywords.
        assert!(parse("FORECAST SUM(m) FROM T using last 3 days").is_ok());

        // A zero or negative literal day count is rejected at parse time.
        let e = parse("FORECAST SUM(m) FROM T USING LAST 0 DAYS").unwrap_err();
        assert!(e.message.contains("positive day count"), "{}", e.message);
        // Missing DAYS and a non-integer count are syntax errors.
        assert!(parse("FORECAST SUM(m) FROM T USING LAST 7").is_err());
        let e = parse("FORECAST SUM(m) FROM T USING LAST x DAYS").unwrap_err();
        assert!(e.message.contains("day count"), "{}", e.message);
    }

    #[test]
    fn statement_display_round_trips() {
        let text = "FORECAST SUM(Impression) FROM T WHERE (Age <= 30) AND (Gender = 'F') \
                    USING (20200101, 20200331) OPTION (MODEL = 'arima', FORE_PERIOD = 7)";
        let stmt = parse(text).unwrap();
        let rendered = stmt.to_string();
        let reparsed = parse(&rendered).unwrap();
        assert_eq!(stmt, reparsed, "display must re-parse to the same AST");
    }
}
