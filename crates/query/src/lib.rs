//! # flashp-query
//!
//! The SQL-like task language of FlashP (Eq. 1 / Fig. 2 of the paper):
//!
//! ```sql
//! FORECAST SUM(Impression) FROM T
//! WHERE Age <= 30 AND Gender = 'F'
//! USING (20200101, 20200331)
//! OPTION (MODEL = 'arima', FORE_PERIOD = 7)
//! ```
//!
//! plus the per-timestamp aggregation queries it rewrites into:
//!
//! ```sql
//! SELECT SUM(Impression) FROM T
//! WHERE Age <= 30 AND Gender = 'F' AND t = 20200101
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] (recursive descent over [`ast`]) →
//! [`binder`] (names → schema indices, string literals → dictionary codes,
//! `t` constraints → time ranges). Errors carry byte offsets into the
//! query text.

pub mod ast;
pub mod binder;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{
    Expr, ForecastStmt, Literal, OptionValue, SelectStmt, Statement, TimeBound, UsingClause,
    TIME_COLUMN,
};
pub use binder::{
    bind_expr, bind_select_constraint, split_select_constraint, substitute_params, BoundSelect,
    SplitSelect, TimeEndpoint, TimeWindow,
};
pub use error::ParseError;
pub use parser::parse;
