//! Tokenizer for the FORECAST/SELECT language.

use crate::error::ParseError;

/// A lexical token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub position: usize,
}

/// Token kinds. Keywords are recognized case-insensitively at parse time
/// from `Ident` tokens, so measure/dimension names stay case-sensitive.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Star,
    /// `?` — a positional parameter placeholder.
    Question,
    Eof,
}

impl TokenKind {
    /// Human-readable description for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Float(v) => format!("number {v}"),
            TokenKind::Str(s) => format!("string '{s}'"),
            TokenKind::LParen => "'('".to_string(),
            TokenKind::RParen => "')'".to_string(),
            TokenKind::Comma => "','".to_string(),
            TokenKind::Eq => "'='".to_string(),
            TokenKind::Ne => "'<>'".to_string(),
            TokenKind::Lt => "'<'".to_string(),
            TokenKind::Le => "'<='".to_string(),
            TokenKind::Gt => "'>'".to_string(),
            TokenKind::Ge => "'>='".to_string(),
            TokenKind::Star => "'*'".to_string(),
            TokenKind::Question => "'?'".to_string(),
            TokenKind::Eof => "end of input".to_string(),
        }
    }
}

/// Tokenize a query string. Strings may be single- or double-quoted with
/// `''` / `""` escapes.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, position: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, position: start });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, position: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, position: start });
                i += 1;
            }
            '?' => {
                tokens.push(Token { kind: TokenKind::Question, position: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, position: start });
                i += 1;
            }
            '!' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { kind: TokenKind::Ne, position: start });
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '=' after '!'", start));
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { kind: TokenKind::Le, position: start });
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token { kind: TokenKind::Ne, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, position: start });
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token { kind: TokenKind::Ge, position: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, position: start });
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let mut s = String::new();
                i += 1;
                loop {
                    if i >= bytes.len() {
                        return Err(ParseError::new("unterminated string literal", start));
                    }
                    if bytes[i] == quote {
                        // Doubled quote = escaped quote.
                        if i + 1 < bytes.len() && bytes[i + 1] == quote {
                            s.push(quote as char);
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    s.push(bytes[i] as char);
                    i += 1;
                }
                tokens.push(Token { kind: TokenKind::Str(s), position: start });
            }
            '-' | '0'..='9' => {
                let mut j = i;
                if bytes[j] == b'-' {
                    j += 1;
                    if j >= bytes.len() || !bytes[j].is_ascii_digit() {
                        return Err(ParseError::new("expected digits after '-'", start));
                    }
                }
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let mut is_float = false;
                if j < bytes.len() && bytes[j] == b'.' {
                    is_float = true;
                    j += 1;
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                if j < bytes.len() && (bytes[j] == b'e' || bytes[j] == b'E') {
                    is_float = true;
                    j += 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                }
                let text = &input[i..j];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse::<f64>()
                            .map_err(|_| ParseError::new(format!("bad number '{text}'"), start))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse::<i64>()
                            .map_err(|_| ParseError::new(format!("bad integer '{text}'"), start))?,
                    )
                };
                tokens.push(Token { kind, position: start });
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len() {
                    let b = bytes[j] as char;
                    if b.is_ascii_alphanumeric() || b == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(input[i..j].to_string()),
                    position: start,
                });
                i = j;
            }
            other => {
                return Err(ParseError::new(format!("unexpected character '{other}'"), start));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, position: input.len() });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn figure2_query_tokenizes() {
        let toks = kinds("FORECAST SUM(Impression) FROM T WHERE Age <= 30 AND Gender = 'F'");
        assert!(toks.contains(&TokenKind::Ident("FORECAST".to_string())));
        assert!(toks.contains(&TokenKind::Le));
        assert!(toks.contains(&TokenKind::Int(30)));
        assert!(toks.contains(&TokenKind::Str("F".to_string())));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("-7")[0], TokenKind::Int(-7));
        assert_eq!(kinds("0.001")[0], TokenKind::Float(0.001));
        assert_eq!(kinds("1e-3")[0], TokenKind::Float(0.001));
        assert_eq!(kinds("20200101")[0], TokenKind::Int(20200101));
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("<> != < <= > >= =")[..7].to_vec(),
            vec![
                TokenKind::Ne,
                TokenKind::Ne,
                TokenKind::Lt,
                TokenKind::Le,
                TokenKind::Gt,
                TokenKind::Ge,
                TokenKind::Eq,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".to_string()));
        assert_eq!(kinds("\"NY\"")[0], TokenKind::Str("NY".to_string()));
    }

    #[test]
    fn errors_carry_positions() {
        let e = tokenize("Age @ 3").unwrap_err();
        assert_eq!(e.position, 4);
        let e = tokenize("x = 'oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
        assert!(tokenize("! 3").is_err());
        assert!(tokenize("- x").is_err());
    }

    #[test]
    fn question_marks_tokenize() {
        assert_eq!(
            kinds("age <= ?"),
            vec![
                TokenKind::Ident("age".to_string()),
                TokenKind::Le,
                TokenKind::Question,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn identifiers_keep_case() {
        assert_eq!(kinds("ViewTime")[0], TokenKind::Ident("ViewTime".to_string()));
        assert_eq!(kinds("_tag2")[0], TokenKind::Ident("_tag2".to_string()));
    }
}
