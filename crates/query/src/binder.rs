//! Binding: AST expressions → storage predicates, with time-range
//! extraction for SELECT statements.

use crate::ast::{Expr, Literal, SelectStmt, TimeBound, TIME_COLUMN};
use crate::error::ParseError;
use flashp_storage::{CmpOp, Predicate, Timestamp, Value};
use std::fmt;

fn literal_to_value(lit: &Literal) -> Result<Value, ParseError> {
    match lit {
        Literal::Int(v) => Ok(Value::Int(*v)),
        Literal::Float(v) => Ok(Value::Float(*v)),
        Literal::Str(s) => Ok(Value::Str(s.clone())),
        Literal::Param(i) => Err(ParseError::new(
            format!("unbound parameter ?{i}: substitute parameters before binding"),
            0,
        )),
    }
}

/// Replace every `?` placeholder with the corresponding literal from
/// `params` (placeholder `i` takes `params[i]`). Errors when a
/// placeholder index is out of range or a parameter value is itself a
/// placeholder. Extra parameters are ignored here; callers that know the
/// statement's [`Expr::num_params`] should length-check first for a
/// clearer diagnostic.
pub fn substitute_params(expr: &Expr, params: &[Literal]) -> Result<Expr, ParseError> {
    let subst = |lit: &Literal| -> Result<Literal, ParseError> {
        match lit {
            Literal::Param(i) => match params.get(*i) {
                Some(Literal::Param(_)) => Err(ParseError::new(
                    "parameter values may not themselves be placeholders".to_string(),
                    0,
                )),
                Some(v) => Ok(v.clone()),
                None => Err(ParseError::new(
                    format!("parameter ?{i} has no value ({} supplied)", params.len()),
                    0,
                )),
            },
            concrete => Ok(concrete.clone()),
        }
    };
    Ok(match expr {
        Expr::True => Expr::True,
        Expr::Cmp { column, op, value } => {
            Expr::Cmp { column: column.clone(), op: *op, value: subst(value)? }
        }
        Expr::In { column, values } => Expr::In {
            column: column.clone(),
            values: values.iter().map(subst).collect::<Result<Vec<_>, _>>()?,
        },
        Expr::Between { column, lo, hi } => {
            Expr::Between { column: column.clone(), lo: subst(lo)?, hi: subst(hi)? }
        }
        Expr::And(children) => Expr::And(
            children.iter().map(|c| substitute_params(c, params)).collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Or(children) => Expr::Or(
            children.iter().map(|c| substitute_params(c, params)).collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Not(child) => Expr::Not(Box::new(substitute_params(child, params)?)),
    })
}

/// Convert a (time-free) AST expression into an unbound storage
/// [`Predicate`]. `BETWEEN` desugars to `>= AND <=`.
pub fn bind_expr(expr: &Expr) -> Result<Predicate, ParseError> {
    match expr {
        Expr::True => Ok(Predicate::True),
        Expr::Cmp { column, op, value } => {
            if column == TIME_COLUMN {
                return Err(ParseError::new(
                    "time constraints must be extracted before binding".to_string(),
                    0,
                ));
            }
            Ok(Predicate::Cmp { column: column.clone(), op: *op, value: literal_to_value(value)? })
        }
        Expr::In { column, values } => Ok(Predicate::In {
            column: column.clone(),
            values: values.iter().map(literal_to_value).collect::<Result<Vec<_>, _>>()?,
        }),
        Expr::Between { column, lo, hi } => Ok(Predicate::And(vec![
            Predicate::Cmp { column: column.clone(), op: CmpOp::Ge, value: literal_to_value(lo)? },
            Predicate::Cmp { column: column.clone(), op: CmpOp::Le, value: literal_to_value(hi)? },
        ])),
        Expr::And(children) => {
            Ok(Predicate::And(children.iter().map(bind_expr).collect::<Result<Vec<_>, _>>()?))
        }
        Expr::Or(children) => {
            Ok(Predicate::Or(children.iter().map(bind_expr).collect::<Result<Vec<_>, _>>()?))
        }
        Expr::Not(child) => Ok(Predicate::Not(Box::new(bind_expr(child)?))),
    }
}

/// One contribution to a time-window endpoint: a literal timestamp
/// (validated when the constraint was split), a `?` placeholder plus a
/// day offset (`t > ?` contributes a lower bound of `? + 1` day), or a
/// table-relative endpoint from `USING LAST n DAYS` that re-resolves
/// against the table's newest timestamp at every binding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeEndpoint {
    /// A literal endpoint, already parsed and calendar-validated.
    Lit(Timestamp),
    /// Placeholder `index`, shifted by `offset` days once bound.
    Param {
        /// The `?` placeholder index (statement-global numbering).
        index: usize,
        /// Days added after the parameter is parsed (±1 for strict
        /// inequalities, 0 otherwise).
        offset: i64,
    },
    /// The table's newest timestamp at bind time (the upper endpoint of
    /// `USING LAST n DAYS`).
    Latest,
    /// `latest - (n - 1)` days: the start of a trailing `n`-day window.
    /// The day count is a positive integer literal or a `?` placeholder.
    LastDays(TimeBound),
}

impl TimeEndpoint {
    /// The endpoint's timestamp under `params` (placeholder `i` takes
    /// `params[i]`, which must be a valid `YYYYMMDD` integer). Relative
    /// endpoints resolve against `latest`, the table's newest timestamp;
    /// they error when no table context is available (`latest = None`).
    pub fn resolve(
        &self,
        params: &[Literal],
        latest: Option<Timestamp>,
    ) -> Result<Timestamp, ParseError> {
        match self {
            TimeEndpoint::Lit(t) => Ok(*t),
            TimeEndpoint::Param { index, offset } => {
                let lit = params.get(*index).ok_or_else(|| {
                    ParseError::new(
                        format!("time parameter ?{index} has no value ({} supplied)", params.len()),
                        0,
                    )
                })?;
                let Literal::Int(v) = lit else {
                    return Err(ParseError::new(
                        format!("time parameter ?{index} must be a YYYYMMDD integer"),
                        0,
                    ));
                };
                let t = Timestamp::from_yyyymmdd(*v)
                    .map_err(|e| ParseError::new(format!("time parameter ?{index}: {e}"), 0))?;
                Ok(t + *offset)
            }
            TimeEndpoint::Latest => require_latest(latest),
            TimeEndpoint::LastDays(d) => {
                let latest = require_latest(latest)?;
                let days = match d {
                    TimeBound::Lit(n) => *n,
                    TimeBound::Param(i) => {
                        let lit = params.get(*i).ok_or_else(|| {
                            ParseError::new(
                                format!(
                                    "day count parameter ?{i} has no value ({} supplied)",
                                    params.len()
                                ),
                                0,
                            )
                        })?;
                        let Literal::Int(n) = lit else {
                            return Err(ParseError::new(
                                format!("day count parameter ?{i} must be a positive integer"),
                                0,
                            ));
                        };
                        if *n < 1 {
                            return Err(ParseError::new(
                                format!("day count parameter ?{i} must be positive, got {n}"),
                                0,
                            ));
                        }
                        *n
                    }
                };
                // A window longer than any real table is just "everything";
                // cap the count so the subtraction cannot overflow.
                Ok(latest + (1 - days.min(1 << 40)))
            }
        }
    }

    /// Does this endpoint depend on a `?` parameter?
    pub fn is_param(&self) -> bool {
        matches!(self, TimeEndpoint::Param { .. } | TimeEndpoint::LastDays(TimeBound::Param(_)))
    }

    /// Does this endpoint depend on the table's newest timestamp
    /// (`USING LAST n DAYS`)? Relative endpoints must re-resolve per
    /// binding even when the day count is a literal — a publish moves
    /// them.
    pub fn is_relative(&self) -> bool {
        matches!(self, TimeEndpoint::Latest | TimeEndpoint::LastDays(_))
    }
}

fn require_latest(latest: Option<Timestamp>) -> Result<Timestamp, ParseError> {
    latest.ok_or_else(|| {
        ParseError::new(
            "USING LAST … DAYS requires a table with at least one row to anchor 'latest'"
                .to_string(),
            0,
        )
    })
}

impl fmt::Display for TimeEndpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeEndpoint::Lit(t) => write!(f, "{t}"),
            TimeEndpoint::Param { index, offset: 0 } => write!(f, "?{index}"),
            TimeEndpoint::Param { index, offset } => write!(f, "?{index}{offset:+}"),
            TimeEndpoint::Latest => write!(f, "latest"),
            TimeEndpoint::LastDays(TimeBound::Lit(n)) => write!(f, "latest-{}d", n - 1),
            TimeEndpoint::LastDays(TimeBound::Param(i)) => write!(f, "latest-(?{i}-1)d"),
        }
    }
}

/// A conjunction of time bounds whose endpoints may depend on `?`
/// parameters: the effective inclusive range is
/// `[max(lower), min(upper)]`, with a missing side left open. Static
/// windows (no parameters) collapse to a concrete range at plan time;
/// parameterized ones resolve per binding.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeWindow {
    /// Lower-bound contributions (the effective start is their max).
    pub lower: Vec<TimeEndpoint>,
    /// Upper-bound contributions (the effective end is their min).
    pub upper: Vec<TimeEndpoint>,
}

impl TimeWindow {
    /// Does any endpoint depend on a `?` parameter?
    pub fn has_params(&self) -> bool {
        self.lower.iter().chain(&self.upper).any(TimeEndpoint::is_param)
    }

    /// Does any endpoint depend on the table's newest timestamp
    /// (`USING LAST n DAYS`)?
    pub fn is_relative(&self) -> bool {
        self.lower.iter().chain(&self.upper).any(TimeEndpoint::is_relative)
    }

    /// The trailing day count when this window is exactly the
    /// `USING LAST n DAYS` shape (`LastDays(d)..Latest`).
    pub fn as_last_days(&self) -> Option<TimeBound> {
        match (self.lower.as_slice(), self.upper.as_slice()) {
            ([TimeEndpoint::LastDays(d)], [TimeEndpoint::Latest]) => Some(*d),
            _ => None,
        }
    }

    /// True when no time condition was present at all.
    pub fn is_unconstrained(&self) -> bool {
        self.lower.is_empty() && self.upper.is_empty()
    }

    /// Resolve both sides under `params`: `(max(lower), min(upper))`,
    /// `None` for a side with no contributions. `latest` anchors relative
    /// (`USING LAST`) endpoints — pass the table's newest timestamp.
    pub fn resolve(
        &self,
        params: &[Literal],
        latest: Option<Timestamp>,
    ) -> Result<(Option<Timestamp>, Option<Timestamp>), ParseError> {
        let mut lo: Option<Timestamp> = None;
        for e in &self.lower {
            let t = e.resolve(params, latest)?;
            lo = Some(lo.map_or(t, |x| x.max(t)));
        }
        let mut hi: Option<Timestamp> = None;
        for e in &self.upper {
            let t = e.resolve(params, latest)?;
            hi = Some(hi.map_or(t, |x| x.min(t)));
        }
        Ok((lo, hi))
    }

    /// Resolve to the planner's inclusive-range form: `None` when fully
    /// unconstrained, half-open sides widened to sentinel bounds (clamped
    /// to the table later).
    pub fn resolve_range(
        &self,
        params: &[Literal],
        latest: Option<Timestamp>,
    ) -> Result<Option<(Timestamp, Timestamp)>, ParseError> {
        Ok(match self.resolve(params, latest)? {
            (None, None) => None,
            (Some(a), Some(b)) => Some((a, b)),
            (Some(a), None) => Some((a, Timestamp(i64::MAX / 2))),
            (None, Some(b)) => Some((Timestamp(i64::MIN / 2), b)),
        })
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The relative shape renders as written (`USING LAST n DAYS`), so
        // EXPLAIN and error messages show the user's form.
        if let Some(d) = self.as_last_days() {
            return match d {
                TimeBound::Lit(n) => write!(f, "last {n} days"),
                TimeBound::Param(i) => write!(f, "last ?{i} days"),
            };
        }
        fn side(f: &mut fmt::Formatter<'_>, es: &[TimeEndpoint], fold: &str) -> fmt::Result {
            match es {
                [] => write!(f, "*"),
                [one] => write!(f, "{one}"),
                many => {
                    write!(f, "{fold}(")?;
                    for (i, e) in many.iter().enumerate() {
                        if i > 0 {
                            write!(f, ",")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")
                }
            }
        }
        side(f, &self.lower, "max")?;
        write!(f, "..")?;
        side(f, &self.upper, "min")
    }
}

/// A SELECT constraint split into its dimension part and time range.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSelect {
    /// Dimension-only predicate (unbound; compile against a table).
    pub predicate: Predicate,
    /// Inclusive time range extracted from `t` conditions, if any.
    pub time_range: Option<(Timestamp, Timestamp)>,
}

/// A SELECT constraint split like [`BoundSelect`], but with the dimension
/// part still in AST form and the time window possibly parameterized —
/// `?` placeholders intact on both — so a prepared statement can rebind
/// either per execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSelect {
    /// Dimension-only constraint (may contain `?` placeholders).
    pub dims: Expr,
    /// Time window extracted from `t` conditions (may contain `?`
    /// placeholders; empty when the statement has no time condition).
    pub window: TimeWindow,
}

/// [`split_select_constraint`] followed by [`bind_expr`] on the dimension
/// part: the one-shot form for statements without parameters. Rejects `?`
/// on `t` — a parameterized window needs the prepared-statement path,
/// which resolves it per binding.
pub fn bind_select_constraint(stmt: &SelectStmt) -> Result<BoundSelect, ParseError> {
    let split = split_select_constraint(stmt)?;
    if split.window.has_params() {
        return Err(ParseError::new(
            format!("'?' parameters on '{TIME_COLUMN}' require a prepared statement"),
            0,
        ));
    }
    Ok(BoundSelect {
        predicate: bind_expr(&split.dims)?,
        time_range: split.window.resolve_range(&[], None)?,
    })
}

/// Split a SELECT statement's constraint: top-level conjuncts on `t`
/// become the time window; the rest stays as a dimension-only expression.
/// Supported time forms: `t = v`, `t >= v`, `t > v`, `t <= v`, `t < v`,
/// `t BETWEEN a AND b`, where each value is a `YYYYMMDD` literal
/// (validated here) or a `?` placeholder (validated when bound). Time
/// conditions under OR/NOT are rejected — they would not describe a
/// contiguous scan range.
pub fn split_select_constraint(stmt: &SelectStmt) -> Result<SplitSelect, ParseError> {
    let conjuncts: Vec<&Expr> = match &stmt.constraint {
        Expr::And(children) => children.iter().collect(),
        other => vec![other],
    };
    let mut window = TimeWindow::default();
    let mut dims: Vec<Expr> = Vec::new();

    let endpoint = |lit: &Literal, offset: i64| -> Result<TimeEndpoint, ParseError> {
        match lit {
            Literal::Int(v) => {
                let t = Timestamp::from_yyyymmdd(*v)
                    .map_err(|e| ParseError::new(format!("bad time literal: {e}"), 0))?;
                Ok(TimeEndpoint::Lit(t + offset))
            }
            Literal::Param(i) => Ok(TimeEndpoint::Param { index: *i, offset }),
            Literal::Str(_) | Literal::Float(_) => {
                Err(ParseError::new("time literals must be YYYYMMDD integers".to_string(), 0))
            }
        }
    };

    for c in conjuncts {
        match c {
            Expr::Cmp { column, op, value } if column == TIME_COLUMN => match op {
                CmpOp::Eq => {
                    let e = endpoint(value, 0)?;
                    window.lower.push(e);
                    window.upper.push(e);
                }
                CmpOp::Ge => window.lower.push(endpoint(value, 0)?),
                CmpOp::Gt => window.lower.push(endpoint(value, 1)?),
                CmpOp::Le => window.upper.push(endpoint(value, 0)?),
                CmpOp::Lt => window.upper.push(endpoint(value, -1)?),
                CmpOp::Ne => {
                    return Err(ParseError::new(
                        "t <> … is not a contiguous time range".to_string(),
                        0,
                    ))
                }
            },
            Expr::Between { column, lo: l, hi: h } if column == TIME_COLUMN => {
                window.lower.push(endpoint(l, 0)?);
                window.upper.push(endpoint(h, 0)?);
            }
            other if other.references(TIME_COLUMN) => {
                return Err(ParseError::new(
                    "time conditions must be top-level conjuncts (no OR/NOT over t)".to_string(),
                    0,
                ));
            }
            other => dims.push(other.clone()),
        }
    }

    let dims = match dims.len() {
        0 => Expr::True,
        1 => dims.pop().expect("len checked"),
        _ => Expr::And(dims),
    };
    Ok(SplitSelect { dims, window })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;

    fn select(q: &str) -> SelectStmt {
        match parse(q).unwrap() {
            Statement::Select(s) => s,
            _ => panic!("expected SELECT"),
        }
    }

    #[test]
    fn splits_time_equality() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= 30 AND t = 20200101");
        let b = bind_select_constraint(&s).unwrap();
        let t = Timestamp::from_yyyymmdd(20200101).unwrap();
        assert_eq!(b.time_range, Some((t, t)));
        assert_eq!(b.predicate.to_string(), "Age <= 30");
    }

    #[test]
    fn splits_time_range() {
        let s = select("SELECT SUM(m) FROM T WHERE t >= 20200101 AND t <= 20200107");
        let b = bind_select_constraint(&s).unwrap();
        let (lo, hi) = b.time_range.unwrap();
        assert_eq!(hi - lo, 6);
        assert_eq!(b.predicate, Predicate::True);
    }

    #[test]
    fn between_on_time() {
        let s = select("SELECT SUM(m) FROM T WHERE t BETWEEN 20200101 AND 20200103");
        let b = bind_select_constraint(&s).unwrap();
        let (lo, hi) = b.time_range.unwrap();
        assert_eq!(hi - lo, 2);
    }

    #[test]
    fn strict_inequalities_shift_bounds() {
        let s = select("SELECT SUM(m) FROM T WHERE t > 20200101 AND t < 20200105");
        let b = bind_select_constraint(&s).unwrap();
        let (lo, hi) = b.time_range.unwrap();
        assert_eq!(lo.to_yyyymmdd(), 20200102);
        assert_eq!(hi.to_yyyymmdd(), 20200104);
    }

    #[test]
    fn no_time_condition_means_none() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= 30");
        let b = bind_select_constraint(&s).unwrap();
        assert!(b.time_range.is_none());
    }

    #[test]
    fn time_under_or_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= 30 OR t = 20200101");
        assert!(bind_select_constraint(&s).is_err());
        let s = select("SELECT SUM(m) FROM T WHERE NOT t = 20200101");
        assert!(bind_select_constraint(&s).is_err());
        let s = select("SELECT SUM(m) FROM T WHERE t <> 20200101");
        assert!(bind_select_constraint(&s).is_err());
    }

    #[test]
    fn bad_date_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE t = 20201350");
        assert!(bind_select_constraint(&s).is_err());
    }

    #[test]
    fn between_desugars() {
        let p = bind_expr(&Expr::Between {
            column: "Age".into(),
            lo: Literal::Int(20),
            hi: Literal::Int(30),
        })
        .unwrap();
        assert_eq!(p.to_string(), "(Age >= 20) AND (Age <= 30)");
    }

    #[test]
    fn unbound_parameters_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= ?");
        let e = bind_expr(&s.constraint).unwrap_err();
        assert!(e.message.contains("unbound parameter"));
    }

    #[test]
    fn substitution_matches_a_fresh_parse() {
        let template = select("SELECT SUM(m) FROM T WHERE Age <= ? AND Location IN (?, ?)");
        let bound = substitute_params(
            &template.constraint,
            &[Literal::Int(30), Literal::Str("NY".into()), Literal::Str("WA".into())],
        )
        .unwrap();
        let fresh = select("SELECT SUM(m) FROM T WHERE Age <= 30 AND Location IN ('NY', 'WA')");
        assert_eq!(bound, fresh.constraint);
        // Same predicate after binding, too.
        assert_eq!(
            bind_expr(&bound).unwrap().to_string(),
            bind_expr(&fresh.constraint).unwrap().to_string()
        );
    }

    #[test]
    fn substitution_errors() {
        let template = select("SELECT SUM(m) FROM T WHERE Age <= ?");
        // Missing value.
        assert!(substitute_params(&template.constraint, &[]).is_err());
        // A placeholder as a value.
        assert!(substitute_params(&template.constraint, &[Literal::Param(0)]).is_err());
        // Extra values are tolerated by substitution itself.
        let ok = substitute_params(&template.constraint, &[Literal::Int(1), Literal::Int(2)]);
        assert!(ok.is_ok());
    }

    #[test]
    fn time_parameters_need_the_prepared_path() {
        // One-shot binding still rejects `?` on t…
        let s = select("SELECT SUM(m) FROM T WHERE t = ?");
        assert!(bind_select_constraint(&s).unwrap_err().message.contains("prepared"));
        let s = select("SELECT SUM(m) FROM T WHERE t BETWEEN ? AND 20200131");
        assert!(bind_select_constraint(&s).is_err());
        // …but splitting keeps the parameterized window for later binding.
        let split = split_select_constraint(&s).unwrap();
        assert!(split.window.has_params());
        assert_eq!(split.window.to_string(), "?0..20200131");
    }

    #[test]
    fn parameterized_window_resolves_like_literals() {
        // `age <= ? AND t > ? AND t < ?` interleaves dim and time params.
        let s = select("SELECT SUM(m) FROM T WHERE age <= ? AND t > ? AND t < ?");
        let split = split_select_constraint(&s).unwrap();
        assert_eq!(split.dims.to_string(), "age <= ?");
        assert_eq!(split.window.to_string(), "?1+1..?2-1");
        let params = [Literal::Int(30), Literal::Int(20200101), Literal::Int(20200105)];
        let (lo, hi) = split.window.resolve(&params, None).unwrap();
        assert_eq!(lo.unwrap().to_yyyymmdd(), 20200102, "strict > shifts up a day");
        assert_eq!(hi.unwrap().to_yyyymmdd(), 20200104, "strict < shifts down a day");
        // The same statement with literals resolves identically.
        let lit = select("SELECT SUM(m) FROM T WHERE age <= 30 AND t > 20200101 AND t < 20200105");
        let lit_split = split_select_constraint(&lit).unwrap();
        assert_eq!(lit_split.window.resolve(&[], None).unwrap(), (lo, hi));
    }

    #[test]
    fn window_resolution_errors_are_typed() {
        let s = select("SELECT SUM(m) FROM T WHERE t >= ?");
        let w = split_select_constraint(&s).unwrap().window;
        // Missing value.
        assert!(w.resolve(&[], None).unwrap_err().message.contains("no value"));
        // Wrong type.
        let e = w.resolve(&[Literal::Str("x".into())], None).unwrap_err();
        assert!(e.message.contains("YYYYMMDD"));
        // Impossible calendar date surfaces the parameter index.
        let e = w.resolve(&[Literal::Int(20200230)], None).unwrap_err();
        assert!(e.message.contains("?0"), "error names the parameter: {e}");
        // Valid date resolves; the half-open side widens to a sentinel.
        let range = w.resolve_range(&[Literal::Int(20200301)], None).unwrap().unwrap();
        assert_eq!(range.0.to_yyyymmdd(), 20200301);
        assert!(range.1 > range.0);
    }

    #[test]
    fn relative_window_resolves_against_latest() {
        let latest = Timestamp::from_yyyymmdd(20200209).unwrap();
        let w = TimeWindow {
            lower: vec![TimeEndpoint::LastDays(TimeBound::Lit(10))],
            upper: vec![TimeEndpoint::Latest],
        };
        assert!(w.is_relative());
        assert!(!w.has_params());
        assert_eq!(w.to_string(), "last 10 days");
        let (lo, hi) = w.resolve(&[], Some(latest)).unwrap();
        assert_eq!(lo.unwrap().to_yyyymmdd(), 20200131, "10 days ending at latest");
        assert_eq!(hi.unwrap(), latest);
        // Without a table anchor, resolution is a typed error.
        let e = w.resolve(&[], None).unwrap_err();
        assert!(e.message.contains("LAST"), "{}", e.message);

        // Parameterized day count: value checked at bind time.
        let wp = TimeWindow {
            lower: vec![TimeEndpoint::LastDays(TimeBound::Param(0))],
            upper: vec![TimeEndpoint::Latest],
        };
        assert!(wp.has_params() && wp.is_relative());
        assert_eq!(wp.to_string(), "last ?0 days");
        let (lo, _) = wp.resolve(&[Literal::Int(1)], Some(latest)).unwrap();
        assert_eq!(lo.unwrap(), latest, "LAST 1 DAYS is just the newest day");
        let e = wp.resolve(&[Literal::Int(0)], Some(latest)).unwrap_err();
        assert!(e.message.contains("?0") && e.message.contains("positive"), "{}", e.message);
        let e = wp.resolve(&[Literal::Str("x".into())], Some(latest)).unwrap_err();
        assert!(e.message.contains("positive integer"), "{}", e.message);
        // A huge day count saturates instead of overflowing.
        let (lo, hi) = wp.resolve(&[Literal::Int(i64::MAX)], Some(latest)).unwrap();
        assert!(lo.unwrap() < hi.unwrap());
    }

    #[test]
    fn float_literals_bind_to_float_values() {
        let s = select("SELECT SUM(m) FROM T WHERE score < 0.5 AND t = 20200101");
        let b = bind_select_constraint(&s).unwrap();
        assert_eq!(
            b.predicate,
            Predicate::Cmp { column: "score".into(), op: CmpOp::Lt, value: Value::Float(0.5) }
        );
        // Floats make no sense as YYYYMMDD timestamps.
        let s = select("SELECT SUM(m) FROM T WHERE t >= 0.5");
        assert!(bind_select_constraint(&s).unwrap_err().message.contains("YYYYMMDD"));
    }

    #[test]
    fn nested_structures_bind() {
        let s = select(
            "SELECT SUM(m) FROM T WHERE (Age <= 30 OR Age >= 60) AND Location IN ('NY','WA')",
        );
        let b = bind_select_constraint(&s).unwrap();
        assert!(b.predicate.to_string().contains("OR"));
        assert!(b.predicate.to_string().contains("IN"));
    }
}
