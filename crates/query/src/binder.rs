//! Binding: AST expressions → storage predicates, with time-range
//! extraction for SELECT statements.

use crate::ast::{Expr, Literal, SelectStmt, TIME_COLUMN};
use crate::error::ParseError;
use flashp_storage::{CmpOp, Predicate, Timestamp, Value};

fn literal_to_value(lit: &Literal) -> Result<Value, ParseError> {
    match lit {
        Literal::Int(v) => Ok(Value::Int(*v)),
        Literal::Str(s) => Ok(Value::Str(s.clone())),
        Literal::Param(i) => Err(ParseError::new(
            format!("unbound parameter ?{i}: substitute parameters before binding"),
            0,
        )),
    }
}

/// Replace every `?` placeholder with the corresponding literal from
/// `params` (placeholder `i` takes `params[i]`). Errors when a
/// placeholder index is out of range or a parameter value is itself a
/// placeholder. Extra parameters are ignored here; callers that know the
/// statement's [`Expr::num_params`] should length-check first for a
/// clearer diagnostic.
pub fn substitute_params(expr: &Expr, params: &[Literal]) -> Result<Expr, ParseError> {
    let subst = |lit: &Literal| -> Result<Literal, ParseError> {
        match lit {
            Literal::Param(i) => match params.get(*i) {
                Some(Literal::Param(_)) => Err(ParseError::new(
                    "parameter values may not themselves be placeholders".to_string(),
                    0,
                )),
                Some(v) => Ok(v.clone()),
                None => Err(ParseError::new(
                    format!("parameter ?{i} has no value ({} supplied)", params.len()),
                    0,
                )),
            },
            concrete => Ok(concrete.clone()),
        }
    };
    Ok(match expr {
        Expr::True => Expr::True,
        Expr::Cmp { column, op, value } => {
            Expr::Cmp { column: column.clone(), op: *op, value: subst(value)? }
        }
        Expr::In { column, values } => Expr::In {
            column: column.clone(),
            values: values.iter().map(subst).collect::<Result<Vec<_>, _>>()?,
        },
        Expr::Between { column, lo, hi } => {
            Expr::Between { column: column.clone(), lo: subst(lo)?, hi: subst(hi)? }
        }
        Expr::And(children) => Expr::And(
            children.iter().map(|c| substitute_params(c, params)).collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Or(children) => Expr::Or(
            children.iter().map(|c| substitute_params(c, params)).collect::<Result<Vec<_>, _>>()?,
        ),
        Expr::Not(child) => Expr::Not(Box::new(substitute_params(child, params)?)),
    })
}

/// Convert a (time-free) AST expression into an unbound storage
/// [`Predicate`]. `BETWEEN` desugars to `>= AND <=`.
pub fn bind_expr(expr: &Expr) -> Result<Predicate, ParseError> {
    match expr {
        Expr::True => Ok(Predicate::True),
        Expr::Cmp { column, op, value } => {
            if column == TIME_COLUMN {
                return Err(ParseError::new(
                    "time constraints must be extracted before binding".to_string(),
                    0,
                ));
            }
            Ok(Predicate::Cmp { column: column.clone(), op: *op, value: literal_to_value(value)? })
        }
        Expr::In { column, values } => Ok(Predicate::In {
            column: column.clone(),
            values: values.iter().map(literal_to_value).collect::<Result<Vec<_>, _>>()?,
        }),
        Expr::Between { column, lo, hi } => Ok(Predicate::And(vec![
            Predicate::Cmp { column: column.clone(), op: CmpOp::Ge, value: literal_to_value(lo)? },
            Predicate::Cmp { column: column.clone(), op: CmpOp::Le, value: literal_to_value(hi)? },
        ])),
        Expr::And(children) => {
            Ok(Predicate::And(children.iter().map(bind_expr).collect::<Result<Vec<_>, _>>()?))
        }
        Expr::Or(children) => {
            Ok(Predicate::Or(children.iter().map(bind_expr).collect::<Result<Vec<_>, _>>()?))
        }
        Expr::Not(child) => Ok(Predicate::Not(Box::new(bind_expr(child)?))),
    }
}

/// A SELECT constraint split into its dimension part and time range.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundSelect {
    /// Dimension-only predicate (unbound; compile against a table).
    pub predicate: Predicate,
    /// Inclusive time range extracted from `t` conditions, if any.
    pub time_range: Option<(Timestamp, Timestamp)>,
}

/// A SELECT constraint split like [`BoundSelect`], but with the dimension
/// part still in AST form — `?` placeholders intact — so a prepared
/// statement can rebind it per execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitSelect {
    /// Dimension-only constraint (may contain `?` placeholders).
    pub dims: Expr,
    /// Inclusive time range extracted from `t` conditions, if any.
    pub time_range: Option<(Timestamp, Timestamp)>,
}

/// [`split_select_constraint`] followed by [`bind_expr`] on the dimension
/// part: the one-shot form for statements without parameters.
pub fn bind_select_constraint(stmt: &SelectStmt) -> Result<BoundSelect, ParseError> {
    let split = split_select_constraint(stmt)?;
    Ok(BoundSelect { predicate: bind_expr(&split.dims)?, time_range: split.time_range })
}

/// Split a SELECT statement's constraint: top-level conjuncts on `t`
/// become the time range; the rest stays as a dimension-only expression.
/// Supported time forms: `t = v`, `t >= v`, `t > v`, `t <= v`, `t < v`,
/// `t BETWEEN a AND b` (values are `YYYYMMDD` literals; `?` parameters are
/// rejected on `t` so the planned scan range is static). Time conditions
/// under OR/NOT are rejected — they would not describe a contiguous scan
/// range.
pub fn split_select_constraint(stmt: &SelectStmt) -> Result<SplitSelect, ParseError> {
    let conjuncts: Vec<&Expr> = match &stmt.constraint {
        Expr::And(children) => children.iter().collect(),
        other => vec![other],
    };
    let mut lo: Option<Timestamp> = None;
    let mut hi: Option<Timestamp> = None;
    let mut dims: Vec<Expr> = Vec::new();

    let apply_time = |op: CmpOp,
                      v: i64,
                      lo: &mut Option<Timestamp>,
                      hi: &mut Option<Timestamp>|
     -> Result<(), ParseError> {
        let t = Timestamp::from_yyyymmdd(v)
            .map_err(|e| ParseError::new(format!("bad time literal: {e}"), 0))?;
        match op {
            CmpOp::Eq => {
                *lo = Some(lo.map_or(t, |x| x.max(t)));
                *hi = Some(hi.map_or(t, |x| x.min(t)));
            }
            CmpOp::Ge => *lo = Some(lo.map_or(t, |x| x.max(t))),
            CmpOp::Gt => *lo = Some(lo.map_or(t + 1, |x| x.max(t + 1))),
            CmpOp::Le => *hi = Some(hi.map_or(t, |x| x.min(t))),
            CmpOp::Lt => *hi = Some(hi.map_or(t - 1, |x| x.min(t - 1))),
            CmpOp::Ne => {
                return Err(ParseError::new("t <> … is not a contiguous time range".to_string(), 0))
            }
        }
        Ok(())
    };

    for c in conjuncts {
        match c {
            Expr::Cmp { column, op, value } if column == TIME_COLUMN => {
                if matches!(value, Literal::Param(_)) {
                    return Err(ParseError::new(
                        format!("'?' parameters may not constrain '{TIME_COLUMN}'"),
                        0,
                    ));
                }
                let Literal::Int(v) = value else {
                    return Err(ParseError::new("time literals must be integers".to_string(), 0));
                };
                apply_time(*op, *v, &mut lo, &mut hi)?;
            }
            Expr::Between { column, lo: l, hi: h } if column == TIME_COLUMN => {
                if matches!(l, Literal::Param(_)) || matches!(h, Literal::Param(_)) {
                    return Err(ParseError::new(
                        format!("'?' parameters may not constrain '{TIME_COLUMN}'"),
                        0,
                    ));
                }
                let (Literal::Int(a), Literal::Int(b)) = (l, h) else {
                    return Err(ParseError::new("time literals must be integers".to_string(), 0));
                };
                apply_time(CmpOp::Ge, *a, &mut lo, &mut hi)?;
                apply_time(CmpOp::Le, *b, &mut lo, &mut hi)?;
            }
            other if other.references(TIME_COLUMN) => {
                return Err(ParseError::new(
                    "time conditions must be top-level conjuncts (no OR/NOT over t)".to_string(),
                    0,
                ));
            }
            other => dims.push(other.clone()),
        }
    }

    let dims = match dims.len() {
        0 => Expr::True,
        1 => dims.pop().expect("len checked"),
        _ => Expr::And(dims),
    };
    let time_range = match (lo, hi) {
        (None, None) => None,
        (Some(a), Some(b)) => Some((a, b)),
        (Some(a), None) => Some((a, Timestamp(i64::MAX / 2))),
        (None, Some(b)) => Some((Timestamp(i64::MIN / 2), b)),
    };
    Ok(SplitSelect { dims, time_range })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use crate::Statement;

    fn select(q: &str) -> SelectStmt {
        match parse(q).unwrap() {
            Statement::Select(s) => s,
            _ => panic!("expected SELECT"),
        }
    }

    #[test]
    fn splits_time_equality() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= 30 AND t = 20200101");
        let b = bind_select_constraint(&s).unwrap();
        let t = Timestamp::from_yyyymmdd(20200101).unwrap();
        assert_eq!(b.time_range, Some((t, t)));
        assert_eq!(b.predicate.to_string(), "Age <= 30");
    }

    #[test]
    fn splits_time_range() {
        let s = select("SELECT SUM(m) FROM T WHERE t >= 20200101 AND t <= 20200107");
        let b = bind_select_constraint(&s).unwrap();
        let (lo, hi) = b.time_range.unwrap();
        assert_eq!(hi - lo, 6);
        assert_eq!(b.predicate, Predicate::True);
    }

    #[test]
    fn between_on_time() {
        let s = select("SELECT SUM(m) FROM T WHERE t BETWEEN 20200101 AND 20200103");
        let b = bind_select_constraint(&s).unwrap();
        let (lo, hi) = b.time_range.unwrap();
        assert_eq!(hi - lo, 2);
    }

    #[test]
    fn strict_inequalities_shift_bounds() {
        let s = select("SELECT SUM(m) FROM T WHERE t > 20200101 AND t < 20200105");
        let b = bind_select_constraint(&s).unwrap();
        let (lo, hi) = b.time_range.unwrap();
        assert_eq!(lo.to_yyyymmdd(), 20200102);
        assert_eq!(hi.to_yyyymmdd(), 20200104);
    }

    #[test]
    fn no_time_condition_means_none() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= 30");
        let b = bind_select_constraint(&s).unwrap();
        assert!(b.time_range.is_none());
    }

    #[test]
    fn time_under_or_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= 30 OR t = 20200101");
        assert!(bind_select_constraint(&s).is_err());
        let s = select("SELECT SUM(m) FROM T WHERE NOT t = 20200101");
        assert!(bind_select_constraint(&s).is_err());
        let s = select("SELECT SUM(m) FROM T WHERE t <> 20200101");
        assert!(bind_select_constraint(&s).is_err());
    }

    #[test]
    fn bad_date_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE t = 20201350");
        assert!(bind_select_constraint(&s).is_err());
    }

    #[test]
    fn between_desugars() {
        let p = bind_expr(&Expr::Between {
            column: "Age".into(),
            lo: Literal::Int(20),
            hi: Literal::Int(30),
        })
        .unwrap();
        assert_eq!(p.to_string(), "(Age >= 20) AND (Age <= 30)");
    }

    #[test]
    fn unbound_parameters_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE Age <= ?");
        let e = bind_expr(&s.constraint).unwrap_err();
        assert!(e.message.contains("unbound parameter"));
    }

    #[test]
    fn substitution_matches_a_fresh_parse() {
        let template = select("SELECT SUM(m) FROM T WHERE Age <= ? AND Location IN (?, ?)");
        let bound = substitute_params(
            &template.constraint,
            &[Literal::Int(30), Literal::Str("NY".into()), Literal::Str("WA".into())],
        )
        .unwrap();
        let fresh = select("SELECT SUM(m) FROM T WHERE Age <= 30 AND Location IN ('NY', 'WA')");
        assert_eq!(bound, fresh.constraint);
        // Same predicate after binding, too.
        assert_eq!(
            bind_expr(&bound).unwrap().to_string(),
            bind_expr(&fresh.constraint).unwrap().to_string()
        );
    }

    #[test]
    fn substitution_errors() {
        let template = select("SELECT SUM(m) FROM T WHERE Age <= ?");
        // Missing value.
        assert!(substitute_params(&template.constraint, &[]).is_err());
        // A placeholder as a value.
        assert!(substitute_params(&template.constraint, &[Literal::Param(0)]).is_err());
        // Extra values are tolerated by substitution itself.
        let ok = substitute_params(&template.constraint, &[Literal::Int(1), Literal::Int(2)]);
        assert!(ok.is_ok());
    }

    #[test]
    fn time_parameters_rejected() {
        let s = select("SELECT SUM(m) FROM T WHERE t = ?");
        assert!(bind_select_constraint(&s).unwrap_err().message.contains("parameters"));
        let s = select("SELECT SUM(m) FROM T WHERE t BETWEEN ? AND 20200131");
        assert!(bind_select_constraint(&s).is_err());
    }

    #[test]
    fn nested_structures_bind() {
        let s = select(
            "SELECT SUM(m) FROM T WHERE (Age <= 30 OR Age >= 60) AND Location IN ('NY','WA')",
        );
        let b = bind_select_constraint(&s).unwrap();
        assert!(b.predicate.to_string().contains("OR"));
        assert!(b.predicate.to_string().contains("IN"));
    }
}
