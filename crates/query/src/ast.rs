//! Abstract syntax of the task language.

use flashp_storage::AggFunc;
use std::fmt;

/// Name of the implicit time column (`t` in the paper's schema).
pub const TIME_COLUMN: &str = "t";

/// A literal in a predicate or option.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Int(i64),
    /// A float literal (`3.5`, `1e-3`). Only valid against `Float64`
    /// dimension columns; the binder rejects it elsewhere.
    Float(f64),
    Str(String),
    /// A `?` placeholder, numbered left-to-right from 0 at parse time.
    /// Substituted with a concrete literal before binding (prepared
    /// statements rebind the same template many times).
    Param(usize),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Int(v) => write!(f, "{v}"),
            // `{:?}` keeps the decimal point so the printed literal
            // re-parses as a float, not an int.
            Literal::Float(v) => write!(f, "{v:?}"),
            Literal::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
            // Parameters number left-to-right, so the printed `?` re-parses
            // to the same index.
            Literal::Param(_) => write!(f, "?"),
        }
    }
}

/// Comparison operators (reuse the storage enum for the bound form; the
/// AST keeps its own copy so the parser has no storage dependency in its
/// surface types).
pub use flashp_storage::CmpOp;

/// A boolean expression over dimension values — the constraint class `C`.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Cmp { column: String, op: CmpOp, value: Literal },
    In { column: String, values: Vec<Literal> },
    Between { column: String, lo: Literal, hi: Literal },
    And(Vec<Expr>),
    Or(Vec<Expr>),
    Not(Box<Expr>),
    True,
}

impl Expr {
    /// Does this expression mention `column` anywhere?
    pub fn references(&self, column: &str) -> bool {
        match self {
            Expr::Cmp { column: c, .. }
            | Expr::In { column: c, .. }
            | Expr::Between { column: c, .. } => c == column,
            Expr::And(children) | Expr::Or(children) => {
                children.iter().any(|e| e.references(column))
            }
            Expr::Not(child) => child.references(column),
            Expr::True => false,
        }
    }

    /// Number of `?` parameter placeholders (the parser numbers them
    /// contiguously left-to-right, so this is `max index + 1`).
    pub fn num_params(&self) -> usize {
        fn max_index(e: &Expr, acc: &mut Option<usize>) {
            let mut see = |l: &Literal| {
                if let Literal::Param(i) = l {
                    *acc = Some(acc.map_or(*i, |a| a.max(*i)));
                }
            };
            match e {
                Expr::Cmp { value, .. } => see(value),
                Expr::In { values, .. } => values.iter().for_each(see),
                Expr::Between { lo, hi, .. } => {
                    see(lo);
                    see(hi);
                }
                Expr::And(children) | Expr::Or(children) => {
                    children.iter().for_each(|c| max_index(c, acc));
                }
                Expr::Not(child) => max_index(child, acc),
                Expr::True => {}
            }
        }
        let mut acc = None;
        max_index(self, &mut acc);
        acc.map_or(0, |i| i + 1)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Cmp { column, op, value } => write!(f, "{column} {} {value}", op.symbol()),
            Expr::In { column, values } => {
                write!(f, "{column} IN (")?;
                for (i, v) in values.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Between { column, lo, hi } => {
                write!(f, "{column} BETWEEN {lo} AND {hi}")
            }
            Expr::And(children) => {
                if children.is_empty() {
                    return write!(f, "TRUE");
                }
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " AND ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Expr::Or(children) => {
                if children.is_empty() {
                    return write!(f, "FALSE");
                }
                for (i, c) in children.iter().enumerate() {
                    if i > 0 {
                        write!(f, " OR ")?;
                    }
                    write!(f, "({c})")?;
                }
                Ok(())
            }
            Expr::Not(c) => write!(f, "NOT ({c})"),
            Expr::True => write!(f, "TRUE"),
        }
    }
}

/// One endpoint of a `USING (start, end)` window: either a `YYYYMMDD`
/// integer literal, fixed at plan time, or a `?` placeholder bound per
/// execution (prepared statements re-bind the window without re-parsing).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeBound {
    /// A `YYYYMMDD` integer literal.
    Lit(i64),
    /// A `?` placeholder, numbered with the statement's other parameters.
    Param(usize),
}

impl TimeBound {
    /// The literal value, if this bound is static.
    pub fn as_lit(&self) -> Option<i64> {
        match self {
            TimeBound::Lit(v) => Some(*v),
            TimeBound::Param(_) => None,
        }
    }

    /// The placeholder index, if this bound is a parameter.
    pub fn param_index(&self) -> Option<usize> {
        match self {
            TimeBound::Lit(_) => None,
            TimeBound::Param(i) => Some(*i),
        }
    }
}

impl fmt::Display for TimeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeBound::Lit(v) => write!(f, "{v}"),
            // Like `Literal::Param`: parameters number left-to-right, so
            // the printed `?` re-parses to the same index.
            TimeBound::Param(_) => write!(f, "?"),
        }
    }
}

/// The `USING` clause of a `FORECAST` statement: either an absolute
/// `(start, end)` window or a relative `LAST n DAYS` window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum UsingClause {
    /// `USING (start, end)` — absolute `YYYYMMDD` endpoints (either may
    /// be a `?` placeholder bound per execution).
    Window {
        /// Training window start.
        start: TimeBound,
        /// Training window end.
        end: TimeBound,
    },
    /// `USING LAST n DAYS` — the trailing `n` days ending at the table's
    /// newest timestamp, resolved at bind time so a freshly published day
    /// shifts the window without client-side date math. The day count may
    /// be a `?` placeholder.
    LastDays(TimeBound),
}

impl UsingClause {
    /// Number of `?` placeholders in the clause (`max index + 1`).
    pub fn num_params(&self) -> usize {
        match self {
            UsingClause::Window { start, end } => [start, end]
                .iter()
                .filter_map(|b| b.param_index())
                .map(|i| i + 1)
                .max()
                .unwrap_or(0),
            UsingClause::LastDays(d) => d.param_index().map_or(0, |i| i + 1),
        }
    }

    /// The static `(start, end)` pair, if the clause is an absolute window
    /// with both endpoints literal.
    pub fn as_static_window(&self) -> Option<(i64, i64)> {
        match self {
            UsingClause::Window { start, end } => Some((start.as_lit()?, end.as_lit()?)),
            UsingClause::LastDays(_) => None,
        }
    }
}

impl fmt::Display for UsingClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UsingClause::Window { start, end } => write!(f, "USING ({start}, {end})"),
            UsingClause::LastDays(d) => write!(f, "USING LAST {d} DAYS"),
        }
    }
}

/// Value of an `OPTION (key = value)` entry.
#[derive(Debug, Clone, PartialEq)]
pub enum OptionValue {
    Str(String),
    Int(i64),
    Float(f64),
}

impl OptionValue {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OptionValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            OptionValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric value, widening ints to floats.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            OptionValue::Float(v) => Some(*v),
            OptionValue::Int(v) => Some(*v as f64),
            OptionValue::Str(_) => None,
        }
    }
}

impl fmt::Display for OptionValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionValue::Str(s) => write!(f, "'{s}'"),
            OptionValue::Int(v) => write!(f, "{v}"),
            // Whole-valued floats keep a decimal point so the printed form
            // re-parses as a Float, not an Int (display fixed-point).
            OptionValue::Float(v) if v.fract() == 0.0 && v.is_finite() => write!(f, "{v:.1}"),
            OptionValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// `FORECAST agg(m) FROM T WHERE C USING (ts, te) OPTION (…)` — Eq. (1).
#[derive(Debug, Clone, PartialEq)]
pub struct ForecastStmt {
    pub agg: AggFunc,
    pub measure: String,
    pub table: String,
    pub constraint: Expr,
    /// The training window: absolute `USING (start, end)` or relative
    /// `USING LAST n DAYS`.
    pub using: UsingClause,
    /// `OPTION (key = value, …)` pairs in source order.
    pub options: Vec<(String, OptionValue)>,
}

impl ForecastStmt {
    /// Look up an option by (case-insensitive) key.
    pub fn option(&self, key: &str) -> Option<&OptionValue> {
        lookup_option(&self.options, key)
    }

    /// Number of `?` placeholders in the whole statement (constraint and
    /// `USING` clause; the parser numbers them contiguously
    /// left-to-right, so this is `max index + 1`).
    pub fn num_params(&self) -> usize {
        self.constraint.num_params().max(self.using.num_params())
    }
}

/// Case-insensitive key lookup in an `OPTION (…)` list.
pub(crate) fn lookup_option<'a>(
    options: &'a [(String, OptionValue)],
    key: &str,
) -> Option<&'a OptionValue> {
    options.iter().find(|(k, _)| k.eq_ignore_ascii_case(key)).map(|(_, v)| v)
}

/// `SELECT agg(m) FROM T [WHERE C] [GROUP BY t] [OPTION (…)]` — the
/// rewritten aggregation queries of Eq. (4). `OPTION (SAMPLE_RATE = r)`
/// with `r < 1` answers from the sample catalog instead of a full scan.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    pub agg: AggFunc,
    pub measure: String,
    pub table: String,
    /// Full constraint, possibly including conditions on `t`.
    pub constraint: Expr,
    /// True for `GROUP BY t` (one result row per timestamp).
    pub group_by_time: bool,
    /// `OPTION (key = value, …)` pairs in source order.
    pub options: Vec<(String, OptionValue)>,
}

impl SelectStmt {
    /// Look up an option by (case-insensitive) key.
    pub fn option(&self, key: &str) -> Option<&OptionValue> {
        lookup_option(&self.options, key)
    }

    /// Number of `?` placeholders in the constraint.
    pub fn num_params(&self) -> usize {
        self.constraint.num_params()
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    Forecast(ForecastStmt),
    Select(SelectStmt),
    /// `EXPLAIN <statement>`: plan the inner statement and render the plan
    /// instead of executing it.
    Explain(Box<Statement>),
}

impl Statement {
    /// Number of `?` placeholders in the statement's constraint.
    pub fn num_params(&self) -> usize {
        match self {
            Statement::Forecast(s) => s.num_params(),
            Statement::Select(s) => s.num_params(),
            Statement::Explain(inner) => inner.num_params(),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Forecast(s) => {
                write!(
                    f,
                    "FORECAST {}({}) FROM {} WHERE {} {}",
                    s.agg, s.measure, s.table, s.constraint, s.using
                )?;
                write_options(f, &s.options)
            }
            Statement::Select(s) => {
                write!(f, "SELECT {}({}) FROM {}", s.agg, s.measure, s.table)?;
                if s.constraint != Expr::True {
                    write!(f, " WHERE {}", s.constraint)?;
                }
                if s.group_by_time {
                    write!(f, " GROUP BY {TIME_COLUMN}")?;
                }
                write_options(f, &s.options)
            }
            Statement::Explain(inner) => write!(f, "EXPLAIN {inner}"),
        }
    }
}

fn write_options(f: &mut fmt::Formatter<'_>, options: &[(String, OptionValue)]) -> fmt::Result {
    if options.is_empty() {
        return Ok(());
    }
    write!(f, " OPTION (")?;
    for (i, (k, v)) in options.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write!(f, "{k} = {v}")?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_references() {
        let e = Expr::And(vec![
            Expr::Cmp { column: "Age".into(), op: CmpOp::Le, value: Literal::Int(30) },
            Expr::Not(Box::new(Expr::Cmp {
                column: "t".into(),
                op: CmpOp::Eq,
                value: Literal::Int(20200101),
            })),
        ]);
        assert!(e.references("t"));
        assert!(e.references("Age"));
        assert!(!e.references("Gender"));
    }

    #[test]
    fn display_escapes_strings() {
        let l = Literal::Str("it's".to_string());
        assert_eq!(l.to_string(), "'it''s'");
    }

    #[test]
    fn option_lookup_is_case_insensitive() {
        let s = ForecastStmt {
            agg: AggFunc::Sum,
            measure: "m".into(),
            table: "T".into(),
            constraint: Expr::True,
            using: UsingClause::Window { start: TimeBound::Lit(1), end: TimeBound::Lit(2) },
            options: vec![("MODEL".into(), OptionValue::Str("arima".into()))],
        };
        assert_eq!(s.option("model").unwrap().as_str(), Some("arima"));
        assert!(s.option("missing").is_none());
    }

    #[test]
    fn option_value_display_preserves_type() {
        assert_eq!(OptionValue::Float(1.0).to_string(), "1.0");
        assert_eq!(OptionValue::Float(0.01).to_string(), "0.01");
        assert_eq!(OptionValue::Int(1).to_string(), "1");
    }

    #[test]
    fn param_literal_displays_as_question_mark() {
        assert_eq!(Literal::Param(3).to_string(), "?");
    }

    #[test]
    fn num_params_counts_placeholders() {
        let e = Expr::And(vec![
            Expr::Cmp { column: "a".into(), op: CmpOp::Le, value: Literal::Param(0) },
            Expr::In { column: "b".into(), values: vec![Literal::Param(1), Literal::Int(3)] },
            Expr::Not(Box::new(Expr::Between {
                column: "c".into(),
                lo: Literal::Param(2),
                hi: Literal::Int(9),
            })),
        ]);
        assert_eq!(e.num_params(), 3);
        assert_eq!(Expr::True.num_params(), 0);
    }

    #[test]
    fn forecast_num_params_covers_using_bounds() {
        let mut s = ForecastStmt {
            agg: AggFunc::Sum,
            measure: "m".into(),
            table: "T".into(),
            constraint: Expr::Cmp { column: "a".into(), op: CmpOp::Le, value: Literal::Param(0) },
            using: UsingClause::Window { start: TimeBound::Param(1), end: TimeBound::Param(2) },
            options: vec![],
        };
        assert_eq!(s.num_params(), 3);
        s.using = UsingClause::Window { start: TimeBound::Param(1), end: TimeBound::Lit(20200131) };
        assert_eq!(s.num_params(), 2);
        s.constraint = Expr::True;
        assert_eq!(s.num_params(), 2, "USING params alone still count");
    }

    #[test]
    fn using_clause_display_and_params() {
        let w = UsingClause::Window { start: TimeBound::Lit(20200101), end: TimeBound::Param(0) };
        assert_eq!(w.to_string(), "USING (20200101, ?)");
        assert_eq!(w.num_params(), 1);
        assert_eq!(w.as_static_window(), None);

        let last = UsingClause::LastDays(TimeBound::Lit(7));
        assert_eq!(last.to_string(), "USING LAST 7 DAYS");
        assert_eq!(last.num_params(), 0);
        assert_eq!(last.as_static_window(), None);

        let last_p = UsingClause::LastDays(TimeBound::Param(0));
        assert_eq!(last_p.to_string(), "USING LAST ? DAYS");
        assert_eq!(last_p.num_params(), 1);

        let fixed = UsingClause::Window { start: TimeBound::Lit(1), end: TimeBound::Lit(2) };
        assert_eq!(fixed.as_static_window(), Some((1, 2)));
    }

    #[test]
    fn option_value_coercions() {
        assert_eq!(OptionValue::Int(7).as_float(), Some(7.0));
        assert_eq!(OptionValue::Float(0.5).as_float(), Some(0.5));
        assert_eq!(OptionValue::Str("x".into()).as_float(), None);
        assert_eq!(OptionValue::Int(7).as_str(), None);
    }
}
