//! Parse/bind errors with positions into the query text.

use std::fmt;

/// A parse or bind error, carrying the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the query string (0-based).
    pub position: usize,
}

impl ParseError {
    pub fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError { message: message.into(), position }
    }

    /// Render a caret diagnostic pointing at the error position.
    pub fn diagnostic(&self, query: &str) -> String {
        let pos = self.position.min(query.len());
        format!("{}\n{}\n{}^", self.message, query, " ".repeat(pos))
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at offset {})", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_points_at_position() {
        let e = ParseError::new("unexpected token", 7);
        let d = e.diagnostic("SELECT ???");
        let lines: Vec<&str> = d.lines().collect();
        assert_eq!(lines[1], "SELECT ???");
        assert_eq!(lines[2], "       ^");
    }

    #[test]
    fn diagnostic_clamps_position() {
        let e = ParseError::new("eof", 999);
        let d = e.diagnostic("abc");
        assert!(d.ends_with("   ^"));
    }
}
