//! Parser → AST → binder round-trips for the quickstart `FORECAST` query
//! (the exact statement from the facade crate's doc example), including
//! `OPTION` clauses, plus the textual round-trip `parse(stmt.to_string())
//! == stmt` that keeps `Display` and the grammar in sync.

use flashp_query::{parse, Expr, Literal, OptionValue, Statement};
use flashp_storage::AggFunc;

const QUICKSTART: &str = "FORECAST SUM(Impression) FROM ads \
     WHERE age <= 30 AND gender = 'F' \
     USING (20200101, 20200229) \
     OPTION (MODEL = 'arima', FORE_PERIOD = 7)";

fn forecast_stmt(sql: &str) -> flashp_query::ForecastStmt {
    match parse(sql).unwrap() {
        Statement::Forecast(stmt) => stmt,
        other => panic!("expected FORECAST, parsed {other:?}"),
    }
}

#[test]
fn quickstart_parses_into_the_expected_ast() {
    let stmt = forecast_stmt(QUICKSTART);
    assert_eq!(stmt.agg, AggFunc::Sum);
    assert_eq!(stmt.measure, "Impression");
    assert_eq!(stmt.table, "ads");
    assert_eq!(
        stmt.using,
        flashp_query::UsingClause::Window {
            start: flashp_query::TimeBound::Lit(20200101),
            end: flashp_query::TimeBound::Lit(20200229),
        }
    );

    // WHERE age <= 30 AND gender = 'F'
    match &stmt.constraint {
        Expr::And(children) => {
            assert_eq!(children.len(), 2);
            assert!(children[0].references("age"), "first conjunct should constrain age");
            assert!(children[1].references("gender"), "second conjunct should constrain gender");
        }
        other => panic!("expected AND conjunction, got {other:?}"),
    }
}

#[test]
fn quickstart_option_clauses_survive() {
    let stmt = forecast_stmt(QUICKSTART);
    assert_eq!(stmt.options.len(), 2);
    // Source order is preserved and lookup is case-insensitive.
    assert_eq!(stmt.options[0].0.to_uppercase(), "MODEL");
    assert_eq!(stmt.option("model").and_then(OptionValue::as_str), Some("arima"));
    assert_eq!(stmt.option("FORE_PERIOD").and_then(OptionValue::as_int), Some(7));
    assert_eq!(stmt.option("no_such_option"), None);
}

#[test]
fn quickstart_round_trips_through_display() {
    let parsed = parse(QUICKSTART).unwrap();
    let printed = parsed.to_string();
    assert!(printed.contains("OPTION ("), "Display must keep OPTION clauses: {printed}");
    let reparsed = parse(&printed)
        .unwrap_or_else(|e| panic!("Display output failed to reparse: {printed}\n{e}"));
    assert_eq!(parsed, reparsed, "parse → print → parse must be a fixed point");
    // And printing again is stable.
    assert_eq!(printed, reparsed.to_string());
}

#[test]
fn option_value_types_round_trip() {
    let stmt = forecast_stmt(
        "FORECAST AVG(Click) FROM t WHERE a = 1 USING (20200101, 20200131) \
         OPTION (MODEL = 'ets', FORE_PERIOD = 3, SAMPLE_RATE = 0.01)",
    );
    assert_eq!(stmt.option("sample_rate").and_then(OptionValue::as_float), Some(0.01));
    // Integers coerce to float on demand but not the other way round.
    assert_eq!(stmt.option("fore_period").and_then(OptionValue::as_float), Some(3.0));
    assert_eq!(stmt.option("sample_rate").and_then(OptionValue::as_int), None);
    let reparsed = parse(&Statement::Forecast(stmt.clone()).to_string()).unwrap();
    assert_eq!(Statement::Forecast(stmt), reparsed);
}

#[test]
fn constraint_binds_against_the_ads_schema() {
    // parser → binder: the bound predicate must evaluate the same rows the
    // AST describes. `bind_expr` produces a storage predicate by name.
    let stmt = forecast_stmt(QUICKSTART);
    let pred = flashp_query::bind_expr(&stmt.constraint).unwrap();
    let printed = format!("{pred}");
    assert!(printed.to_lowercase().contains("age"), "bound predicate lost age: {printed}");
    assert!(printed.to_lowercase().contains("gender"), "bound predicate lost gender: {printed}");
}

#[test]
fn select_round_trips_too() {
    let sql = "SELECT SUM(Impression) FROM ads WHERE age <= 30 AND t = 20200105";
    let parsed = parse(sql).unwrap();
    let Statement::Select(stmt) = &parsed else { panic!("expected SELECT") };
    assert_eq!(stmt.agg, AggFunc::Sum);
    assert!(!stmt.group_by_time);
    let reparsed = parse(&parsed.to_string()).unwrap();
    assert_eq!(parsed, reparsed);

    let grouped = parse("SELECT COUNT(Click) FROM ads WHERE age <= 30 GROUP BY t").unwrap();
    let Statement::Select(stmt) = &grouped else { panic!("expected SELECT") };
    assert!(stmt.group_by_time);
    assert_eq!(grouped, parse(&grouped.to_string()).unwrap());
}

#[test]
fn literals_compare_structurally() {
    let a = forecast_stmt(QUICKSTART);
    let b = forecast_stmt(QUICKSTART);
    assert_eq!(a, b);
    match a.constraint {
        Expr::And(ref children) => {
            // gender = 'F' keeps its string literal.
            let printed = format!("{}", children[1]);
            assert!(printed.contains('F'), "string literal lost: {printed}");
        }
        _ => unreachable!(),
    }
    // Literal equality is type- and value-sensitive.
    assert_ne!(Literal::Int(1), Literal::Int(2));
    assert_ne!(Literal::Int(1), Literal::Str("1".to_string()));
}
