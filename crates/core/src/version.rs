//! Versioned engine snapshots and the live-ingest delta layer.
//!
//! FlashP's online service must keep answering forecasting tasks while
//! new time-series rows stream in (§4.1 argues GSW samples are exactly
//! the samples that make this cheap). The unit of visibility is the
//! [`CatalogVersion`]: an immutable `(table, catalog)` pair with a
//! process-unique version number. The engine holds the *active* version
//! behind an atomically swappable `Arc`; every execution — one-shot or
//! prepared — snapshots the active version once and runs entirely
//! against it, so an execution can never observe half of an ingest.
//!
//! Ingest is staged: [`crate::FlashPEngine::ingest`] buffers an
//! [`IngestBatch`] into a pending copy-on-write table (appended rows are
//! invisible to queries), accumulating a [`CatalogDelta`] of changed
//! partitions; [`crate::FlashPEngine::publish`] then derives a new
//! catalog version via [`crate::SampleCatalog::apply_delta`] — only
//! changed (layer, bucket, partition) cells recomputed — and swaps the
//! active version. In-flight executions keep running lock-free against
//! the version they snapshotted; the swap itself is a brief write-lock
//! that only delays the *next* snapshot acquisition.

use crate::catalog::SampleCatalog;
use crate::catalog::{next_version_id, DeltaStats};
use flashp_storage::{Partition, TimeSeriesTable, Timestamp, Value};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

/// One immutable engine snapshot: the table and (optionally) the sample
/// catalog a query executes against, tagged with a process-unique,
/// monotonically increasing version number.
///
/// Everything reachable from a `CatalogVersion` is immutable; sharing it
/// across threads needs no locks. Obtain the engine's current one with
/// [`crate::FlashPEngine::snapshot`].
pub struct CatalogVersion {
    version: u64,
    table: Arc<TimeSeriesTable>,
    catalog: Option<Arc<SampleCatalog>>,
}

impl CatalogVersion {
    /// Snapshot a table + optional catalog under a fresh version number.
    pub(crate) fn new(table: Arc<TimeSeriesTable>, catalog: Option<Arc<SampleCatalog>>) -> Self {
        CatalogVersion { version: next_version_id(), table, catalog }
    }

    /// The snapshot's process-unique version number. Monotone across
    /// publishes: a later [`crate::FlashPEngine::publish`] always yields
    /// a greater version.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The snapshot's table.
    pub fn table(&self) -> &Arc<TimeSeriesTable> {
        &self.table
    }

    /// The snapshot's sample catalog, if one is attached.
    pub fn catalog(&self) -> Option<&Arc<SampleCatalog>> {
        self.catalog.as_ref()
    }
}

/// The set of partitions an ingest touched since the last publish — what
/// [`crate::SampleCatalog::apply_delta`] uses to decide which (layer,
/// bucket, partition) cells to recompute.
#[derive(Debug, Clone, Default)]
pub struct CatalogDelta {
    changed: BTreeSet<Timestamp>,
    appended_rows: usize,
}

impl CatalogDelta {
    /// Record `rows` appended at timestamp `t`.
    pub fn record(&mut self, t: Timestamp, rows: usize) {
        self.changed.insert(t);
        self.appended_rows += rows;
    }

    /// Timestamps whose partitions changed, in time order.
    pub fn changed(&self) -> impl Iterator<Item = &Timestamp> {
        self.changed.iter()
    }

    /// Number of changed partitions.
    pub fn num_changed(&self) -> usize {
        self.changed.len()
    }

    /// Total rows appended since the last publish.
    pub fn appended_rows(&self) -> usize {
        self.appended_rows
    }

    /// Whether nothing changed.
    pub fn is_empty(&self) -> bool {
        self.changed.is_empty()
    }
}

/// One batch of rows to ingest, addressed by timestamp. Batches mix the
/// two append paths freely: row-at-a-time values (categorical strings
/// interned on apply) and pre-built columnar [`Partition`]s (dictionary
/// codes must already be interned against the engine's table — the shape
/// produced by `flashp_data`'s stream generator).
#[derive(Debug, Default)]
pub struct IngestBatch {
    items: Vec<IngestItem>,
    rows: usize,
}

#[derive(Debug)]
pub(crate) enum IngestItem {
    Rows { t: Timestamp, rows: Vec<(Vec<Value>, Vec<f64>)> },
    Partition { t: Timestamp, partition: Partition },
}

impl IngestBatch {
    /// An empty batch.
    pub fn new() -> Self {
        IngestBatch::default()
    }

    /// Queue one row at timestamp `t`.
    pub fn push_row(&mut self, t: Timestamp, dims: &[Value], measures: &[f64]) {
        self.rows += 1;
        if let Some(IngestItem::Rows { t: last, rows }) = self.items.last_mut() {
            if *last == t {
                rows.push((dims.to_vec(), measures.to_vec()));
                return;
            }
        }
        self.items.push(IngestItem::Rows { t, rows: vec![(dims.to_vec(), measures.to_vec())] });
    }

    /// Queue a pre-built columnar partition of rows at timestamp `t`.
    /// Empty partitions are dropped: they carry no rows, and admitting
    /// one for a previously absent day would create a 0-row partition no
    /// sampler can draw from.
    pub fn push_partition(&mut self, t: Timestamp, partition: Partition) {
        if partition.is_empty() {
            return;
        }
        self.rows += partition.num_rows();
        self.items.push(IngestItem::Partition { t, partition });
    }

    /// Total rows queued.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Decompose the batch into its items so a shard router can re-bucket
    /// rows by hash — the inverse of the `push_*` builders. Consumes the
    /// batch: routed rows are re-staged into per-shard batches.
    pub(crate) fn into_items(self) -> Vec<IngestItem> {
        self.items
    }

    /// Apply the batch to a table, recording changed partitions in
    /// `delta`. Returns the number of rows appended.
    pub(crate) fn apply(
        self,
        table: &mut TimeSeriesTable,
        delta: &mut CatalogDelta,
    ) -> Result<usize, flashp_storage::StorageError> {
        let mut appended = 0;
        for item in self.items {
            match item {
                IngestItem::Rows { t, rows } => {
                    let n = table
                        .append_rows(t, rows.iter().map(|(d, m)| (d.as_slice(), m.as_slice())))?;
                    delta.record(t, n);
                    appended += n;
                }
                IngestItem::Partition { t, partition } => {
                    let n = table.append_partition(t, partition)?;
                    delta.record(t, n);
                    appended += n;
                }
            }
        }
        Ok(appended)
    }
}

/// What a [`crate::FlashPEngine::publish`] did.
#[derive(Debug, Clone, Copy)]
pub struct PublishStats {
    /// Version number of the (now active) snapshot.
    pub version: u64,
    /// Version of the active sample catalog, if one is attached —
    /// the number `EXPLAIN` reports for plans made against it.
    pub catalog_version: Option<u64>,
    /// Rows appended since the previous publish.
    pub appended_rows: usize,
    /// Partitions (days) those rows landed in.
    pub changed_partitions: usize,
    /// Catalog cells recomputed, split by path.
    pub delta: DeltaStats,
    /// Wall-clock time spent deriving the new catalog and swapping.
    pub duration: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use flashp_storage::{DataType, Schema};

    #[test]
    fn batch_groups_consecutive_rows() {
        let schema = Schema::from_names(&[("k", DataType::Int64)], &["m"]).unwrap().into_shared();
        let t0 = Timestamp::from_yyyymmdd(20200101).unwrap();
        let mut batch = IngestBatch::new();
        batch.push_row(t0, &[Value::Int(1)], &[1.0]);
        batch.push_row(t0, &[Value::Int(2)], &[2.0]);
        batch.push_row(t0 + 1, &[Value::Int(3)], &[3.0]);
        assert_eq!(batch.num_rows(), 3);

        let mut table = TimeSeriesTable::new(schema);
        let mut delta = CatalogDelta::default();
        assert_eq!(batch.apply(&mut table, &mut delta).unwrap(), 3);
        assert_eq!(table.num_partitions(), 2);
        assert_eq!(delta.num_changed(), 2);
        assert_eq!(delta.appended_rows(), 3);
        assert!(!delta.is_empty());
    }
}
