//! Prepared statements and plan execution.
//!
//! A [`PreparedQuery`] owns a typed [`LogicalPlan`] plus a handle to the
//! engine's shared version slot. It is `Send + Sync` and executes through
//! `&self` — many threads can run the same prepared statement
//! concurrently; each call snapshots the engine's active
//! [`crate::CatalogVersion`] exactly once and then runs lock-free against
//! it, drawing fresh [`MaskScratch`] buffers that are reused across the
//! whole Eq. (4) per-timestamp batch of that call. Because the snapshot
//! is per-execution, the same prepared handle serves newly published
//! data after every [`crate::FlashPEngine::publish`], and no execution
//! can ever straddle two versions.

use crate::catalog::SampleCatalog;
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::explain::{explain_plan, PlanNode};
use crate::models::build_model;
use crate::planner::{
    resolve_forecast_window, resolve_select_range, specialize_forecast, specialize_plan,
    specialize_select, ForecastPlan, LogicalPlan, PredicateSlot, ScanSource, SelectPlan,
    TimeRangeSlot,
};
use crate::result::{ExecOutput, ForecastOut, ForecastResult, SelectResult, SeriesPoint, Timing};
use flashp_query::{bind_expr, substitute_params, Literal, Statement};
use flashp_sampling::{estimate_agg_with, estimate_components_with, EstimateComponents, Sample};
use flashp_storage::parallel::parallel_map_with;
use flashp_storage::{
    AggFunc, CompiledPredicate, MaskScratch, ScanOptions, SumMode, TimeSeriesTable, Timestamp,
};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// How many bind-time range specializations one prepared handle caches
/// per engine version before starting over (a rotating-dashboard workload
/// re-binds a small set of windows; an adversarial one shouldn't grow the
/// handle without bound).
const SPECIALIZED_CAP: usize = 64;

/// Typed arity check shared by every parameterized execution entry.
pub(crate) fn check_arity(num_params: usize, params: &[Literal]) -> Result<(), EngineError> {
    if params.len() == num_params {
        return Ok(());
    }
    Err(EngineError::Parameter(if num_params == 0 {
        format!("statement takes no parameters, {} supplied", params.len())
    } else {
        format!("statement takes {num_params} parameter(s), {} supplied", params.len())
    }))
}

/// How per-timestamp estimation treats a timestamp with no stored sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Missing {
    /// Fail: the caller needs a contiguous series (FORECAST training).
    Error,
    /// Skip the day: the caller aggregates whatever exists (SELECT).
    Skip,
}

/// Everything plan execution needs, borrowed for the duration of one call.
pub(crate) struct ExecCtx<'a> {
    pub table: &'a TimeSeriesTable,
    pub config: &'a EngineConfig,
    pub catalog: Option<&'a SampleCatalog>,
}

impl ExecCtx<'_> {
    /// Resolve a plan's predicate slot against the call's parameters.
    /// Arity was already checked at the statement level (`?` indices are
    /// statement-global, shared with the time window), so substitution
    /// just picks the indices the constraint uses.
    pub(crate) fn resolve_predicate<'p>(
        &self,
        slot: &'p PredicateSlot,
        params: &[Literal],
    ) -> Result<Cow<'p, CompiledPredicate>, EngineError> {
        match slot {
            PredicateSlot::Compiled(pred) => Ok(Cow::Borrowed(pred)),
            PredicateSlot::Template { constraint, .. } => {
                let bound = substitute_params(constraint, params)?;
                let predicate = bind_expr(&bound)?;
                Ok(Cow::Owned(self.table.compile_predicate(&predicate)?))
            }
        }
    }

    /// The catalog layer a plan's source references.
    pub(crate) fn layer(
        &self,
        source: &ScanSource,
    ) -> Result<&crate::catalog::CatalogLayer, EngineError> {
        let ScanSource::SampleLayer { layer, .. } = source else {
            unreachable!("layer() is only called for sampled sources")
        };
        let catalog = self.catalog.ok_or_else(|| {
            EngineError::SamplesUnavailable(
                "plan references a sample catalog the engine no longer holds".to_string(),
            )
        })?;
        Ok(catalog.layer(*layer))
    }

    /// Exact per-timestamp aggregates over `[start, end]`.
    pub(crate) fn estimate_exact(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        sum: SumMode,
    ) -> Result<Vec<SeriesPoint>, EngineError> {
        let expected_points = (end - start + 1) as usize;
        let rows = flashp_storage::aggregate_range(
            self.table,
            measure,
            pred,
            agg,
            start,
            end,
            ScanOptions { threads: self.config.threads, sum },
        )?;
        if rows.len() != expected_points {
            return Err(EngineError::SamplesUnavailable(format!(
                "table covers {} of {} requested timestamps",
                rows.len(),
                expected_points
            )));
        }
        Ok(rows.into_iter().map(|(t, value)| SeriesPoint { t, value, variance: None }).collect())
    }

    /// The shared per-day estimation driver: apply `f` to every timestamp
    /// in `[start, end]` (and whatever sample the layer's bucket holds for
    /// it), in parallel with one [`MaskScratch`] per worker so the whole
    /// Eq. 4 batch reuses mask buffers. Sequential below 200 k sampled
    /// rows — thread spawn costs dwarf the estimation work on small
    /// layers.
    fn map_days<R: Send>(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        start: Timestamp,
        end: Timestamp,
        f: impl Fn(&mut MaskScratch, Timestamp, Option<&Sample>) -> Result<R, EngineError> + Sync,
    ) -> Result<Vec<R>, EngineError> {
        let bucket = &layer.buckets[bucket];
        let ts: Vec<Timestamp> = start.range_inclusive(end).collect();
        let threads = if layer.total_rows < 200_000 { 1 } else { self.config.threads };
        parallel_map_with(&ts, threads, MaskScratch::new, |scratch, &t| {
            f(scratch, t, bucket.get(&t).map(|c| c.sample.as_ref()))
        })
        .into_iter()
        .collect()
    }

    /// Per-timestamp estimates from one catalog layer/bucket.
    ///
    /// `missing` controls timestamps with no stored sample: a FORECAST
    /// training series must be contiguous ([`Missing::Error`]), while a
    /// SELECT aggregate skips absent days ([`Missing::Skip`]) exactly as
    /// the exact path iterates only existing partitions.
    pub(crate) fn estimate_from_layer(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        missing: Missing,
    ) -> Result<Vec<SeriesPoint>, EngineError> {
        let points = self.map_days(layer, bucket, start, end, |scratch, t, sample| {
            let Some(sample) = sample else {
                return match missing {
                    Missing::Skip => Ok(None),
                    Missing::Error => {
                        Err(EngineError::SamplesUnavailable(format!("no sample for timestamp {t}")))
                    }
                };
            };
            let e = estimate_agg_with(sample, measure, pred, agg, scratch)?;
            Ok(Some(SeriesPoint { t, value: e.value, variance: e.variance }))
        })?;
        Ok(points.into_iter().flatten().collect())
    }

    /// Raw HT accumulators for `[start, end]` from one catalog
    /// layer/bucket, merged across timestamps: per-partition samples are
    /// independent, so sums and variances add. One pass serves any
    /// aggregate (a range AVG finalizes as total SUM / total COUNT).
    /// Absent timestamps contribute nothing, mirroring the exact scalar
    /// path over existing partitions.
    fn components_from_layer(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<EstimateComponents, EngineError> {
        let per_day =
            self.map_days(layer, bucket, start, end, |scratch, _, sample| match sample {
                Some(sample) => Ok(estimate_components_with(sample, measure, pred, scratch)?),
                None => Ok(EstimateComponents::default()),
            })?;
        let mut total = EstimateComponents::default();
        for c in &per_day {
            total.merge(c);
        }
        Ok(total)
    }

    /// Per-timestamp HT components for `[start, end]` from one catalog
    /// layer/bucket, **unmerged**: element `i` is timestamp `start + i`,
    /// `None` when the bucket stores no sample for that day. This is the
    /// sampled partial-aggregation entry point for scatter-gather
    /// execution — a shard emits its own per-day components and a
    /// combiner merges day-by-day across shards in a fixed shard order,
    /// keeping f64 accumulation order independent of fan-out width.
    pub(crate) fn day_components_from_layer(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Option<EstimateComponents>>, EngineError> {
        self.map_days(layer, bucket, start, end, |scratch, _, sample| match sample {
            Some(sample) => Ok(Some(estimate_components_with(sample, measure, pred, scratch)?)),
            None => Ok(None),
        })
    }

    /// Exact per-timestamp aggregate states for the partitions this
    /// table holds in `[start, end]` — the exact-path counterpart of
    /// [`ExecCtx::day_components_from_layer`]: only present days are
    /// returned, and the states merge exactly across shards.
    pub(crate) fn day_states_exact(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
        sum: SumMode,
    ) -> Result<Vec<(Timestamp, flashp_storage::AggState)>, EngineError> {
        Ok(flashp_storage::aggregate_states_range(
            self.table,
            measure,
            pred,
            start,
            end,
            ScanOptions { threads: self.config.threads, sum },
        )?)
    }

    /// Per-timestamp series for a plan's scan source. `sum` only affects
    /// the exact full-scan path; sampled estimation keeps its own
    /// accumulation order.
    #[allow(clippy::too_many_arguments)]
    fn estimate_series_for(
        &self,
        source: &ScanSource,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        sum: SumMode,
    ) -> Result<Vec<SeriesPoint>, EngineError> {
        match source {
            ScanSource::FullScan { .. } => self.estimate_exact(measure, pred, agg, start, end, sum),
            ScanSource::SampleLayer { bucket, .. } => {
                let layer = self.layer(source)?;
                self.estimate_from_layer(
                    layer,
                    *bucket,
                    measure,
                    pred,
                    agg,
                    start,
                    end,
                    Missing::Error,
                )
            }
        }
    }

    /// Execute any plan.
    pub(crate) fn execute_plan(
        &self,
        plan: &LogicalPlan,
        params: &[Literal],
    ) -> Result<ExecOutput, EngineError> {
        match plan {
            LogicalPlan::Forecast(p) => {
                Ok(ExecOutput::Forecast(Box::new(self.execute_forecast(p, params)?)))
            }
            LogicalPlan::Select(p) => Ok(ExecOutput::Select(self.execute_select(p, params)?)),
        }
    }

    /// Execute a FORECAST plan: estimate the training series (Eq. 4), fit
    /// the model, forecast with intervals — the two-phase pipeline of §2.1.
    ///
    /// A plan whose `USING` window is parameterized is specialized here
    /// first (resolve + validate the window, re-select the layer), so
    /// execution is correct even when the caller bypassed
    /// [`PreparedQuery`]'s specialization cache.
    pub(crate) fn execute_forecast(
        &self,
        plan: &ForecastPlan,
        params: &[Literal],
    ) -> Result<ForecastResult, EngineError> {
        check_arity(plan.num_params, params)?;
        let plan: Cow<'_, ForecastPlan> = match &plan.range {
            TimeRangeSlot::Dynamic(window) => {
                let range = resolve_forecast_window(window, params, self.table)?;
                Cow::Owned(specialize_forecast(plan, range, self.table, self.catalog)?)
            }
            TimeRangeSlot::Static(_) => Cow::Borrowed(plan),
        };
        let (t_start, t_end) = plan.window()?;
        let source = plan.source.planned()?;
        let pred = self.resolve_predicate(&plan.predicate, params)?;

        // Phase 1: estimate the training series (Eq. 4).
        let agg_start = Instant::now();
        let sum = if plan.fast_sum { SumMode::Fast } else { SumMode::Exact };
        let estimates =
            self.estimate_series_for(source, plan.measure, &pred, plan.agg, t_start, t_end, sum)?;
        let aggregation = agg_start.elapsed();

        // Phase 2: fit + forecast.
        let fit_start = Instant::now();
        let values: Vec<f64> = estimates.iter().map(|p| p.value).collect();
        let mut model = build_model(&plan.model)?;
        let summary = model.fit(&values)?;
        let mut fc = model.forecast(plan.horizon, plan.confidence)?;
        let mean_noise_variance = {
            let vars: Vec<f64> = estimates.iter().filter_map(|p| p.variance).collect();
            if vars.is_empty() {
                0.0
            } else {
                vars.iter().sum::<f64>() / vars.len() as f64
            }
        };
        if plan.noise_aware && mean_noise_variance > 0.0 {
            fc = flashp_forecast::noise::widen_with_noise(&fc, mean_noise_variance)?;
        }
        let forecasting = fit_start.elapsed();

        let forecasts: Vec<ForecastOut> = fc
            .points
            .iter()
            .map(|p| ForecastOut {
                t: t_end + p.step as i64,
                value: p.value,
                lo: p.lo,
                hi: p.hi,
                std_err: p.std_err,
            })
            .collect();
        Ok(ForecastResult {
            estimates,
            forecasts,
            model: model.name(),
            sampler: source.sampler_label().to_string(),
            rate_used: source.rate_used(),
            confidence: plan.confidence,
            sigma2: summary.sigma2,
            mean_noise_variance,
            timing: Timing { aggregation, forecasting },
        })
    }

    /// Execute a SELECT plan (exact scan or sampled estimation). A
    /// parameterized time window is resolved and clamped here first — an
    /// inverted or fully out-of-table binding yields the empty result,
    /// exactly like its literal counterpart at plan time.
    pub(crate) fn execute_select(
        &self,
        plan: &SelectPlan,
        params: &[Literal],
    ) -> Result<SelectResult, EngineError> {
        check_arity(plan.num_params, params)?;
        let plan: Cow<'_, SelectPlan> = match &plan.range {
            TimeRangeSlot::Dynamic(window) => {
                let range = resolve_select_range(window, params, self.table)?;
                Cow::Owned(specialize_select(plan, range, self.table, self.catalog)?)
            }
            TimeRangeSlot::Static(_) => Cow::Borrowed(plan),
        };
        let pred = self.resolve_predicate(&plan.predicate, params)?;
        let Some((lo, hi)) = plan.static_range()? else {
            return Ok(SelectResult { rows: Vec::new(), approximate: false });
        };
        let sum = if plan.fast_sum { SumMode::Fast } else { SumMode::Exact };
        match plan.source.planned()? {
            ScanSource::FullScan { .. } => {
                if plan.group_by_time {
                    let rows = flashp_storage::aggregate_range(
                        self.table,
                        plan.measure,
                        &pred,
                        plan.agg,
                        lo,
                        hi,
                        ScanOptions { threads: self.config.threads, sum },
                    )?;
                    let rows = rows.into_iter().map(|(t, v)| (t, v, None)).collect();
                    return Ok(SelectResult { rows, approximate: false });
                }
                // Scalar aggregate across the range, through the same fused /
                // scratch-reusing kernels as the grouped path.
                let total = flashp_storage::aggregate_total(
                    self.table,
                    plan.measure,
                    &pred,
                    lo,
                    hi,
                    ScanOptions { threads: self.config.threads, sum },
                )?;
                Ok(SelectResult {
                    rows: vec![(lo, total.finalize(plan.agg), None)],
                    approximate: false,
                })
            }
            source @ ScanSource::SampleLayer { bucket, .. } => {
                let layer = self.layer(source)?;
                if plan.group_by_time {
                    let points = self.estimate_from_layer(
                        layer,
                        *bucket,
                        plan.measure,
                        &pred,
                        plan.agg,
                        lo,
                        hi,
                        Missing::Skip,
                    )?;
                    let rows = points
                        .into_iter()
                        .map(|p| (p.t, p.value, p.variance.map(f64::sqrt)))
                        .collect();
                    return Ok(SelectResult { rows, approximate: true });
                }
                // Scalar estimate across the range: one pass accumulates
                // the HT components over every day, then finalizes into
                // the requested aggregate — SUM/COUNT variances add across
                // independent per-partition samples; AVG is the ratio of
                // the two totals (no plug-in variance).
                let total =
                    self.components_from_layer(layer, *bucket, plan.measure, &pred, lo, hi)?;
                let est = total.finalize(plan.agg);
                Ok(SelectResult {
                    rows: vec![(lo, est.value, est.variance.map(f64::sqrt))],
                    approximate: true,
                })
            }
        }
    }
}

/// A planned, repeatedly executable statement.
///
/// Created by [`crate::FlashPEngine::prepare`]. The query's names are
/// bound, its options validated, its predicate constant-folded (unless it
/// has `?` placeholders) and its serving sample layer chosen — once per
/// engine version. Execution through [`PreparedQuery::execute`] /
/// [`execute_with`] repeats none of that work while the engine version is
/// unchanged; the first execution after a
/// [`crate::FlashPEngine::publish`] re-plans against the new version, so
/// version-dependent plan constants (the clamped time range, dictionary
/// codes folded into the predicate, the layer's estimated row counts)
/// never go stale — a prepared `SELECT` whose statement covers a
/// newly published day includes it, exactly like a fresh one-shot of the
/// same text.
///
/// `PreparedQuery` is `Send + Sync` and cheap to share: wrap it in an
/// [`Arc`] (or just reference it from scoped threads) and execute from as
/// many threads as you like. The only synchronization on the execution
/// path is the per-execution snapshot of the engine's active version (a
/// read-lock held just long enough to clone an `Arc`) and a same-version
/// check on the handle's internal plan slot; estimation and forecasting
/// themselves run lock-free against the snapshot.
///
/// [`execute_with`]: PreparedQuery::execute_with
pub struct PreparedQuery {
    shared: Arc<crate::engine::EngineShared>,
    config: Arc<EngineConfig>,
    statement: Statement,
    /// The plan for `cached.version`; re-planned lazily when the engine
    /// version moves.
    cached: Mutex<CachedPlan>,
}

struct CachedPlan {
    version: u64,
    plan: Arc<LogicalPlan>,
    /// Bind-time specializations of a dynamic-range plan, keyed on the
    /// resolved (clamped) range — `None` = empty SELECT range. Entries
    /// are only valid for `version`: the map is cleared whenever the
    /// engine version moves, so the effective key is
    /// `(catalog_version, clamped_range)`. Always empty for static plans.
    specialized: HashMap<Option<(i64, i64)>, Arc<LogicalPlan>>,
}

impl PreparedQuery {
    pub(crate) fn new(
        shared: Arc<crate::engine::EngineShared>,
        config: Arc<EngineConfig>,
        statement: Statement,
        version: u64,
        plan: LogicalPlan,
    ) -> Self {
        PreparedQuery {
            shared,
            config,
            statement,
            cached: Mutex::new(CachedPlan {
                version,
                plan: Arc::new(plan),
                specialized: HashMap::new(),
            }),
        }
    }

    /// The parsed statement this query was prepared from.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// The plan the executor would run against the engine's current
    /// version (re-planning first if a publish happened since the last
    /// execution).
    pub fn plan(&self) -> Result<Arc<LogicalPlan>, EngineError> {
        self.current_plan(&self.shared.snapshot())
    }

    /// Number of `?` parameters [`PreparedQuery::execute_with`] expects.
    /// Fixed by the statement text, independent of re-planning.
    pub fn num_params(&self) -> usize {
        self.cached.lock().expect("prepared plan poisoned").plan.num_params()
    }

    /// Render the current plan as an `EXPLAIN` tree without executing.
    /// Sampled plans name the catalog version the next execution will
    /// answer from.
    pub fn explain(&self) -> Result<PlanNode, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        Ok(explain_plan(&plan, snapshot.table().schema()))
    }

    /// Render the plan one execution of `params` would run: a dynamic
    /// `USING (?, ?)` range is resolved, clamped, and its serving layer
    /// re-selected exactly as [`PreparedQuery::execute_with`] would, so
    /// the tree shows the concrete range and per-binding layer choice
    /// instead of `range=dynamic`.
    pub fn explain_with(&self, params: &[Literal]) -> Result<PlanNode, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        Ok(explain_plan(&plan, snapshot.table().schema()))
    }

    /// The plan for `snapshot`'s version: the cached one when the version
    /// is unchanged, otherwise a fresh plan (planning runs outside the
    /// slot lock; the statement was validated at prepare time, so
    /// re-planning only fails if the engine state regressed, e.g. a
    /// handle whose catalog was never attached).
    fn current_plan(
        &self,
        snapshot: &crate::version::CatalogVersion,
    ) -> Result<Arc<LogicalPlan>, EngineError> {
        {
            let cached = self.cached.lock().expect("prepared plan poisoned");
            if cached.version == snapshot.version() {
                return Ok(cached.plan.clone());
            }
        }
        let planner = crate::planner::Planner::new(
            snapshot.table(),
            &self.config,
            snapshot.catalog().map(|c| c.as_ref()),
        );
        let plan = Arc::new(planner.plan(&self.statement)?);
        let mut cached = self.cached.lock().expect("prepared plan poisoned");
        cached.version = snapshot.version();
        cached.plan = plan.clone();
        // Range specializations were sized against the old version's
        // samples; drop them so every binding re-selects its layer.
        cached.specialized.clear();
        Ok(plan)
    }

    /// The plan one execution runs: the prepared plan itself when its
    /// range is static, otherwise a specialization for this binding's
    /// resolved (clamped) range — cached per `(catalog version, range)`,
    /// so a dashboard cycling a handful of windows re-plans each at most
    /// once per publish.
    fn bound_plan(
        &self,
        snapshot: &crate::version::CatalogVersion,
        plan: Arc<LogicalPlan>,
        params: &[Literal],
    ) -> Result<Arc<LogicalPlan>, EngineError> {
        let window = match plan.range() {
            TimeRangeSlot::Dynamic(w) => w,
            TimeRangeSlot::Static(_) => return Ok(plan),
        };
        check_arity(plan.num_params(), params)?;
        let range = match &*plan {
            LogicalPlan::Forecast(_) => {
                Some(resolve_forecast_window(window, params, snapshot.table())?)
            }
            LogicalPlan::Select(_) => resolve_select_range(window, params, snapshot.table())?,
        };
        let key = range.map(|(a, b)| (a.0, b.0));
        {
            let cached = self.cached.lock().expect("prepared plan poisoned");
            if cached.version == snapshot.version() {
                if let Some(hit) = cached.specialized.get(&key) {
                    return Ok(hit.clone());
                }
            }
        }
        // Specialize outside the lock: layer re-selection walks catalog
        // indexes, and concurrent executions of distinct ranges shouldn't
        // serialize on it. A racing duplicate insert is harmless — both
        // specializations are identical by construction.
        let specialized = Arc::new(specialize_plan(
            &plan,
            range,
            snapshot.table(),
            snapshot.catalog().map(|c| c.as_ref()),
        )?);
        let mut cached = self.cached.lock().expect("prepared plan poisoned");
        if cached.version == snapshot.version() {
            if cached.specialized.len() >= SPECIALIZED_CAP {
                cached.specialized.clear();
            }
            cached.specialized.insert(key, specialized.clone());
        }
        Ok(specialized)
    }

    /// Number of bind-time range specializations cached for the current
    /// engine version (always 0 for statements with a literal range).
    pub fn specialization_count(&self) -> usize {
        self.cached.lock().expect("prepared plan poisoned").specialized.len()
    }

    /// Execute a parameterless prepared statement.
    pub fn execute(&self) -> Result<ExecOutput, EngineError> {
        self.execute_with(&[])
    }

    /// Execute, binding `?` placeholder `i` to `params[i]`. Snapshots the
    /// engine's active version once; the whole execution answers from
    /// exactly that version.
    pub fn execute_with(&self, params: &[Literal]) -> Result<ExecOutput, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        self.ctx(&snapshot).execute_plan(&plan, params)
    }

    /// Execute a prepared FORECAST (errors on SELECT).
    pub fn forecast_with(&self, params: &[Literal]) -> Result<ForecastResult, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        match &*plan {
            LogicalPlan::Forecast(p) => self.ctx(&snapshot).execute_forecast(p, params),
            LogicalPlan::Select(_) => Err(EngineError::WrongStatement { expected: "FORECAST" }),
        }
    }

    /// Execute a prepared SELECT (errors on FORECAST).
    pub fn select_with(&self, params: &[Literal]) -> Result<SelectResult, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        match &*plan {
            LogicalPlan::Select(p) => self.ctx(&snapshot).execute_select(p, params),
            LogicalPlan::Forecast(_) => Err(EngineError::WrongStatement { expected: "SELECT" }),
        }
    }

    fn ctx<'a>(&'a self, snapshot: &'a crate::version::CatalogVersion) -> ExecCtx<'a> {
        ExecCtx {
            table: snapshot.table(),
            config: &self.config,
            catalog: snapshot.catalog().map(|c| c.as_ref()),
        }
    }
}
