//! Prepared statements and plan execution.
//!
//! A [`PreparedQuery`] owns a typed [`LogicalPlan`] plus a handle to the
//! engine's shared version slot. It is `Send + Sync` and executes through
//! `&self` — many threads can run the same prepared statement
//! concurrently; each call snapshots the engine's active
//! [`crate::CatalogVersion`] exactly once and then runs lock-free against
//! it, drawing fresh [`MaskScratch`] buffers that are reused across the
//! whole Eq. (4) per-timestamp batch of that call. Because the snapshot
//! is per-execution, the same prepared handle serves newly published
//! data after every [`crate::FlashPEngine::publish`], and no execution
//! can ever straddle two versions.

use crate::catalog::SampleCatalog;
use crate::config::EngineConfig;
use crate::error::EngineError;
use crate::explain::{explain_plan, PlanNode};
use crate::models::build_model;
use crate::partial_cache::{predicate_fingerprint, PartialCache};
use crate::planner::{
    resolve_forecast_window, resolve_select_range, specialize_forecast, specialize_plan,
    specialize_select, ForecastPlan, LogicalPlan, PredicateSlot, ScanSource, SelectPlan,
    TimeRangeSlot,
};
use crate::result::{ExecOutput, ForecastOut, ForecastResult, SelectResult, SeriesPoint, Timing};
use flashp_query::{bind_expr, substitute_params, Literal, Statement};
use flashp_sampling::{estimate_components_with, EstimateComponents, Sample};
use flashp_storage::parallel::parallel_map_with;
use flashp_storage::{
    AggFunc, CompiledPredicate, MaskScratch, ScanOptions, SumMode, TimeSeriesTable, Timestamp,
};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Total bind-time range specializations the engine-level [`SpecCache`]
/// retains across every prepared handle (a rotating-dashboard workload
/// re-binds a small set of windows per statement; an adversarial one
/// shouldn't grow the engine without bound). Replaces the old per-handle
/// 64-entry cap.
pub(crate) const SPEC_CACHE_CAPACITY: usize = 1024;

/// Key of one cached specialization: statement identity (FNV of the
/// normalized text), the engine version it was specialized against, and
/// the resolved (clamped) range — `None` = empty SELECT range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SpecKey {
    stmt: u64,
    version: u64,
    range: Option<(i64, i64)>,
}

struct SpecEntry {
    last_used: u64,
    plan: Arc<LogicalPlan>,
}

#[derive(Default)]
struct SpecInner {
    map: HashMap<SpecKey, SpecEntry>,
    tick: u64,
}

/// Engine-level bind-time specialization cache, shared by every prepared
/// handle of one engine: `USING (?, ?)` plans specialized per
/// (statement, version, resolved range), so two handles prepared from the
/// same text share each window's specialization. Entries are
/// version-scoped like one-shot plans; `FlashPEngine::publish` purges the
/// replaced version's entries eagerly.
pub(crate) struct SpecCache {
    capacity: usize,
    inner: Mutex<SpecInner>,
}

impl SpecCache {
    pub(crate) fn new(capacity: usize) -> Self {
        SpecCache { capacity: capacity.max(1), inner: Mutex::new(SpecInner::default()) }
    }

    fn get(&self, key: SpecKey) -> Option<Arc<LogicalPlan>> {
        let mut inner = self.inner.lock().expect("spec cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        inner.map.get_mut(&key).map(|e| {
            e.last_used = tick;
            e.plan.clone()
        })
    }

    fn insert(&self, key: SpecKey, plan: Arc<LogicalPlan>) {
        let mut inner = self.inner.lock().expect("spec cache poisoned");
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, SpecEntry { last_used: tick, plan });
    }

    /// Drop every specialization of a replaced engine version.
    pub(crate) fn purge_version(&self, version: u64) {
        let mut inner = self.inner.lock().expect("spec cache poisoned");
        inner.map.retain(|k, _| k.version != version);
    }

    /// Resident specializations of one statement at one version.
    fn count_for(&self, stmt: u64, version: u64) -> usize {
        let inner = self.inner.lock().expect("spec cache poisoned");
        inner.map.keys().filter(|k| k.stmt == stmt && k.version == version).count()
    }
}

/// Typed arity check shared by every parameterized execution entry.
pub(crate) fn check_arity(num_params: usize, params: &[Literal]) -> Result<(), EngineError> {
    if params.len() == num_params {
        return Ok(());
    }
    Err(EngineError::Parameter(if num_params == 0 {
        format!("statement takes no parameters, {} supplied", params.len())
    } else {
        format!("statement takes {num_params} parameter(s), {} supplied", params.len())
    }))
}

/// How per-timestamp estimation treats a timestamp with no stored sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Missing {
    /// Fail: the caller needs a contiguous series (FORECAST training).
    Error,
    /// Skip the day: the caller aggregates whatever exists (SELECT).
    Skip,
}

/// Everything plan execution needs, borrowed for the duration of one call.
pub(crate) struct ExecCtx<'a> {
    pub table: &'a TimeSeriesTable,
    pub config: &'a EngineConfig,
    pub catalog: Option<&'a SampleCatalog>,
    /// The engine's day-partial cache; `None` when disabled, in which
    /// case every day executes cold (the CI oracle mode).
    pub partial: Option<&'a PartialCache>,
}

/// What one timestamp of a per-day estimation batch produced. Keeping the
/// three cases distinct lets each caller apply its own missing-day policy
/// *in timestamp order*, so the first failing day surfaces identically to
/// the pre-cache code paths, cached or not.
enum DayOutcome {
    /// The bucket stores no sample for this timestamp.
    Absent,
    /// HT components (from the cache, or freshly computed and cached).
    Value(EstimateComponents),
    /// Estimation failed; never cached.
    Failed(EngineError),
}

impl ExecCtx<'_> {
    /// Resolve a plan's predicate slot against the call's parameters.
    /// Arity was already checked at the statement level (`?` indices are
    /// statement-global, shared with the time window), so substitution
    /// just picks the indices the constraint uses.
    pub(crate) fn resolve_predicate<'p>(
        &self,
        slot: &'p PredicateSlot,
        params: &[Literal],
    ) -> Result<Cow<'p, CompiledPredicate>, EngineError> {
        match slot {
            PredicateSlot::Compiled(pred) => Ok(Cow::Borrowed(pred)),
            PredicateSlot::Template { constraint, .. } => {
                let bound = substitute_params(constraint, params)?;
                let predicate = bind_expr(&bound)?;
                Ok(Cow::Owned(self.table.compile_predicate(&predicate)?))
            }
        }
    }

    /// The catalog layer a plan's source references.
    pub(crate) fn layer(
        &self,
        source: &ScanSource,
    ) -> Result<&crate::catalog::CatalogLayer, EngineError> {
        let ScanSource::SampleLayer { layer, .. } = source else {
            unreachable!("layer() is only called for sampled sources")
        };
        let catalog = self.catalog.ok_or_else(|| {
            EngineError::SamplesUnavailable(
                "plan references a sample catalog the engine no longer holds".to_string(),
            )
        })?;
        Ok(catalog.layer(*layer))
    }

    /// Exact per-timestamp aggregates over `[start, end]`.
    pub(crate) fn estimate_exact(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        sum: SumMode,
    ) -> Result<Vec<SeriesPoint>, EngineError> {
        let expected_points = (end - start + 1) as usize;
        let rows = self.day_states_exact(measure, pred, start, end, sum)?;
        if rows.len() != expected_points {
            return Err(EngineError::SamplesUnavailable(format!(
                "table covers {} of {} requested timestamps",
                rows.len(),
                expected_points
            )));
        }
        Ok(rows
            .into_iter()
            .map(|(t, state)| SeriesPoint { t, value: state.finalize(agg), variance: None })
            .collect())
    }

    /// The shared per-day estimation driver: one [`DayOutcome`] per
    /// timestamp in `[start, end]` from one catalog layer/bucket.
    ///
    /// With the day-partial cache attached, only days whose
    /// (cell, predicate, measure) entry is cold are computed — in
    /// parallel, one [`MaskScratch`] per worker — and their components are
    /// memoized for the next window that covers them. Per-day results are
    /// independent of thread count and of *which* days ran, so assembling
    /// hits with fresh misses in timestamp order is bit-identical to
    /// computing every day. Sequential below 200 k sampled rows — thread
    /// spawn costs dwarf the estimation work on small layers.
    fn day_outcomes(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
    ) -> Vec<DayOutcome> {
        let bucket = &layer.buckets[bucket];
        let ts: Vec<Timestamp> = start.range_inclusive(end).collect();
        let threads = if layer.total_rows < 200_000 { 1 } else { self.config.threads };
        let estimate = |scratch: &mut MaskScratch, sample: &Sample| match estimate_components_with(
            sample, measure, pred, scratch,
        ) {
            Ok(c) => DayOutcome::Value(c),
            Err(e) => DayOutcome::Failed(e.into()),
        };
        let Some(cache) = self.partial else {
            // Cold mode: compute every present day, exactly as before the
            // cache existed.
            return parallel_map_with(&ts, threads, MaskScratch::new, |scratch, &t| {
                match bucket.get(&t) {
                    None => DayOutcome::Absent,
                    Some(cell) => estimate(scratch, cell.sample.as_ref()),
                }
            });
        };
        let fp = predicate_fingerprint(pred);
        let mut out: Vec<DayOutcome> = Vec::with_capacity(ts.len());
        let mut missing: Vec<(usize, Timestamp)> = Vec::new();
        for (i, &t) in ts.iter().enumerate() {
            match bucket.get(&t) {
                None => out.push(DayOutcome::Absent),
                Some(cell) => match cache.get_components(cell.id, fp, measure) {
                    Some(c) => out.push(DayOutcome::Value(c)),
                    None => {
                        missing.push((i, t));
                        out.push(DayOutcome::Absent); // placeholder, filled below
                    }
                },
            }
        }
        if !missing.is_empty() {
            let computed =
                parallel_map_with(&missing, threads, MaskScratch::new, |scratch, &(_, t)| {
                    let cell = bucket.get(&t).expect("probed present above");
                    estimate(scratch, cell.sample.as_ref())
                });
            for (&(i, t), outcome) in missing.iter().zip(computed) {
                if let DayOutcome::Value(c) = outcome {
                    let cell = bucket.get(&t).expect("probed present above");
                    cache.put_components(cell.id, fp, measure, c);
                }
                out[i] = outcome;
            }
        }
        out
    }

    /// Per-timestamp estimates from one catalog layer/bucket.
    ///
    /// `missing` controls timestamps with no stored sample: a FORECAST
    /// training series must be contiguous ([`Missing::Error`]), while a
    /// SELECT aggregate skips absent days ([`Missing::Skip`]) exactly as
    /// the exact path iterates only existing partitions.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn estimate_from_layer(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        missing: Missing,
    ) -> Result<Vec<SeriesPoint>, EngineError> {
        let outcomes = self.day_outcomes(layer, bucket, measure, pred, start, end);
        let mut points = Vec::with_capacity(outcomes.len());
        for (t, outcome) in start.range_inclusive(end).zip(outcomes) {
            match outcome {
                DayOutcome::Absent => match missing {
                    Missing::Skip => {}
                    Missing::Error => {
                        return Err(EngineError::SamplesUnavailable(format!(
                            "no sample for timestamp {t}"
                        )))
                    }
                },
                DayOutcome::Failed(e) => return Err(e),
                DayOutcome::Value(c) => {
                    // Finalizing cached components per aggregate is
                    // bit-identical to `estimate_agg_with`, which is
                    // defined as components + finalize.
                    let e = c.finalize(agg);
                    points.push(SeriesPoint { t, value: e.value, variance: e.variance });
                }
            }
        }
        Ok(points)
    }

    /// Raw HT accumulators for `[start, end]` from one catalog
    /// layer/bucket, merged across timestamps: per-partition samples are
    /// independent, so sums and variances add. One pass serves any
    /// aggregate (a range AVG finalizes as total SUM / total COUNT).
    /// Absent timestamps contribute nothing, mirroring the exact scalar
    /// path over existing partitions.
    fn components_from_layer(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<EstimateComponents, EngineError> {
        let outcomes = self.day_outcomes(layer, bucket, measure, pred, start, end);
        let mut total = EstimateComponents::default();
        for outcome in outcomes {
            match outcome {
                // Merge a default for absent days, exactly as the
                // pre-cache path did (x + 0.0 is not a bitwise no-op when
                // x is -0.0, so skipping the merge would not be
                // bit-identical).
                DayOutcome::Absent => total.merge(&EstimateComponents::default()),
                DayOutcome::Failed(e) => return Err(e),
                DayOutcome::Value(c) => total.merge(&c),
            }
        }
        Ok(total)
    }

    /// Per-timestamp HT components for `[start, end]` from one catalog
    /// layer/bucket, **unmerged**: element `i` is timestamp `start + i`,
    /// `None` when the bucket stores no sample for that day. This is the
    /// sampled partial-aggregation entry point for scatter-gather
    /// execution — a shard emits its own per-day components and a
    /// combiner merges day-by-day across shards in a fixed shard order,
    /// keeping f64 accumulation order independent of fan-out width.
    pub(crate) fn day_components_from_layer(
        &self,
        layer: &crate::catalog::CatalogLayer,
        bucket: usize,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
    ) -> Result<Vec<Option<EstimateComponents>>, EngineError> {
        self.day_outcomes(layer, bucket, measure, pred, start, end)
            .into_iter()
            .map(|outcome| match outcome {
                DayOutcome::Absent => Ok(None),
                DayOutcome::Value(c) => Ok(Some(c)),
                DayOutcome::Failed(e) => Err(e),
            })
            .collect()
    }

    /// Exact per-timestamp aggregate states for the partitions this
    /// table holds in `[start, end]` — the exact-path counterpart of
    /// [`ExecCtx::day_components_from_layer`]: only present days are
    /// returned, and the states merge exactly across shards.
    ///
    /// With the day-partial cache attached, cold partitions are evaluated
    /// through the same fused-kernel `eval_partition_with` the range scan
    /// uses and memoized against the partition's structural id (fresh on
    /// every copy-on-write clone, so a published append to a day retires
    /// that day's entries and no others).
    pub(crate) fn day_states_exact(
        &self,
        measure: usize,
        pred: &CompiledPredicate,
        start: Timestamp,
        end: Timestamp,
        sum: SumMode,
    ) -> Result<Vec<(Timestamp, flashp_storage::AggState)>, EngineError> {
        let options = ScanOptions { threads: self.config.threads, sum };
        // Delegate to the plain range scan when the cache is off — and on
        // a bad measure index, for the identical bounds error.
        let uncached = self.partial.is_none() || measure >= self.table.schema().num_measures();
        if uncached {
            return Ok(flashp_storage::aggregate_states_range(
                self.table, measure, pred, start, end, options,
            )?);
        }
        let cache = self.partial.expect("checked above");
        let fp = predicate_fingerprint(pred);
        let parts: Vec<(Timestamp, &flashp_storage::Partition)> =
            self.table.partitions_in(start, end).collect();
        let mut out: Vec<Option<flashp_storage::AggState>> = vec![None; parts.len()];
        let mut missing: Vec<usize> = Vec::new();
        for (i, (_, p)) in parts.iter().enumerate() {
            match cache.get_exact(p.id(), fp, measure, sum) {
                Some(s) => out[i] = Some(s),
                None => missing.push(i),
            }
        }
        if !missing.is_empty() {
            let computed =
                parallel_map_with(&missing, options.threads, MaskScratch::new, |scratch, &i| {
                    flashp_storage::eval_partition_with(parts[i].1, measure, pred, scratch, sum)
                });
            for (&i, s) in missing.iter().zip(computed) {
                cache.put_exact(parts[i].1.id(), fp, measure, sum, s);
                out[i] = Some(s);
            }
        }
        Ok(parts
            .iter()
            .zip(out)
            .map(|((t, _), s)| (*t, s.expect("every partition resolved above")))
            .collect())
    }

    /// Per-timestamp series for a plan's scan source. `sum` only affects
    /// the exact full-scan path; sampled estimation keeps its own
    /// accumulation order.
    #[allow(clippy::too_many_arguments)]
    fn estimate_series_for(
        &self,
        source: &ScanSource,
        measure: usize,
        pred: &CompiledPredicate,
        agg: AggFunc,
        start: Timestamp,
        end: Timestamp,
        sum: SumMode,
    ) -> Result<Vec<SeriesPoint>, EngineError> {
        match source {
            ScanSource::FullScan { .. } => self.estimate_exact(measure, pred, agg, start, end, sum),
            ScanSource::SampleLayer { bucket, .. } => {
                let layer = self.layer(source)?;
                self.estimate_from_layer(
                    layer,
                    *bucket,
                    measure,
                    pred,
                    agg,
                    start,
                    end,
                    Missing::Error,
                )
            }
        }
    }

    /// The expected warm/cold day split the partial cache would serve for
    /// one execution of `plan` with `params`: `(warm, cold)` over the
    /// plan's bound window, counting only days the layer's bucket stores a
    /// sample for. `None` when the cache is off, the source is not a
    /// sample layer, or the bound range is empty. Probes with `peek`, so
    /// rendering an EXPLAIN never skews hit/miss counters or LRU order.
    pub(crate) fn day_split(
        &self,
        plan: &LogicalPlan,
        params: &[Literal],
    ) -> Result<Option<(usize, usize)>, EngineError> {
        let Some(cache) = self.partial else { return Ok(None) };
        let (source, predicate, measure, range) = match plan {
            LogicalPlan::Forecast(p) => {
                (p.source.planned()?, &p.predicate, p.measure, Some(p.window()?))
            }
            LogicalPlan::Select(p) => {
                (p.source.planned()?, &p.predicate, p.measure, p.static_range()?)
            }
        };
        let Some((lo, hi)) = range else { return Ok(None) };
        let ScanSource::SampleLayer { bucket, .. } = source else { return Ok(None) };
        let layer = self.layer(source)?;
        let pred = self.resolve_predicate(predicate, params)?;
        let fp = predicate_fingerprint(&pred);
        let bucket = &layer.buckets[*bucket];
        let (mut warm, mut cold) = (0usize, 0usize);
        for t in lo.range_inclusive(hi) {
            if let Some(cell) = bucket.get(&t) {
                if cache.peek_components(cell.id, fp, measure) {
                    warm += 1;
                } else {
                    cold += 1;
                }
            }
        }
        Ok(Some((warm, cold)))
    }

    /// Execute any plan.
    pub(crate) fn execute_plan(
        &self,
        plan: &LogicalPlan,
        params: &[Literal],
    ) -> Result<ExecOutput, EngineError> {
        match plan {
            LogicalPlan::Forecast(p) => {
                Ok(ExecOutput::Forecast(Box::new(self.execute_forecast(p, params)?)))
            }
            LogicalPlan::Select(p) => Ok(ExecOutput::Select(self.execute_select(p, params)?)),
        }
    }

    /// Execute a FORECAST plan: estimate the training series (Eq. 4), fit
    /// the model, forecast with intervals — the two-phase pipeline of §2.1.
    ///
    /// A plan whose `USING` window is parameterized is specialized here
    /// first (resolve + validate the window, re-select the layer), so
    /// execution is correct even when the caller bypassed
    /// [`PreparedQuery`]'s specialization cache.
    pub(crate) fn execute_forecast(
        &self,
        plan: &ForecastPlan,
        params: &[Literal],
    ) -> Result<ForecastResult, EngineError> {
        check_arity(plan.num_params, params)?;
        let plan: Cow<'_, ForecastPlan> = match &plan.range {
            TimeRangeSlot::Dynamic(window) => {
                let range = resolve_forecast_window(window, params, self.table)?;
                Cow::Owned(specialize_forecast(plan, range, self.table, self.catalog)?)
            }
            TimeRangeSlot::Static(_) => Cow::Borrowed(plan),
        };
        let (t_start, t_end) = plan.window()?;
        let source = plan.source.planned()?;
        let pred = self.resolve_predicate(&plan.predicate, params)?;

        // Phase 1: estimate the training series (Eq. 4).
        let agg_start = Instant::now();
        let sum = if plan.fast_sum { SumMode::Fast } else { SumMode::Exact };
        let estimates =
            self.estimate_series_for(source, plan.measure, &pred, plan.agg, t_start, t_end, sum)?;
        let aggregation = agg_start.elapsed();

        // Phase 2: fit + forecast.
        let fit_start = Instant::now();
        let values: Vec<f64> = estimates.iter().map(|p| p.value).collect();
        let mut model = build_model(&plan.model)?;
        let summary = model.fit(&values)?;
        let mut fc = model.forecast(plan.horizon, plan.confidence)?;
        let mean_noise_variance = {
            let vars: Vec<f64> = estimates.iter().filter_map(|p| p.variance).collect();
            if vars.is_empty() {
                0.0
            } else {
                vars.iter().sum::<f64>() / vars.len() as f64
            }
        };
        if plan.noise_aware && mean_noise_variance > 0.0 {
            fc = flashp_forecast::noise::widen_with_noise(&fc, mean_noise_variance)?;
        }
        let forecasting = fit_start.elapsed();

        let forecasts: Vec<ForecastOut> = fc
            .points
            .iter()
            .map(|p| ForecastOut {
                t: t_end + p.step as i64,
                value: p.value,
                lo: p.lo,
                hi: p.hi,
                std_err: p.std_err,
            })
            .collect();
        Ok(ForecastResult {
            estimates,
            forecasts,
            model: model.name(),
            sampler: source.sampler_label().to_string(),
            rate_used: source.rate_used(),
            confidence: plan.confidence,
            sigma2: summary.sigma2,
            mean_noise_variance,
            timing: Timing { aggregation, forecasting },
        })
    }

    /// Execute a SELECT plan (exact scan or sampled estimation). A
    /// parameterized time window is resolved and clamped here first — an
    /// inverted or fully out-of-table binding yields the empty result,
    /// exactly like its literal counterpart at plan time.
    pub(crate) fn execute_select(
        &self,
        plan: &SelectPlan,
        params: &[Literal],
    ) -> Result<SelectResult, EngineError> {
        check_arity(plan.num_params, params)?;
        let plan: Cow<'_, SelectPlan> = match &plan.range {
            TimeRangeSlot::Dynamic(window) => {
                let range = resolve_select_range(window, params, self.table)?;
                Cow::Owned(specialize_select(plan, range, self.table, self.catalog)?)
            }
            TimeRangeSlot::Static(_) => Cow::Borrowed(plan),
        };
        let pred = self.resolve_predicate(&plan.predicate, params)?;
        let Some((lo, hi)) = plan.static_range()? else {
            return Ok(SelectResult { rows: Vec::new(), approximate: false });
        };
        let sum = if plan.fast_sum { SumMode::Fast } else { SumMode::Exact };
        match plan.source.planned()? {
            ScanSource::FullScan { .. } => {
                // Both shapes route through the day-state driver: per-day
                // states come from the same fused / scratch-reusing
                // kernels in partition order, so finalizing (grouped) or
                // merging (scalar) them is bit-identical to the plain
                // range scan — and warm days are served from the cache.
                let states = self.day_states_exact(plan.measure, &pred, lo, hi, sum)?;
                if plan.group_by_time {
                    let rows =
                        states.into_iter().map(|(t, s)| (t, s.finalize(plan.agg), None)).collect();
                    return Ok(SelectResult { rows, approximate: false });
                }
                let mut total = flashp_storage::AggState::default();
                for (_, s) in states {
                    total.merge(s);
                }
                Ok(SelectResult {
                    rows: vec![(lo, total.finalize(plan.agg), None)],
                    approximate: false,
                })
            }
            source @ ScanSource::SampleLayer { bucket, .. } => {
                let layer = self.layer(source)?;
                if plan.group_by_time {
                    let points = self.estimate_from_layer(
                        layer,
                        *bucket,
                        plan.measure,
                        &pred,
                        plan.agg,
                        lo,
                        hi,
                        Missing::Skip,
                    )?;
                    let rows = points
                        .into_iter()
                        .map(|p| (p.t, p.value, p.variance.map(f64::sqrt)))
                        .collect();
                    return Ok(SelectResult { rows, approximate: true });
                }
                // Scalar estimate across the range: one pass accumulates
                // the HT components over every day, then finalizes into
                // the requested aggregate — SUM/COUNT variances add across
                // independent per-partition samples; AVG is the ratio of
                // the two totals (no plug-in variance).
                let total =
                    self.components_from_layer(layer, *bucket, plan.measure, &pred, lo, hi)?;
                let est = total.finalize(plan.agg);
                Ok(SelectResult {
                    rows: vec![(lo, est.value, est.variance.map(f64::sqrt))],
                    approximate: true,
                })
            }
        }
    }
}

/// A planned, repeatedly executable statement.
///
/// Created by [`crate::FlashPEngine::prepare`]. The query's names are
/// bound, its options validated, its predicate constant-folded (unless it
/// has `?` placeholders) and its serving sample layer chosen — once per
/// engine version. Execution through [`PreparedQuery::execute`] /
/// [`execute_with`] repeats none of that work while the engine version is
/// unchanged; the first execution after a
/// [`crate::FlashPEngine::publish`] re-plans against the new version, so
/// version-dependent plan constants (the clamped time range, dictionary
/// codes folded into the predicate, the layer's estimated row counts)
/// never go stale — a prepared `SELECT` whose statement covers a
/// newly published day includes it, exactly like a fresh one-shot of the
/// same text.
///
/// `PreparedQuery` is `Send + Sync` and cheap to share: wrap it in an
/// [`Arc`] (or just reference it from scoped threads) and execute from as
/// many threads as you like. The only synchronization on the execution
/// path is the per-execution snapshot of the engine's active version (a
/// read-lock held just long enough to clone an `Arc`) and a same-version
/// check on the handle's internal plan slot; estimation and forecasting
/// themselves run lock-free against the snapshot.
///
/// [`execute_with`]: PreparedQuery::execute_with
pub struct PreparedQuery {
    shared: Arc<crate::engine::EngineShared>,
    config: Arc<EngineConfig>,
    statement: Statement,
    /// Statement identity in the engine's shared [`SpecCache`] (FNV of
    /// the normalized text, computed at prepare time).
    stmt_key: u64,
    /// The plan for `cached.version`; re-planned lazily when the engine
    /// version moves.
    cached: Mutex<CachedPlan>,
}

struct CachedPlan {
    version: u64,
    plan: Arc<LogicalPlan>,
}

impl PreparedQuery {
    pub(crate) fn new(
        shared: Arc<crate::engine::EngineShared>,
        config: Arc<EngineConfig>,
        statement: Statement,
        stmt_key: u64,
        version: u64,
        plan: LogicalPlan,
    ) -> Self {
        PreparedQuery {
            shared,
            config,
            statement,
            stmt_key,
            cached: Mutex::new(CachedPlan { version, plan: Arc::new(plan) }),
        }
    }

    /// The parsed statement this query was prepared from.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// The plan the executor would run against the engine's current
    /// version (re-planning first if a publish happened since the last
    /// execution).
    pub fn plan(&self) -> Result<Arc<LogicalPlan>, EngineError> {
        self.current_plan(&self.shared.snapshot())
    }

    /// Number of `?` parameters [`PreparedQuery::execute_with`] expects.
    /// Fixed by the statement text, independent of re-planning.
    pub fn num_params(&self) -> usize {
        self.cached.lock().expect("prepared plan poisoned").plan.num_params()
    }

    /// Render the current plan as an `EXPLAIN` tree without executing.
    /// Sampled plans name the catalog version the next execution will
    /// answer from.
    pub fn explain(&self) -> Result<PlanNode, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let mut node =
            explain_plan(&plan, snapshot.table().schema(), self.shared.partial().is_some());
        annotate_day_split(&self.ctx(&snapshot), &plan, &[], &mut node);
        Ok(node)
    }

    /// Render the plan one execution of `params` would run: a dynamic
    /// `USING (?, ?)` range is resolved, clamped, and its serving layer
    /// re-selected exactly as [`PreparedQuery::execute_with`] would, so
    /// the tree shows the concrete range and per-binding layer choice
    /// instead of `range=dynamic`. When the day-partial cache is on, the
    /// sampled source additionally reports the `warm_days` / `cold_days`
    /// split this binding's window would currently hit.
    pub fn explain_with(&self, params: &[Literal]) -> Result<PlanNode, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        let mut node =
            explain_plan(&plan, snapshot.table().schema(), self.shared.partial().is_some());
        annotate_day_split(&self.ctx(&snapshot), &plan, params, &mut node);
        Ok(node)
    }

    /// The plan for `snapshot`'s version: the cached one when the version
    /// is unchanged, otherwise a fresh plan (planning runs outside the
    /// slot lock; the statement was validated at prepare time, so
    /// re-planning only fails if the engine state regressed, e.g. a
    /// handle whose catalog was never attached).
    fn current_plan(
        &self,
        snapshot: &crate::version::CatalogVersion,
    ) -> Result<Arc<LogicalPlan>, EngineError> {
        {
            let cached = self.cached.lock().expect("prepared plan poisoned");
            if cached.version == snapshot.version() {
                return Ok(cached.plan.clone());
            }
        }
        let planner = crate::planner::Planner::new(
            snapshot.table(),
            &self.config,
            snapshot.catalog().map(|c| c.as_ref()),
        );
        let plan = Arc::new(planner.plan(&self.statement)?);
        let mut cached = self.cached.lock().expect("prepared plan poisoned");
        cached.version = snapshot.version();
        cached.plan = plan.clone();
        // Range specializations are version-keyed in the engine's shared
        // cache; nothing to drop here — stale versions are purged at
        // publish, and lookups below never match them.
        Ok(plan)
    }

    /// The plan one execution runs: the prepared plan itself when its
    /// range is static, otherwise a specialization for this binding's
    /// resolved (clamped) range — served from the engine's shared
    /// [`SpecCache`] keyed on `(statement, version, range)`, so a
    /// dashboard cycling a handful of windows re-plans each at most once
    /// per publish, across every handle prepared from the same text.
    fn bound_plan(
        &self,
        snapshot: &crate::version::CatalogVersion,
        plan: Arc<LogicalPlan>,
        params: &[Literal],
    ) -> Result<Arc<LogicalPlan>, EngineError> {
        let window = match plan.range() {
            TimeRangeSlot::Dynamic(w) => w,
            TimeRangeSlot::Static(_) => return Ok(plan),
        };
        check_arity(plan.num_params(), params)?;
        let range = match &*plan {
            LogicalPlan::Forecast(_) => {
                Some(resolve_forecast_window(window, params, snapshot.table())?)
            }
            LogicalPlan::Select(_) => resolve_select_range(window, params, snapshot.table())?,
        };
        let key = SpecKey {
            stmt: self.stmt_key,
            version: snapshot.version(),
            range: range.map(|(a, b)| (a.0, b.0)),
        };
        if let Some(hit) = self.shared.spec().get(key) {
            return Ok(hit);
        }
        // Specialize outside the lock: layer re-selection walks catalog
        // indexes, and concurrent executions of distinct ranges shouldn't
        // serialize on it. A racing duplicate insert is harmless — both
        // specializations are identical by construction.
        let specialized = Arc::new(specialize_plan(
            &plan,
            range,
            snapshot.table(),
            snapshot.catalog().map(|c| c.as_ref()),
        )?);
        self.shared.spec().insert(key, specialized.clone());
        Ok(specialized)
    }

    /// Number of bind-time range specializations cached for this
    /// statement at the current engine version (always 0 for statements
    /// with a literal range).
    pub fn specialization_count(&self) -> usize {
        self.shared.spec().count_for(self.stmt_key, self.shared.snapshot().version())
    }

    /// Execute a parameterless prepared statement.
    pub fn execute(&self) -> Result<ExecOutput, EngineError> {
        self.execute_with(&[])
    }

    /// Execute, binding `?` placeholder `i` to `params[i]`. Snapshots the
    /// engine's active version once; the whole execution answers from
    /// exactly that version.
    pub fn execute_with(&self, params: &[Literal]) -> Result<ExecOutput, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        self.ctx(&snapshot).execute_plan(&plan, params)
    }

    /// Execute a prepared FORECAST (errors on SELECT).
    pub fn forecast_with(&self, params: &[Literal]) -> Result<ForecastResult, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        match &*plan {
            LogicalPlan::Forecast(p) => self.ctx(&snapshot).execute_forecast(p, params),
            LogicalPlan::Select(_) => Err(EngineError::WrongStatement { expected: "FORECAST" }),
        }
    }

    /// Execute a prepared SELECT (errors on FORECAST).
    pub fn select_with(&self, params: &[Literal]) -> Result<SelectResult, EngineError> {
        let snapshot = self.shared.snapshot();
        let plan = self.current_plan(&snapshot)?;
        let plan = self.bound_plan(&snapshot, plan, params)?;
        match &*plan {
            LogicalPlan::Select(p) => self.ctx(&snapshot).execute_select(p, params),
            LogicalPlan::Forecast(_) => Err(EngineError::WrongStatement { expected: "SELECT" }),
        }
    }

    fn ctx<'a>(&'a self, snapshot: &'a crate::version::CatalogVersion) -> ExecCtx<'a> {
        ExecCtx {
            table: snapshot.table(),
            config: &self.config,
            catalog: snapshot.catalog().map(|c| c.as_ref()),
            partial: self.shared.partial(),
        }
    }
}

/// Append `props` to the first node named `name` (depth-first). Returns
/// whether a node was found.
fn annotate_node(node: &mut PlanNode, name: &str, props: &[(&'static str, String)]) -> bool {
    if node.name == name {
        for (k, v) in props {
            node.props.push(((*k).to_string(), v.clone()));
        }
        return true;
    }
    node.children.iter_mut().any(|c| annotate_node(c, name, props))
}

/// Best-effort `warm_days` / `cold_days` annotation on the sampled
/// source of an EXPLAIN tree. Every rendering path — one-shot
/// `EXPLAIN <stmt>`, [`PreparedQuery::explain`], and
/// [`PreparedQuery::explain_with`] — goes through this helper so a bound
/// template's tree stays bit-identical to the literal statement's. A
/// split that cannot be computed (cache off, unbound `?` parameters,
/// full-scan source) leaves the tree untouched rather than erroring.
pub(crate) fn annotate_day_split(
    ctx: &ExecCtx<'_>,
    plan: &LogicalPlan,
    params: &[Literal],
    node: &mut PlanNode,
) {
    if let Ok(Some((warm, cold))) = ctx.day_split(plan, params) {
        annotate_node(
            node,
            "SampleEstimate",
            &[("warm_days", warm.to_string()), ("cold_days", cold.to_string())],
        );
    }
}
