//! Sharded scatter-gather execution: hash-partitioned `FlashPEngine`
//! shards behind one engine-shaped facade, returning the same answers at
//! any shard count.
//!
//! ## Virtual slots, physical shards
//!
//! Naive "N engines for N shards" sharding cannot be shard-count
//! invariant: regrouping rows reassociates f64 sums, and per-shard RNG
//! seeds would draw different samples at different N. [`ShardedEngine`]
//! therefore fixes the *data layout* independently of the fan-out width:
//! rows are hash-routed across a constant number of **virtual slots**
//! ([`ShardConfig::slots`], default 16), each an inner [`FlashPEngine`]
//! with a deterministic per-slot RNG seed derived from the base seed.
//! The configured **shard count** N only groups contiguous slots into
//! physical shards: each shard owns `slots/N` slot engines, executes
//! their partials on its own worker thread, and the combiner always
//! merges partials in global slot order. Estimates therefore depend on
//! `(data, seed, slots)` and never on N — `N=1 ≡ N=2 ≡ N=4 ≡ N=8`
//! bit for bit, which the shard-invariance oracle suite asserts.
//!
//! ## Scatter-gather
//!
//! A statement is planned **per slot** (dictionary codes folded into a
//! predicate are slot-local), its time range is resolved **once** against
//! the union of slot bounds, and every slot plan is specialized to that
//! one global range. Each slot then produces a [`ShardResponse`] of
//! per-day partials — exact [`AggState`]s from a full scan, or
//! Horvitz–Thompson [`EstimateComponents`] from its sample layer — and
//! the combiner merges them day by day in slot order: sums and counts
//! add, variance components add per HT algebra, and AVG finalizes as the
//! ratio of the merged totals. FORECAST model fitting runs once on the
//! merged training series. The partials type is transport-agnostic (plain
//! data, no wire coupling) so a service frontend can later move shards
//! behind sockets without changing the merge layer.
//!
//! ## Consistency under ingest/publish
//!
//! [`ShardedEngine::ingest`] routes rows to their slot's staged cycle;
//! [`ShardedEngine::publish`] publishes every slot and then swaps one
//! outer [`ShardSnapshot`] — an immutable vector of per-slot
//! [`CatalogVersion`]s under a single outer version number. Executions
//! snapshot the outer version exactly once, so a query can never observe
//! some slots before a publish and others after it, even while a
//! concurrent publisher is mid-swap.

use crate::catalog::{mix, next_version_id, DeltaStats, SampleCatalog};
use crate::config::EngineConfig;
use crate::engine::FlashPEngine;
use crate::error::EngineError;
use crate::explain::{explain_plan, PlanNode};
use crate::models::build_model;
use crate::planner::{
    resolve_forecast_window_bounds, resolve_select_range_bounds, specialize_forecast,
    specialize_select, ForecastPlan, LogicalPlan, Planner, ScanSource, SelectPlan, SourceSlot,
    TimeRangeSlot,
};
use crate::prepared::check_arity;
use crate::result::{ExecOutput, ForecastOut, ForecastResult, SelectResult, SeriesPoint, Timing};
use crate::version::{CatalogVersion, IngestBatch, IngestItem, PublishStats};
use flashp_query::{parse, split_select_constraint, Literal, Statement};
use flashp_sampling::EstimateComponents;
use flashp_storage::{AggFunc, AggState, SumMode, TimeSeriesTable, Timestamp, Value};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Salt for per-slot seed derivation: `slot_seed = mix(base_seed, slot,
/// SHARD_SEED_SALT)`. Changing it re-seeds every slot, so it is part of
/// the layout contract documented in ARCHITECTURE.md.
const SHARD_SEED_SALT: u64 = 0x5AAD_ED5E;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(FNV_PRIME);
    }
}

/// Stable routing hash of a row's dimension key + timestamp (FNV-1a over
/// a type-tagged byte encoding — independent of platform hashers, process
/// randomization, and dictionary code assignment, so the same row routes
/// to the same slot in every run). Strings hash their bytes (with a
/// terminator so `("ab","c")` ≠ `("a","bc")`), floats their IEEE bits.
pub fn route_hash(dims: &[Value], t: Timestamp) -> u64 {
    let mut h = FNV_OFFSET;
    for v in dims {
        match v {
            Value::Int(i) => {
                fnv(&mut h, &[0u8]);
                fnv(&mut h, &i.to_le_bytes());
            }
            Value::Float(f) => {
                fnv(&mut h, &[1u8]);
                fnv(&mut h, &f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                fnv(&mut h, &[2u8]);
                fnv(&mut h, s.as_bytes());
                fnv(&mut h, &[0xFF]);
            }
        }
    }
    fnv(&mut h, &t.0.to_le_bytes());
    h
}

/// Shard layout: how many physical shards fan out over how many virtual
/// slots. See the [module docs](self) for why the two are separate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Physical shards (fan-out worker groups), `1 ..= slots`.
    pub shards: usize,
    /// Virtual slots (inner engines). Fixed per deployment: answers
    /// depend on the slot count, not the shard count.
    pub slots: usize,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig { shards: 1, slots: 16 }
    }
}

impl ShardConfig {
    /// The default slot layout with `shards` physical shards.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig { shards, ..Default::default() }
    }

    fn validate(&self) -> Result<(), EngineError> {
        if self.slots == 0 {
            return Err(EngineError::Config("shard layout needs at least one slot".to_string()));
        }
        if self.shards == 0 || self.shards > self.slots {
            return Err(EngineError::Config(format!(
                "shard count {} must be between 1 and the slot count {}",
                self.shards, self.slots
            )));
        }
        Ok(())
    }

    /// The contiguous slot range physical shard `shard` owns.
    pub fn slot_range(&self, shard: usize) -> std::ops::Range<usize> {
        (shard * self.slots / self.shards)..((shard + 1) * self.slots / self.shards)
    }

    /// The physical shard owning `slot`.
    pub fn shard_of_slot(&self, slot: usize) -> usize {
        (0..self.shards).find(|&k| self.slot_range(k).contains(&slot)).expect("slot in layout")
    }
}

/// One immutable cross-shard snapshot: the per-slot [`CatalogVersion`]s a
/// sharded execution answers from, under a single outer version number.
pub struct ShardSnapshot {
    version: u64,
    slots: Vec<Arc<CatalogVersion>>,
}

impl ShardSnapshot {
    fn new(slots: Vec<Arc<CatalogVersion>>) -> Self {
        ShardSnapshot { version: next_version_id(), slots }
    }

    /// The outer version number; bumps on every effective
    /// [`ShardedEngine::publish`].
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The per-slot versions, in slot order.
    pub fn slots(&self) -> &[Arc<CatalogVersion>] {
        &self.slots
    }

    /// Union of the slot tables' time bounds — the bounds the whole
    /// logical table would report, used to resolve time ranges once,
    /// globally, instead of per slot.
    pub fn union_bounds(&self) -> Option<(Timestamp, Timestamp)> {
        let mut out: Option<(Timestamp, Timestamp)> = None;
        for v in &self.slots {
            if let Some((lo, hi)) = v.table().time_bounds() {
                out = Some(match out {
                    None => (lo, hi),
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                });
            }
        }
        out
    }
}

/// One day's partial aggregate from one slot — the unit the combiner
/// merges in slot order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DayPartial {
    /// Exact per-day aggregate state from a full scan; merging adds sums
    /// and counts exactly.
    Exact(AggState),
    /// Horvitz–Thompson components from a sample layer; sums, counts and
    /// their variance components all add across independent per-slot
    /// samples.
    Sampled(EstimateComponents),
}

impl DayPartial {
    /// Merge another slot's partial for the same day into this one.
    /// Errors if the two came from different execution modes (cannot
    /// happen for partials produced by one planned statement — the
    /// exact/sampled decision is plan-level and uniform across slots).
    pub fn merge(&mut self, other: &DayPartial) -> Result<(), EngineError> {
        match (self, other) {
            (DayPartial::Exact(a), DayPartial::Exact(b)) => {
                a.merge(*b);
                Ok(())
            }
            (DayPartial::Sampled(a), DayPartial::Sampled(b)) => {
                a.merge(b);
                Ok(())
            }
            _ => Err(EngineError::Config(
                "cannot merge exact and sampled shard partials".to_string(),
            )),
        }
    }

    /// Finalize into `(value, variance)`; exact partials have no
    /// estimator variance.
    pub fn finalize(&self, agg: AggFunc) -> (f64, Option<f64>) {
        match self {
            DayPartial::Exact(s) => (s.finalize(agg), None),
            DayPartial::Sampled(c) => {
                let e = c.finalize(agg);
                (e.value, e.variance)
            }
        }
    }
}

/// One shard's (or slot's) contribution to a scatter-gather execution.
///
/// Deliberately transport-agnostic: plain owned data with no references
/// into the engine and no wire format, so the same combiner serves
/// in-process slots today and socket-remote shards later.
#[derive(Debug, Clone, Default)]
pub struct ShardResponse {
    /// Per-day partials for the days this shard holds, ascending in time.
    /// Days the shard has no partition (or stored sample) for are absent.
    pub days: Vec<(Timestamp, DayPartial)>,
    /// Planner-estimated rows backing this response (EXPLAIN's
    /// per-shard `est_rows`).
    pub est_rows: usize,
    /// The resolved scan range the partials cover (`None` when the global
    /// clamped range was empty — the response carries nothing).
    pub range: Option<(Timestamp, Timestamp)>,
    /// Whether the partials came from a sample layer.
    pub sampled: bool,
    /// Serving sampler label (result metadata; identical across slots).
    pub sampler: String,
    /// Serving sampling rate (result metadata; identical across slots).
    pub rate_used: f64,
}

/// Merged partials plus result metadata, ready to finalize.
struct Merged {
    /// Per-day merged partials; each day was merged in slot order.
    days: BTreeMap<Timestamp, DayPartial>,
    range: Option<(Timestamp, Timestamp)>,
    sampled: bool,
    sampler: String,
    rate_used: f64,
}

/// Merge shard responses in the order given (callers pass slot order —
/// that fixed order is what makes the f64 result independent of the
/// physical shard count).
fn merge_responses(responses: &[ShardResponse]) -> Result<Merged, EngineError> {
    let mut days: BTreeMap<Timestamp, DayPartial> = BTreeMap::new();
    let mut range: Option<(Timestamp, Timestamp)> = None;
    let mut sampled = false;
    let mut sampler = String::new();
    let mut rate_used = 1.0;
    for r in responses {
        if let Some((lo, hi)) = r.range {
            range = Some(match range {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
            if sampler.is_empty() {
                sampler = r.sampler.clone();
                rate_used = r.rate_used;
            }
            sampled |= r.sampled;
        }
        for (t, partial) in &r.days {
            match days.entry(*t) {
                Entry::Vacant(e) => {
                    e.insert(*partial);
                }
                Entry::Occupied(mut e) => e.get_mut().merge(partial)?,
            }
        }
    }
    if sampler.is_empty() {
        sampler = "full".to_string();
    }
    Ok(Merged { days, range, sampled, sampler, rate_used })
}

/// Compute one slot's [`ShardResponse`] for a specialized (static-range)
/// plan against one slot version. Execution borrows the slot *engine's*
/// context, so each slot answers through its own day-partial cache — one
/// cache per virtual slot, preserving bit-for-bit shard-count invariance
/// (cell identities and day partials never cross slot boundaries).
fn slot_response(
    engine: &FlashPEngine,
    version: &CatalogVersion,
    plan: &LogicalPlan,
    params: &[Literal],
) -> Result<ShardResponse, EngineError> {
    let ctx = engine.ctx(version);
    let (predicate, source, measure, range, fast_sum) = match plan {
        LogicalPlan::Forecast(p) => {
            (&p.predicate, p.source.planned()?, p.measure, Some(p.window()?), p.fast_sum)
        }
        LogicalPlan::Select(p) => {
            (&p.predicate, p.source.planned()?, p.measure, p.static_range()?, p.fast_sum)
        }
    };
    let Some((lo, hi)) = range else {
        return Ok(ShardResponse {
            sampler: "full".to_string(),
            rate_used: 1.0,
            ..Default::default()
        });
    };
    let pred = ctx.resolve_predicate(predicate, params)?;
    let sum = if fast_sum { SumMode::Fast } else { SumMode::Exact };
    match source {
        ScanSource::FullScan { est_rows } => {
            let days = ctx
                .day_states_exact(measure, &pred, lo, hi, sum)?
                .into_iter()
                .map(|(t, s)| (t, DayPartial::Exact(s)))
                .collect();
            Ok(ShardResponse {
                days,
                est_rows: *est_rows,
                range: Some((lo, hi)),
                sampled: false,
                sampler: source.sampler_label().to_string(),
                rate_used: source.rate_used(),
            })
        }
        ScanSource::SampleLayer { bucket, est_rows, .. } => {
            let layer = ctx.layer(source)?;
            let comps = ctx.day_components_from_layer(layer, *bucket, measure, &pred, lo, hi)?;
            let days = lo
                .range_inclusive(hi)
                .zip(comps)
                .filter_map(|(t, c)| c.map(|c| (t, DayPartial::Sampled(c))))
                .collect();
            Ok(ShardResponse {
                days,
                est_rows: *est_rows,
                range: Some((lo, hi)),
                sampled: true,
                sampler: source.sampler_label().to_string(),
                rate_used: source.rate_used(),
            })
        }
    }
}

/// The shared, swappable state behind every clone of a sharded engine
/// (and behind every [`ShardedPrepared`]).
struct ShardedShared {
    /// The slot engines, in slot order. Their own ingest/publish cycles
    /// run under the outer `cycle` lock so the outer snapshot swap sees
    /// a consistent set of slot versions.
    slots: Vec<FlashPEngine>,
    /// The active outer snapshot; executions clone the `Arc` once.
    active: RwLock<Arc<ShardSnapshot>>,
    /// Serializes ingest routing and publish across slots.
    cycle: Mutex<()>,
}

impl ShardedShared {
    fn snapshot(&self) -> Arc<ShardSnapshot> {
        self.active.read().expect("shard snapshot lock poisoned").clone()
    }

    /// Whether the slot engines carry day-partial caches (every slot is
    /// built from the same base configuration, so one answers for all).
    fn partial_enabled(&self) -> bool {
        self.slots.first().is_some_and(|e| e.partial_enabled())
    }
}

/// Plan a statement per slot (each slot folds its own dictionary codes).
/// Slots with empty tables are skipped — they hold no partials and, for
/// SELECT, would reject planning outright; when *every* slot is empty,
/// slot 0 is planned anyway so the caller surfaces the same "empty
/// table" behavior a single engine would.
fn plan_slots(
    shared: &ShardedShared,
    snapshot: &ShardSnapshot,
    stmt: &Statement,
) -> Result<Vec<(usize, Arc<LogicalPlan>)>, EngineError> {
    let mut planned = Vec::new();
    for (i, version) in snapshot.slots().iter().enumerate() {
        if version.table().time_bounds().is_none() {
            continue;
        }
        let planner = Planner::new(
            version.table(),
            shared.slots[i].config(),
            version.catalog().map(|c| c.as_ref()),
        );
        planned.push((i, Arc::new(planner.plan(stmt)?)));
    }
    if planned.is_empty() {
        let version = &snapshot.slots()[0];
        let planner = Planner::new(
            version.table(),
            shared.slots[0].config(),
            version.catalog().map(|c| c.as_ref()),
        );
        planned.push((0, Arc::new(planner.plan(stmt)?)));
    }
    Ok(planned)
}

/// Specialize every slot plan to one globally resolved range, fan the
/// partial computations out across the physical shards, merge in slot
/// order, and finalize. The heart of scatter-gather execution.
fn execute_planned(
    shared: &ShardedShared,
    shard_config: &ShardConfig,
    snapshot: &ShardSnapshot,
    stmt: &Statement,
    planned: &[(usize, Arc<LogicalPlan>)],
    params: &[Literal],
) -> Result<ExecOutput, EngineError> {
    let first = &planned[0].1;
    check_arity(first.num_params(), params)?;
    let bounds = snapshot.union_bounds();

    match &**first {
        LogicalPlan::Forecast(fp) => {
            // The window is global by construction: a literal window is
            // never clamped at plan time (identical in every slot plan),
            // and a dynamic one resolves here, once, against the union
            // bounds.
            let range = match &fp.range {
                TimeRangeSlot::Static(Some(r)) => *r,
                TimeRangeSlot::Static(None) => {
                    return Err(EngineError::Config(
                        "FORECAST window must bound both ends".to_string(),
                    ))
                }
                TimeRangeSlot::Dynamic(w) => resolve_forecast_window_bounds(w, params, bounds)?,
            };
            let specialized = specialize_slots(snapshot, planned, |p, version| {
                let LogicalPlan::Forecast(p) = p else {
                    return Err(EngineError::WrongStatement { expected: "FORECAST" });
                };
                Ok(LogicalPlan::Forecast(specialize_forecast(
                    p,
                    range,
                    version.table(),
                    version.catalog().map(|c| c.as_ref()),
                )?))
            })?;
            let agg_start = Instant::now();
            let responses = gather(shared, shard_config, snapshot, &specialized, params)?;
            let merged = merge_responses(&responses)?;
            let aggregation = agg_start.elapsed();
            Ok(ExecOutput::Forecast(Box::new(assemble_forecast(fp, range, merged, aggregation)?)))
        }
        LogicalPlan::Select(sp) => {
            // Resolve the global clamped range once. A static plan's
            // per-slot ranges were clamped to *slot* bounds at plan time,
            // so re-derive the clamp from the statement's window against
            // the union bounds — that is what one engine over the whole
            // table would have planned.
            let range = match &sp.range {
                TimeRangeSlot::Dynamic(w) => resolve_select_range_bounds(w, params, bounds)?,
                TimeRangeSlot::Static(_) => {
                    let Statement::Select(s) = stmt else {
                        return Err(EngineError::WrongStatement { expected: "SELECT" });
                    };
                    let (ulo, uhi) =
                        bounds.ok_or_else(|| EngineError::Config("empty table".to_string()))?;
                    let (lo, hi) =
                        match split_select_constraint(s)?.window.resolve_range(&[], Some(uhi))? {
                            Some((a, b)) => (a.max(ulo), b.min(uhi)),
                            None => (ulo, uhi),
                        };
                    if hi < lo {
                        None
                    } else {
                        Some((lo, hi))
                    }
                }
            };
            let specialized = specialize_slots(snapshot, planned, |p, version| {
                let LogicalPlan::Select(p) = p else {
                    return Err(EngineError::WrongStatement { expected: "SELECT" });
                };
                Ok(LogicalPlan::Select(specialize_select(
                    p,
                    range,
                    version.table(),
                    version.catalog().map(|c| c.as_ref()),
                )?))
            })?;
            let responses = gather(shared, shard_config, snapshot, &specialized, params)?;
            let merged = merge_responses(&responses)?;
            Ok(ExecOutput::Select(assemble_select(sp, merged)?))
        }
    }
}

/// Apply `f` to every planned slot plan, keeping slot indices.
fn specialize_slots(
    snapshot: &ShardSnapshot,
    planned: &[(usize, Arc<LogicalPlan>)],
    f: impl Fn(&LogicalPlan, &CatalogVersion) -> Result<LogicalPlan, EngineError>,
) -> Result<Vec<(usize, Arc<LogicalPlan>)>, EngineError> {
    planned.iter().map(|(i, plan)| Ok((*i, Arc::new(f(plan, &snapshot.slots()[*i])?)))).collect()
}

/// Scatter: run every planned slot's partial computation on its owning
/// physical shard's worker thread, then gather the responses back **in
/// slot order** (and report the slot-order-first error on failure, so
/// error surfaces are as deterministic as results).
fn gather(
    shared: &ShardedShared,
    shard_config: &ShardConfig,
    snapshot: &ShardSnapshot,
    specialized: &[(usize, Arc<LogicalPlan>)],
    params: &[Literal],
) -> Result<Vec<ShardResponse>, EngineError> {
    let mut results: Vec<Option<Result<ShardResponse, EngineError>>> =
        (0..specialized.len()).map(|_| None).collect();
    if shard_config.shards <= 1 || specialized.len() <= 1 {
        for (pos, (slot, plan)) in specialized.iter().enumerate() {
            let version = &snapshot.slots()[*slot];
            results[pos] = Some(slot_response(&shared.slots[*slot], version, plan, params));
        }
    } else {
        // One worker per physical shard, each executing the planned slots
        // it owns; results land back in slot-order positions.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); shard_config.shards];
        for (pos, (slot, _)) in specialized.iter().enumerate() {
            groups[shard_config.shard_of_slot(*slot)].push(pos);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = groups
                .iter()
                .filter(|g| !g.is_empty())
                .map(|group| {
                    scope.spawn(move || {
                        group
                            .iter()
                            .map(|&pos| {
                                let (slot, plan) = &specialized[pos];
                                let version = &snapshot.slots()[*slot];
                                (pos, slot_response(&shared.slots[*slot], version, plan, params))
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (pos, result) in handle.join().expect("shard worker panicked") {
                    results[pos] = Some(result);
                }
            }
        });
    }
    // Surface errors in slot order, then unwrap the successes.
    results
        .into_iter()
        .map(|r| r.expect("every planned slot produced a result"))
        .collect::<Result<Vec<_>, _>>()
}

/// Finalize a merged FORECAST: enforce global training-series contiguity
/// (a day is covered when *any* slot holds it), then fit and forecast
/// once on the merged series — phase 2 runs at the combiner, not per
/// shard.
fn assemble_forecast(
    plan: &ForecastPlan,
    (t_start, t_end): (Timestamp, Timestamp),
    merged: Merged,
    aggregation: std::time::Duration,
) -> Result<ForecastResult, EngineError> {
    let expected = (t_end - t_start + 1) as usize;
    if merged.days.len() != expected {
        if merged.sampled {
            let missing = t_start
                .range_inclusive(t_end)
                .find(|t| !merged.days.contains_key(t))
                .expect("some day is missing");
            return Err(EngineError::SamplesUnavailable(format!(
                "no sample for timestamp {missing}"
            )));
        }
        return Err(EngineError::SamplesUnavailable(format!(
            "table covers {} of {} requested timestamps",
            merged.days.len(),
            expected
        )));
    }
    let estimates: Vec<SeriesPoint> = merged
        .days
        .iter()
        .map(|(t, p)| {
            let (value, variance) = p.finalize(plan.agg);
            SeriesPoint { t: *t, value, variance }
        })
        .collect();

    let fit_start = Instant::now();
    let values: Vec<f64> = estimates.iter().map(|p| p.value).collect();
    let mut model = build_model(&plan.model)?;
    let summary = model.fit(&values)?;
    let mut fc = model.forecast(plan.horizon, plan.confidence)?;
    let mean_noise_variance = {
        let vars: Vec<f64> = estimates.iter().filter_map(|p| p.variance).collect();
        if vars.is_empty() {
            0.0
        } else {
            vars.iter().sum::<f64>() / vars.len() as f64
        }
    };
    if plan.noise_aware && mean_noise_variance > 0.0 {
        fc = flashp_forecast::noise::widen_with_noise(&fc, mean_noise_variance)?;
    }
    let forecasting = fit_start.elapsed();

    let forecasts: Vec<ForecastOut> = fc
        .points
        .iter()
        .map(|p| ForecastOut {
            t: t_end + p.step as i64,
            value: p.value,
            lo: p.lo,
            hi: p.hi,
            std_err: p.std_err,
        })
        .collect();
    Ok(ForecastResult {
        estimates,
        forecasts,
        model: model.name(),
        sampler: merged.sampler,
        rate_used: merged.rate_used,
        confidence: plan.confidence,
        sigma2: summary.sigma2,
        mean_noise_variance,
        timing: Timing { aggregation, forecasting },
    })
}

/// Finalize a merged SELECT: grouped queries emit one row per merged day;
/// scalar queries fold the merged per-day partials across days in time
/// order and finalize once (AVG as the ratio of merged totals).
fn assemble_select(plan: &SelectPlan, merged: Merged) -> Result<SelectResult, EngineError> {
    let Some((lo, _)) = merged.range else {
        return Ok(SelectResult { rows: Vec::new(), approximate: false });
    };
    if plan.group_by_time {
        let rows = merged
            .days
            .iter()
            .map(|(t, p)| {
                let (value, variance) = p.finalize(plan.agg);
                (*t, value, variance.map(f64::sqrt))
            })
            .collect();
        return Ok(SelectResult { rows, approximate: merged.sampled });
    }
    if merged.sampled {
        let mut total = EstimateComponents::default();
        for p in merged.days.values() {
            let DayPartial::Sampled(c) = p else {
                return Err(EngineError::Config(
                    "cannot merge exact and sampled shard partials".to_string(),
                ));
            };
            total.merge(c);
        }
        let est = total.finalize(plan.agg);
        Ok(SelectResult {
            rows: vec![(lo, est.value, est.variance.map(f64::sqrt))],
            approximate: true,
        })
    } else {
        let mut total = AggState::default();
        for p in merged.days.values() {
            let DayPartial::Exact(s) = p else {
                return Err(EngineError::Config(
                    "cannot merge exact and sampled shard partials".to_string(),
                ));
            };
            total.merge(*s);
        }
        Ok(SelectResult { rows: vec![(lo, total.finalize(plan.agg), None)], approximate: false })
    }
}

/// Render the scatter-gather EXPLAIN tree: a `ScatterGather` root
/// (`shards`, `slots`, total `est_rows`), one `Shard` child per physical
/// shard with its slot range and estimated rows, and the first planned
/// slot's plan as a representative subtree.
fn scatter_explain(
    shard_config: &ShardConfig,
    snapshot: &ShardSnapshot,
    planned: &[(usize, Arc<LogicalPlan>)],
    partial_cache: bool,
) -> PlanNode {
    let est = |plan: &LogicalPlan| match plan.source() {
        SourceSlot::Planned(s) => s.est_rows(),
        SourceSlot::Deferred => 0,
    };
    let total: usize = planned.iter().map(|(_, p)| est(p)).sum();
    let mut children: Vec<PlanNode> = (0..shard_config.shards)
        .map(|shard| {
            let range = shard_config.slot_range(shard);
            let rows: usize =
                planned.iter().filter(|(i, _)| range.contains(i)).map(|(_, p)| est(p)).sum();
            PlanNode {
                name: "Shard".to_string(),
                props: vec![
                    ("id".to_string(), shard.to_string()),
                    ("slots".to_string(), format!("{}..{}", range.start, range.end)),
                    ("est_rows".to_string(), rows.to_string()),
                ],
                children: Vec::new(),
            }
        })
        .collect();
    let (slot0, plan0) = &planned[0];
    children.push(explain_plan(plan0, snapshot.slots()[*slot0].table().schema(), partial_cache));
    PlanNode {
        name: "ScatterGather".to_string(),
        props: vec![
            ("shards".to_string(), shard_config.shards.to_string()),
            ("slots".to_string(), shard_config.slots.to_string()),
            ("est_rows".to_string(), total.to_string()),
        ],
        children,
    }
}

/// Hash-partition a table's rows into per-slot tables. Dimension values
/// are decoded to logical [`Value`]s first, so routing is independent of
/// the source table's dictionary code assignment, and each slot table
/// re-interns its own dictionaries.
fn split_table(table: &TimeSeriesTable, slots: usize) -> Result<Vec<TimeSeriesTable>, EngineError> {
    let schema = table.schema().clone();
    let mut out: Vec<TimeSeriesTable> =
        (0..slots).map(|_| TimeSeriesTable::new(schema.clone())).collect();
    let dicts = table.dictionaries();
    let num_dims = schema.dimensions().len();
    let num_measures = schema.num_measures();
    let mut dims: Vec<Value> = Vec::with_capacity(num_dims);
    let mut measures: Vec<f64> = Vec::with_capacity(num_measures);
    for (t, partition) in table.partitions() {
        for i in 0..partition.num_rows() {
            dims.clear();
            for d in 0..num_dims {
                dims.push(partition.dim(d).display_value(i, dicts[d].as_ref()));
            }
            measures.clear();
            for m in 0..num_measures {
                measures.push(partition.measure(m)[i]);
            }
            let slot = (route_hash(&dims, t) % slots as u64) as usize;
            out[slot].append_row(t, &dims, &measures)?;
        }
    }
    Ok(out)
}

/// Per-physical-shard counters, surfaced by [`ShardedEngine::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Physical shard index.
    pub shard: usize,
    /// The contiguous slot range this shard owns, `[start, end)`.
    pub slots: (usize, usize),
    /// Rows visible in this shard's active slot versions.
    pub rows: usize,
    /// Rows staged for ingest across this shard's slots.
    pub pending_rows: usize,
    /// Partitions the staged rows touch across this shard's slots.
    pub pending_partitions: usize,
    /// Day-partial cache counters summed over this shard's slots (each
    /// slot engine owns its own cache); `None` when the cache is
    /// disabled.
    pub partial_cache: Option<crate::partial_cache::PartialCacheStats>,
}

/// A point-in-time snapshot of sharded-engine counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedStats {
    /// The active outer [`ShardSnapshot::version`].
    pub version: u64,
    /// Highest slot catalog version, if catalogs are attached.
    pub catalog_version: Option<u64>,
    /// Per-physical-shard counters, in shard order.
    pub shards: Vec<ShardStats>,
}

impl ShardedStats {
    /// Total visible rows across shards.
    pub fn total_rows(&self) -> usize {
        self.shards.iter().map(|s| s.rows).sum()
    }

    /// Total staged-but-unpublished rows across shards.
    pub fn pending_rows(&self) -> usize {
        self.shards.iter().map(|s| s.pending_rows).sum()
    }

    /// Total partitions the staged rows touch across shards.
    pub fn pending_partitions(&self) -> usize {
        self.shards.iter().map(|s| s.pending_partitions).sum()
    }
}

/// A sharded FlashP engine: hash-partitioned slot engines behind the
/// same execute/prepare/ingest/publish surface as [`FlashPEngine`]. See
/// the [module docs](self) for the layout and invariance contract.
#[derive(Clone)]
pub struct ShardedEngine {
    shared: Arc<ShardedShared>,
    config: Arc<EngineConfig>,
    shard_config: ShardConfig,
}

impl ShardedEngine {
    /// Shard a table's rows across the layout's slots, exact queries
    /// only (no sample catalogs). Slot `s` gets the engine configuration
    /// with seed `mix(config.seed, s, SHARD_SEED_SALT)`.
    pub fn new(
        table: &TimeSeriesTable,
        config: EngineConfig,
        shard_config: ShardConfig,
    ) -> Result<Self, EngineError> {
        Self::build(table, config, shard_config, false)
    }

    /// Shard a table and run the offline sample preprocessor per slot, so
    /// sampled queries serve from per-slot catalogs. Per-slot draws use
    /// the derived slot seeds — deterministic for a given `(base seed,
    /// slot layout)` and independent of the shard count.
    pub fn with_catalogs(
        table: &TimeSeriesTable,
        config: EngineConfig,
        shard_config: ShardConfig,
    ) -> Result<Self, EngineError> {
        Self::build(table, config, shard_config, true)
    }

    fn build(
        table: &TimeSeriesTable,
        config: EngineConfig,
        shard_config: ShardConfig,
        sampled: bool,
    ) -> Result<Self, EngineError> {
        shard_config.validate()?;
        let slot_tables = split_table(table, shard_config.slots)?;
        let mut slots = Vec::with_capacity(shard_config.slots);
        for (slot, slot_table) in slot_tables.into_iter().enumerate() {
            let slot_config = EngineConfig {
                seed: mix(config.seed, slot as u64, SHARD_SEED_SALT),
                ..config.clone()
            };
            let engine = if sampled {
                let catalog = SampleCatalog::build(&slot_table, &slot_config)?;
                FlashPEngine::with_catalog(slot_table, slot_config, catalog)
            } else {
                FlashPEngine::new(slot_table, slot_config)
            };
            slots.push(engine);
        }
        let snapshot = ShardSnapshot::new(slots.iter().map(|e| e.snapshot()).collect());
        Ok(ShardedEngine {
            shared: Arc::new(ShardedShared {
                slots,
                active: RwLock::new(Arc::new(snapshot)),
                cycle: Mutex::new(()),
            }),
            config: Arc::new(config),
            shard_config,
        })
    }

    /// The shard layout.
    pub fn shard_config(&self) -> ShardConfig {
        self.shard_config
    }

    /// The base engine configuration (slot engines run seed-derived
    /// copies of it).
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot the active outer [`ShardSnapshot`].
    pub fn snapshot(&self) -> Arc<ShardSnapshot> {
        self.shared.snapshot()
    }

    /// The active outer version; bumps on every effective
    /// [`ShardedEngine::publish`].
    pub fn version(&self) -> u64 {
        self.snapshot().version()
    }

    /// Per-physical-shard counters (rows, staged ingest backlog), plus
    /// the outer version — the sharded counterpart of
    /// [`FlashPEngine::stats`].
    pub fn stats(&self) -> ShardedStats {
        let snapshot = self.snapshot();
        let mut catalog_version: Option<u64> = None;
        let shards = (0..self.shard_config.shards)
            .map(|shard| {
                let range = self.shard_config.slot_range(shard);
                let mut rows = 0;
                let mut pending_rows = 0;
                let mut pending_partitions = 0;
                let mut partial_cache: Option<crate::partial_cache::PartialCacheStats> = None;
                for slot in range.clone() {
                    rows += snapshot.slots()[slot].table().num_rows();
                    let stats = self.shared.slots[slot].stats();
                    pending_rows += stats.pending_rows;
                    pending_partitions += stats.pending_partitions;
                    catalog_version = catalog_version.max(stats.catalog_version);
                    if let Some(pc) = stats.partial_cache {
                        partial_cache.get_or_insert_with(Default::default).add(&pc);
                    }
                }
                ShardStats {
                    shard,
                    slots: (range.start, range.end),
                    rows,
                    pending_rows,
                    pending_partitions,
                    partial_cache,
                }
            })
            .collect();
        ShardedStats { version: snapshot.version(), catalog_version, shards }
    }

    /// Stage a batch of rows, each routed to its slot by
    /// [`route_hash`]`(dims, t) % slots`. Rows are invisible to queries
    /// until the next [`ShardedEngine::publish`]. Pre-built partition
    /// items are rejected up front (their dictionary codes are interned
    /// against a single table and cannot be re-routed row-wise) — the
    /// batch stages nothing in that case. Staging is atomic per slot:
    /// a mid-batch type error can leave earlier slots staged (the next
    /// publish simply includes them).
    pub fn ingest(&self, batch: IngestBatch) -> Result<usize, EngineError> {
        if batch.is_empty() {
            return Ok(0);
        }
        let items = batch.into_items();
        if items.iter().any(|i| matches!(i, IngestItem::Partition { .. })) {
            return Err(EngineError::Config(
                "sharded ingest accepts row items only: pre-built partitions are interned \
                 against a single table's dictionaries"
                    .to_string(),
            ));
        }
        let slots = self.shard_config.slots;
        let mut per_slot: Vec<IngestBatch> = (0..slots).map(|_| IngestBatch::new()).collect();
        for item in items {
            let IngestItem::Rows { t, rows } = item else { unreachable!("partitions rejected") };
            for (dims, measures) in rows {
                let slot = (route_hash(&dims, t) % slots as u64) as usize;
                per_slot[slot].push_row(t, &dims, &measures);
            }
        }
        let _cycle = self.shared.cycle.lock().expect("shard cycle lock poisoned");
        let mut staged = 0;
        for (slot, batch) in per_slot.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            staged += self.shared.slots[slot].ingest(batch)?;
        }
        Ok(staged)
    }

    /// Publish every slot's staged rows, then swap one new outer
    /// [`ShardSnapshot`] over the freshly published slot versions —
    /// executions either see the whole publish or none of it. A publish
    /// with nothing staged anywhere is a no-op that keeps the outer
    /// version. Returns slot-merged [`PublishStats`] (cell counters sum;
    /// the catalog version reports the highest slot catalog).
    pub fn publish(&self) -> Result<PublishStats, EngineError> {
        let start = Instant::now();
        let _cycle = self.shared.cycle.lock().expect("shard cycle lock poisoned");
        let mut appended = 0;
        let mut changed = 0;
        let mut delta = DeltaStats::default();
        let mut catalog_version: Option<u64> = None;
        for engine in &self.shared.slots {
            let stats = engine.publish()?;
            appended += stats.appended_rows;
            changed += stats.changed_partitions;
            delta.add(&stats.delta);
            catalog_version = catalog_version.max(stats.catalog_version);
        }
        if appended == 0 {
            let snapshot = self.snapshot();
            return Ok(PublishStats {
                version: snapshot.version(),
                catalog_version,
                appended_rows: 0,
                changed_partitions: 0,
                delta: DeltaStats::default(),
                duration: start.elapsed(),
            });
        }
        let next =
            Arc::new(ShardSnapshot::new(self.shared.slots.iter().map(|e| e.snapshot()).collect()));
        let stats = PublishStats {
            version: next.version(),
            catalog_version,
            appended_rows: appended,
            changed_partitions: changed,
            delta,
            duration: start.elapsed(),
        };
        *self.shared.active.write().expect("shard snapshot lock poisoned") = next;
        Ok(stats)
    }

    /// Execute any statement with scatter-gather. `EXPLAIN <stmt>`
    /// renders the `ScatterGather` plan tree.
    pub fn execute(&self, sql: &str) -> Result<ExecOutput, EngineError> {
        let stmt = parse(sql)?;
        if let Statement::Explain(inner) = &stmt {
            let snapshot = self.snapshot();
            let planned = plan_slots(&self.shared, &snapshot, inner)?;
            return Ok(ExecOutput::Plan(scatter_explain(
                &self.shard_config,
                &snapshot,
                &planned,
                self.shared.partial_enabled(),
            )));
        }
        let snapshot = self.snapshot();
        let planned = plan_slots(&self.shared, &snapshot, &stmt)?;
        execute_planned(&self.shared, &self.shard_config, &snapshot, &stmt, &planned, &[])
    }

    /// Execute a FORECAST statement (errors on SELECT/EXPLAIN).
    pub fn forecast(&self, sql: &str) -> Result<ForecastResult, EngineError> {
        match self.execute(sql)? {
            ExecOutput::Forecast(r) => Ok(*r),
            _ => Err(EngineError::WrongStatement { expected: "FORECAST" }),
        }
    }

    /// Execute a SELECT statement (errors on FORECAST/EXPLAIN).
    pub fn select(&self, sql: &str) -> Result<SelectResult, EngineError> {
        match self.execute(sql)? {
            ExecOutput::Select(r) => Ok(r),
            _ => Err(EngineError::WrongStatement { expected: "SELECT" }),
        }
    }

    /// Render the scatter-gather plan without executing. Accepts the
    /// statement with or without a leading `EXPLAIN`.
    pub fn explain(&self, sql: &str) -> Result<PlanNode, EngineError> {
        let stmt = match parse(sql)? {
            Statement::Explain(inner) => *inner,
            other => other,
        };
        let snapshot = self.snapshot();
        let planned = plan_slots(&self.shared, &snapshot, &stmt)?;
        Ok(scatter_explain(&self.shard_config, &snapshot, &planned, self.shared.partial_enabled()))
    }

    /// Prepare a statement for repeated sharded execution: per-slot plans
    /// are cached against the outer version and re-planned lazily after a
    /// publish, exactly like [`crate::PreparedQuery`] over one engine.
    pub fn prepare(&self, sql: &str) -> Result<ShardedPrepared, EngineError> {
        let stmt = parse(sql)?;
        if matches!(stmt, Statement::Explain(_)) {
            return Err(EngineError::WrongStatement { expected: "FORECAST or SELECT" });
        }
        let snapshot = self.snapshot();
        let planned = plan_slots(&self.shared, &snapshot, &stmt)?;
        let num_params = planned[0].1.num_params();
        Ok(ShardedPrepared {
            shared: self.shared.clone(),
            shard_config: self.shard_config,
            statement: stmt,
            num_params,
            cached: Mutex::new(ShardedPlanCache { version: snapshot.version(), planned }),
        })
    }
}

struct ShardedPlanCache {
    /// Outer [`ShardSnapshot::version`] the plans were made against.
    version: u64,
    planned: Vec<(usize, Arc<LogicalPlan>)>,
}

/// A prepared statement over a [`ShardedEngine`]: `Send + Sync`,
/// executable repeatedly (and concurrently) through `&self`. Every
/// execution snapshots the outer [`ShardSnapshot`] exactly once and runs
/// all slot partials against it, so no execution straddles a concurrent
/// sharded publish; the first execution after a publish re-plans every
/// slot against the new outer version.
pub struct ShardedPrepared {
    shared: Arc<ShardedShared>,
    shard_config: ShardConfig,
    statement: Statement,
    num_params: usize,
    cached: Mutex<ShardedPlanCache>,
}

impl ShardedPrepared {
    /// The parsed statement this query was prepared from.
    pub fn statement(&self) -> &Statement {
        &self.statement
    }

    /// Number of `?` parameters [`ShardedPrepared::execute_with`]
    /// expects.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    fn plans_for(
        &self,
        snapshot: &ShardSnapshot,
    ) -> Result<Vec<(usize, Arc<LogicalPlan>)>, EngineError> {
        {
            let cached = self.cached.lock().expect("sharded plan lock poisoned");
            if cached.version == snapshot.version() {
                return Ok(cached.planned.clone());
            }
        }
        let planned = plan_slots(&self.shared, snapshot, &self.statement)?;
        let mut cached = self.cached.lock().expect("sharded plan lock poisoned");
        cached.version = snapshot.version();
        cached.planned = planned.clone();
        Ok(planned)
    }

    /// Execute a parameterless prepared statement.
    pub fn execute(&self) -> Result<ExecOutput, EngineError> {
        self.execute_with(&[])
    }

    /// Execute, binding `?` placeholder `i` to `params[i]`. Snapshots the
    /// outer version once; the whole scatter-gather answers from exactly
    /// that set of slot versions.
    pub fn execute_with(&self, params: &[Literal]) -> Result<ExecOutput, EngineError> {
        let snapshot = self.shared.snapshot();
        let planned = self.plans_for(&snapshot)?;
        execute_planned(
            &self.shared,
            &self.shard_config,
            &snapshot,
            &self.statement,
            &planned,
            params,
        )
    }

    /// Execute a prepared FORECAST (errors on SELECT).
    pub fn forecast_with(&self, params: &[Literal]) -> Result<ForecastResult, EngineError> {
        match self.execute_with(params)? {
            ExecOutput::Forecast(r) => Ok(*r),
            _ => Err(EngineError::WrongStatement { expected: "FORECAST" }),
        }
    }

    /// Execute a prepared SELECT (errors on FORECAST).
    pub fn select_with(&self, params: &[Literal]) -> Result<SelectResult, EngineError> {
        match self.execute_with(params)? {
            ExecOutput::Select(r) => Ok(r),
            _ => Err(EngineError::WrongStatement { expected: "SELECT" }),
        }
    }

    /// Render the scatter-gather plan for the current outer version.
    pub fn explain(&self) -> Result<PlanNode, EngineError> {
        let snapshot = self.shared.snapshot();
        let planned = self.plans_for(&snapshot)?;
        Ok(scatter_explain(&self.shard_config, &snapshot, &planned, self.shared.partial_enabled()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::test_table;

    #[test]
    fn shard_config_validates_layout() {
        assert!(ShardConfig::default().validate().is_ok());
        assert!(ShardConfig { shards: 16, slots: 16 }.validate().is_ok());
        assert!(ShardConfig { shards: 0, slots: 16 }.validate().is_err());
        assert!(ShardConfig { shards: 17, slots: 16 }.validate().is_err());
        assert!(ShardConfig { shards: 1, slots: 0 }.validate().is_err());
    }

    #[test]
    fn slot_ranges_partition_the_slots() {
        for shards in 1..=16 {
            let config = ShardConfig { shards, slots: 16 };
            let mut covered = Vec::new();
            for shard in 0..shards {
                let range = config.slot_range(shard);
                assert!(!range.is_empty(), "shard {shard} of {shards} owns no slots");
                for slot in range {
                    assert_eq!(config.shard_of_slot(slot), shard);
                    covered.push(slot);
                }
            }
            assert_eq!(covered, (0..16).collect::<Vec<_>>());
        }
    }

    #[test]
    fn route_hash_is_stable_and_type_tagged() {
        let t = Timestamp::from_yyyymmdd(20200101).unwrap();
        let a = route_hash(&[Value::Int(3), Value::Str("ab".to_string())], t);
        assert_eq!(a, route_hash(&[Value::Int(3), Value::Str("ab".to_string())], t));
        // Distinguishes string splits and value types.
        assert_ne!(
            route_hash(&[Value::Str("ab".to_string()), Value::Str("c".to_string())], t),
            route_hash(&[Value::Str("a".to_string()), Value::Str("bc".to_string())], t)
        );
        assert_ne!(route_hash(&[Value::Int(1)], t), route_hash(&[Value::Float(1.0)], t));
        assert_ne!(a, route_hash(&[Value::Int(3), Value::Str("ab".to_string())], t + 1));
    }

    #[test]
    fn split_preserves_rows_and_routes_deterministically() {
        let table = test_table();
        let a = split_table(&table, 8).unwrap();
        let b = split_table(&table, 8).unwrap();
        assert_eq!(a.iter().map(|t| t.num_rows()).sum::<usize>(), table.num_rows());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.num_rows(), y.num_rows());
        }
        // A spread-out dimension key should touch most slots.
        assert!(a.iter().filter(|t| t.num_rows() > 0).count() >= 4);
    }

    #[test]
    fn sharded_ingest_rejects_partition_items() {
        let engine =
            ShardedEngine::new(&test_table(), EngineConfig::default(), ShardConfig::default())
                .unwrap();
        let mut batch = IngestBatch::new();
        let t = Timestamp::from_yyyymmdd(20200301).unwrap();
        let schema = test_table().schema().clone();
        let mut table = TimeSeriesTable::new(schema);
        table.append_row(t, &[Value::Int(1), Value::Str("a".to_string())], &[1.0, 2.0]).unwrap();
        let partition = table.partition(t).unwrap().clone();
        batch.push_partition(t, partition);
        let err = engine.ingest(batch).unwrap_err();
        assert!(matches!(err, EngineError::Config(_)), "got {err:?}");
    }

    #[test]
    fn exact_select_matches_single_engine() {
        let table = test_table();
        let single = FlashPEngine::new(table.clone(), EngineConfig::default());
        let one = ShardedEngine::new(&table, EngineConfig::default(), ShardConfig::with_shards(1))
            .unwrap();
        let four = ShardedEngine::new(&table, EngineConfig::default(), ShardConfig::with_shards(4))
            .unwrap();
        for sql in [
            "SELECT SUM(m1) FROM T WHERE seg <= 5 AND t BETWEEN 20200105 AND 20200120 GROUP BY t",
            "SELECT AVG(m2) FROM T WHERE grp = 'a' AND t BETWEEN 20200101 AND 20200209",
            "SELECT COUNT(*) FROM T GROUP BY t",
        ] {
            let reference = single.select(sql).unwrap();
            let a = one.select(sql).unwrap();
            let b = four.select(sql).unwrap();
            // Shard-count invariance is bit-for-bit: same slots, same
            // slot-order merge, regardless of physical fan-out.
            assert_eq!(a, b, "sharded result depends on shard count for {sql}");
            // Against one engine over the unpartitioned table, the f64
            // sum is reassociated by hash routing: equal to tolerance.
            assert_eq!(reference.rows.len(), a.rows.len(), "row count diverged for {sql}");
            assert_eq!(reference.approximate, a.approximate);
            for ((t0, v0, _), (t1, v1, _)) in reference.rows.iter().zip(&a.rows) {
                assert_eq!(t0, t1);
                assert!(
                    (v0 - v1).abs() <= 1e-9 * v0.abs().max(1.0),
                    "value diverged for {sql}: {v0} vs {v1}"
                );
            }
        }
    }

    #[test]
    fn explain_renders_scatter_gather() {
        let table = test_table();
        let sharded =
            ShardedEngine::new(&table, EngineConfig::default(), ShardConfig::with_shards(4))
                .unwrap();
        let node = sharded
            .explain("SELECT SUM(m1) FROM T WHERE t BETWEEN 20200101 AND 20200110 GROUP BY t")
            .unwrap();
        assert_eq!(node.name, "ScatterGather");
        assert_eq!(node.prop("shards"), Some("4"));
        assert_eq!(node.prop("slots"), Some("16"));
        let shard_nodes: Vec<_> = node.children.iter().filter(|c| c.name == "Shard").collect();
        assert_eq!(shard_nodes.len(), 4);
        let est: usize =
            shard_nodes.iter().map(|s| s.prop("est_rows").unwrap().parse::<usize>().unwrap()).sum();
        assert_eq!(Some(est.to_string().as_str()), node.prop("est_rows"));
    }
}
