//! Engine configuration: sampler family, layer rates, measure grouping.

use flashp_storage::parallel::default_threads;

/// Which sampler family the offline preprocessor uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SamplerChoice {
    /// Uniform Bernoulli — the baseline; one sample serves all measures.
    Uniform,
    /// Optimal GSW (w = m) — one sample per measure.
    OptimalGsw,
    /// Priority sampling — one sample per measure.
    Priority,
    /// Threshold sampling — one sample per measure.
    Threshold,
    /// Arithmetic compressed GSW — one sample per measure *group*.
    ArithmeticGsw,
    /// Geometric compressed GSW — one sample per measure group.
    GeometricGsw,
}

impl SamplerChoice {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            SamplerChoice::Uniform => "Uniform",
            SamplerChoice::OptimalGsw => "Optimal GSW",
            SamplerChoice::Priority => "Priority",
            SamplerChoice::Threshold => "Threshold",
            SamplerChoice::ArithmeticGsw => "Arithmetic compressed GSW",
            SamplerChoice::GeometricGsw => "Geometric compressed GSW",
        }
    }

    /// Does this sampler need one sample per measure (vs shared)?
    pub fn per_measure(&self) -> bool {
        matches!(
            self,
            SamplerChoice::OptimalGsw | SamplerChoice::Priority | SamplerChoice::Threshold
        )
    }

    /// Does this sampler draw one sample per measure group?
    pub fn grouped(&self) -> bool {
        matches!(self, SamplerChoice::ArithmeticGsw | SamplerChoice::GeometricGsw)
    }
}

/// How measures are grouped for compressed samplers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupingPolicy {
    /// KCENTER on normalized-L1 distance over a reference partition
    /// (§4.2), producing `num_groups` groups.
    Auto {
        /// Number of groups (compressed samples) to produce.
        num_groups: usize,
    },
    /// Explicit groups of measure indices.
    Explicit(Vec<Vec<usize>>),
    /// One group holding every measure.
    Single,
}

/// Full engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Multi-layer sample rates built offline (§5's "samples of different
    /// sizes"). Must be in (0, 1].
    pub layer_rates: Vec<f64>,
    /// Sampler family for the offline preprocessor.
    pub sampler: SamplerChoice,
    /// Measure grouping for compressed samplers.
    pub grouping: GroupingPolicy,
    /// RNG seed for sample drawing (per-partition seeds derive from it).
    pub seed: u64,
    /// Default model when the query has no `MODEL` option.
    pub default_model: String,
    /// Default forecast horizon (`FORE_PERIOD`).
    pub default_horizon: usize,
    /// Default confidence level for forecast intervals.
    pub default_confidence: f64,
    /// Default sampling rate when the query has no `SAMPLE_RATE` option
    /// (1.0 = exact full scan).
    pub default_rate: f64,
    /// Worker threads for scans and sample builds.
    pub threads: usize,
    /// If set, SQL statements must reference this table name.
    pub table_name: Option<String>,
    /// Default float-sum mode for exact full scans: `false` keeps the
    /// bit-identical ascending-row accumulation, `true` opts every query
    /// into reassociated vector sums unless it says `OPTION (FAST_SUM = 0)`.
    pub fast_sum: bool,
    /// Enable the versioned day-partial cache (on by default): memoized
    /// per-(cell, predicate, measure) HT components and exact day states,
    /// invalidated structurally by publish. Bit-identical to recomputation
    /// by construction; set `false` — or export `FLASHP_NO_PARTIAL_CACHE=1`,
    /// which overrides this flag — to force every execution cold.
    pub partial_cache: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            // The paper's evaluation grid: 1%, 0.1%, 0.05%, 0.02%.
            layer_rates: vec![0.01, 0.001, 0.0005, 0.0002],
            sampler: SamplerChoice::OptimalGsw,
            grouping: GroupingPolicy::Auto { num_groups: 2 },
            seed: 0x00F1_A54B,
            default_model: "arima".to_string(),
            default_horizon: 7,
            default_confidence: 0.9,
            default_rate: 0.001,
            threads: default_threads(),
            table_name: None,
            fast_sum: false,
            partial_cache: true,
        }
    }
}

impl EngineConfig {
    /// Validate rates and defaults.
    pub fn validate(&self) -> Result<(), String> {
        for r in &self.layer_rates {
            if !(*r > 0.0 && *r <= 1.0) {
                return Err(format!("layer rate {r} outside (0, 1]"));
            }
        }
        if !(self.default_confidence > 0.0 && self.default_confidence < 1.0) {
            return Err(format!("confidence {} outside (0, 1)", self.default_confidence));
        }
        if self.default_horizon == 0 {
            return Err("default horizon must be >= 1".to_string());
        }
        if !(self.default_rate > 0.0 && self.default_rate <= 1.0) {
            return Err(format!("default rate {} outside (0, 1]", self.default_rate));
        }
        if let GroupingPolicy::Auto { num_groups } = &self.grouping {
            if *num_groups == 0 {
                return Err("num_groups must be >= 1".to_string());
            }
        }
        Ok(())
    }

    /// Convenience: same config with a different sampler.
    pub fn with_sampler(mut self, sampler: SamplerChoice) -> Self {
        self.sampler = sampler;
        self
    }

    /// Convenience: same config with different layer rates.
    pub fn with_layers(mut self, rates: &[f64]) -> Self {
        self.layer_rates = rates.to_vec();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(EngineConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_caught() {
        let c = EngineConfig { layer_rates: vec![0.0], ..Default::default() };
        assert!(c.validate().is_err());
        let c = EngineConfig { default_confidence: 1.0, ..Default::default() };
        assert!(c.validate().is_err());
        let c = EngineConfig { default_horizon: 0, ..Default::default() };
        assert!(c.validate().is_err());
        let c =
            EngineConfig { grouping: GroupingPolicy::Auto { num_groups: 0 }, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn sampler_classification() {
        assert!(SamplerChoice::OptimalGsw.per_measure());
        assert!(SamplerChoice::Priority.per_measure());
        assert!(!SamplerChoice::Uniform.per_measure());
        assert!(SamplerChoice::ArithmeticGsw.grouped());
        assert!(!SamplerChoice::OptimalGsw.grouped());
    }

    #[test]
    fn builder_helpers() {
        let c = EngineConfig::default().with_sampler(SamplerChoice::Uniform).with_layers(&[0.5]);
        assert_eq!(c.sampler, SamplerChoice::Uniform);
        assert_eq!(c.layer_rates, vec![0.5]);
    }
}
